//! # mudock — high-performance, portable molecular docking on CPUs
//!
//! Facade crate re-exporting the whole workspace: a Rust reproduction of
//! *"Towards High-Performance and Portable Molecular Docking on CPUs
//! through Vectorization"* (CLUSTER 2025).
//!
//! Start with [`mudock_core`] for the docking engine, [`mudock_simd`] for
//! the portable explicit-SIMD layer, and [`mudock_archsim`] for the
//! cross-architecture study. See the repository README for a tour and
//! `examples/quickstart.rs` for the 30-second version.

pub use mudock_archsim as archsim;
pub use mudock_cluster as cluster;
pub use mudock_core as core;
pub use mudock_ff as ff;
pub use mudock_grids as grids;
pub use mudock_mol as mol;
pub use mudock_molio as molio;
pub use mudock_perf as perf;
pub use mudock_pool as pool;
pub use mudock_serve as serve;
pub use mudock_simd as simd;
