//! `mudock` — command-line front end for the docking pipeline.
//!
//! ```text
//! mudock info   <ligand.pdbqt>                       # inspect a molecule
//! mudock dock   --receptor R.pdbqt --ligand L.pdbqt  # dock one ligand
//!               [--backend avx2|autovec|reference|…]
//!               [--generations N] [--population P] [--seed S]
//!               [--local-search] [--out pose.pdbqt]
//! mudock dock   --demo                               # bundled 1a30-like complex
//! mudock screen --demo N [--threads T]               # synthetic screening batch
//! mudock serve  --demo N [--jobs J] [--threads T]    # screening service demo
//!               [--top K] [--chunk C] [--jsonl DIR] [--checkpoint DIR]
//! ```
//!
//! Argument parsing is hand-rolled (no CLI-crate dependency, matching the
//! workspace's minimal dependency policy).

use std::collections::HashMap;
use std::process::ExitCode;

use mudock::core::{
    screen, Backend, DockParams, DockingEngine, GaParams, LigandPrep, SolisWetsParams,
};
use mudock::grids::{GridBuilder, GridDims};
use mudock::mol::{Molecule, Vec3};
use mudock::simd::SimdLevel;

fn usage() -> &'static str {
    "usage:\n  mudock info <file.pdbqt>\n  mudock dock --receptor R.pdbqt --ligand L.pdbqt [options]\n  mudock dock --demo [options]\n  mudock screen --demo N [--threads T] [options]\n  mudock serve --demo N [--jobs J] [--threads T] [options]\n\noptions:\n  --backend <reference|autovec|sse2|avx2|avx512>   (default: best available)\n  --generations N   (default 150)\n  --population P    (default 100)\n  --seed S          (default 42)\n  --radius R        search radius in Å (default: grid-derived)\n  --local-search    enable Solis-Wets Lamarckian refinement\n  --out FILE        write the best pose as PDBQT (dock only)\n  --threads T       worker threads (screen/serve)\n  --jobs J          concurrent service jobs (serve only, default 2)\n  --top K           ranking size per job (serve only, default 10)\n  --chunk C         ligands per chunk (serve only, default 16)\n  --jsonl DIR       stream per-ligand JSONL results into DIR (serve only)\n  --checkpoint DIR  write per-job chunk checkpoints into DIR (serve only)"
}

/// Split argv into flags (`--k v` / bare `--k`) and positionals.
fn parse_args(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
            if takes_value {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), String::new());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

fn load(path: &str) -> Result<Molecule, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    mudock::molio::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_info(positional: &[String]) -> Result<(), String> {
    let path = positional.first().ok_or("info needs a file")?;
    let mol = load(path)?;
    mol.validate().map_err(|e| e.to_string())?;
    let topo = mudock::mol::Topology::build(&mol);
    println!(
        "name:            {}",
        if mol.name.is_empty() {
            "(unnamed)"
        } else {
            &mol.name
        }
    );
    println!("atoms:           {}", mol.atoms.len());
    println!(
        "heavy atoms:     {}",
        mol.atoms.iter().filter(|a| !a.ty.is_hydrogen()).count()
    );
    println!("bonds:           {}", mol.bonds.len());
    println!(
        "rotatable bonds: {} ({} usable torsions)",
        mol.num_rotatable_bonds(),
        topo.torsions.len()
    );
    println!("scored pairs:    {}", topo.pairs.len());
    println!("net charge:      {:+.3} e", mol.total_charge());
    println!("radius:          {:.2} Å", mol.radius());
    let mut types: Vec<String> = mol.atoms.iter().map(|a| a.ty.label().to_string()).collect();
    types.sort();
    types.dedup();
    println!("atom types:      {}", types.join(" "));
    Ok(())
}

fn backend_from(flags: &HashMap<String, String>) -> Result<Backend, String> {
    match flags.get("backend") {
        None => Ok(Backend::Explicit(SimdLevel::detect())),
        Some(name) => Backend::parse(name).ok_or_else(|| format!("unknown backend '{name}'")),
    }
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad --{key} value '{v}'")),
    }
}

fn params_from(flags: &HashMap<String, String>) -> Result<DockParams, String> {
    Ok(DockParams {
        ga: GaParams {
            population: num(flags, "population", 100usize)?,
            generations: num(flags, "generations", 150usize)?,
            ..Default::default()
        },
        seed: num(flags, "seed", 42u64)?,
        backend: backend_from(flags)?,
        search_radius: flags
            .get("radius")
            .map(|v| v.parse().map_err(|_| format!("bad --radius '{v}'")))
            .transpose()?,
        local_search: if flags.contains_key("local-search") {
            Some(SolisWetsParams::default())
        } else {
            None
        },
    })
}

fn complex_from(flags: &HashMap<String, String>) -> Result<(Molecule, Molecule), String> {
    if flags.contains_key("demo") {
        let (r, l) = mudock::molio::complex_1a30_like();
        return Ok((r, l));
    }
    let r = load(flags.get("receptor").ok_or("need --receptor or --demo")?)?;
    let l = load(flags.get("ligand").ok_or("need --ligand or --demo")?)?;
    Ok((r, l))
}

fn build_grids(receptor: &Molecule, ligands: &[&Molecule]) -> mudock::grids::GridSet {
    let mut types: Vec<mudock::ff::AtomType> = ligands
        .iter()
        .flat_map(|l| l.atoms.iter().map(|a| a.ty))
        .collect();
    types.sort_unstable();
    types.dedup();
    // Box centered on the receptor pocket, covering the receptor span.
    let center = receptor.centroid();
    let extent = (receptor.radius() + 3.0).clamp(8.0, 14.0);
    let dims = GridDims::centered(center, extent, 0.55);
    GridBuilder::new(receptor, dims)
        .with_types(&types)
        .build_simd(SimdLevel::detect())
}

fn cmd_dock(flags: &HashMap<String, String>) -> Result<(), String> {
    let (receptor, ligand) = complex_from(flags)?;
    let params = params_from(flags)?;
    eprintln!(
        "docking {} ({} atoms) into {} ({} atoms) with backend {}…",
        if ligand.name.is_empty() {
            "ligand"
        } else {
            &ligand.name
        },
        ligand.atoms.len(),
        if receptor.name.is_empty() {
            "receptor"
        } else {
            &receptor.name
        },
        receptor.atoms.len(),
        params.backend
    );
    let grids = build_grids(&receptor, &[&ligand]);
    let engine = DockingEngine::new(&grids).map_err(|e| e.to_string())?;
    let prep = LigandPrep::new(ligand).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let report = engine.dock(&prep, &params).map_err(|e| e.to_string())?;
    println!(
        "best score: {:.3} kcal/mol  ({} evaluations in {:.2?})",
        report.best_score,
        report.evaluations,
        t0.elapsed()
    );
    println!(
        "improvement: {:.3} → {:.3} over {} generations",
        report.history[0],
        report.history.last().unwrap(),
        report.history.len()
    );

    if let Some(out) = flags.get("out") {
        // Write the best pose: transform a copy of the prepared molecule.
        let mut posed = prep.mol.clone();
        let mut conf = mudock::mol::ConformSoA::with_capacity(prep.base.n);
        mudock::core::transform::apply_pose_reference(
            &prep.base,
            &prep.plans,
            &report.best_genotype,
            &mut conf,
        );
        for (i, a) in posed.atoms.iter_mut().enumerate() {
            a.pos = conf.pos(i);
        }
        posed.name = format!("{} (docked)", posed.name);
        std::fs::write(out, mudock::molio::write(&posed)).map_err(|e| e.to_string())?;
        println!("best pose written to {out}");
    }
    Ok(())
}

/// The `N` of `--demo N`: `default` for a bare `--demo`, an error (not
/// a silent fallback) when a value is present but unparsable.
fn demo_count(flags: &HashMap<String, String>, default: usize) -> Result<usize, String> {
    match flags.get("demo").map(String::as_str) {
        None | Some("") => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad --demo value '{v}'")),
    }
}

fn cmd_screen(flags: &HashMap<String, String>) -> Result<(), String> {
    if !flags.contains_key("demo") {
        return Err("screen currently supports --demo N (synthetic batch)".into());
    }
    let n = demo_count(flags, 16)?;
    let threads = num(flags, "threads", mudock::pool::default_threads())?;
    let mut params = params_from(flags)?;
    if !flags.contains_key("generations") {
        params.ga.generations = 60; // keep the demo snappy
    }
    let receptor = mudock::molio::synthetic_receptor(0xd0c6, 300, 9.0);
    let ligands = mudock::molio::mediate_like_set(params.seed, n);
    eprintln!("screening {n} synthetic ligands on {threads} threads…");
    let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.6);
    let grids = GridBuilder::new(&receptor, dims).build_simd(SimdLevel::detect());
    let summary = screen(&grids, &ligands, &params, threads);
    println!(
        "{} ligands in {:.2?} → {:.1} ligands/s",
        summary.results.len(),
        summary.elapsed,
        summary.throughput
    );
    println!("\nrank  ligand                              score (kcal/mol)");
    for (rank, idx) in summary.top_k(10.min(n)).into_iter().enumerate() {
        let r = &summary.results[idx];
        println!(
            "{:>4}  {:<34} {:>10.3}",
            rank + 1,
            r.name,
            r.best_score.unwrap()
        );
    }
    Ok(())
}

/// Demo of the screening service: J concurrent jobs against one shared
/// synthetic receptor, showing the grid cache, fair thread sharing, and
/// incremental top-k sinks in action.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use mudock::serve::{JobSpec, LigandSource, ScreenService, ServeConfig};
    use std::sync::Arc;

    if !flags.contains_key("demo") {
        return Err("serve currently supports --demo N (synthetic batch per job)".into());
    }
    let n = demo_count(flags, 32)?;
    let jobs: usize = num(flags, "jobs", 2usize)?.max(1);
    let threads = num(flags, "threads", mudock::pool::default_threads())?;
    let top_k = num(flags, "top", 10usize)?;
    let chunk_size = num(flags, "chunk", 16usize)?.max(1);
    let mut params = params_from(flags)?;
    if !flags.contains_key("generations") {
        params.ga.generations = 60; // keep the demo snappy
    }

    let service = ScreenService::start(ServeConfig {
        total_threads: threads,
        job_slots: jobs.min(threads).max(1),
        ..ServeConfig::default()
    });
    let receptor = Arc::new(mudock::molio::synthetic_receptor(0xd0c6, 300, 9.0));
    let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.6);

    eprintln!("serving {jobs} jobs × {n} ligands on {threads} threads…");
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|j| {
            let mut spec = JobSpec {
                name: format!("demo-{j}"),
                receptor: Arc::clone(&receptor),
                ligands: LigandSource::synth(params.seed.wrapping_add(j as u64), n),
                params: params.clone(),
                top_k,
                chunk_size,
                grid_dims: Some(dims),
                ..JobSpec::default()
            };
            if let Some(dir) = flags.get("jsonl") {
                spec.jsonl = Some(std::path::Path::new(dir).join(format!("demo-{j}.jsonl")));
            }
            if let Some(dir) = flags.get("checkpoint") {
                spec.checkpoint = Some(std::path::Path::new(dir).join(format!("demo-{j}.ckpt")));
            }
            service.submit(spec).map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;

    for handle in handles {
        let o = handle.wait();
        println!(
            "job {:<10} {:?}  {} ligands in {:.2?}  grid {}  best:",
            o.name,
            o.state,
            o.ligands_done,
            o.elapsed,
            if o.grid_cache_hit {
                "cache-hit"
            } else {
                "built"
            },
        );
        if let Some(err) = &o.error {
            println!("  error: {err}");
        }
        for (rank, r) in o.top.iter().enumerate() {
            println!("  {:>3}  {:<34} {:>10.3}", rank + 1, r.name, r.score);
        }
    }
    let elapsed = t0.elapsed();
    let stats = service.stats();
    println!(
        "\n{} ligands docked live in {:.2?} → {:.1} ligands/s  (cache: {} hit / {} miss, {:.0} % hit rate)",
        stats.ligands_docked,
        elapsed,
        stats.ligands_docked as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.cache.hits,
        stats.cache.misses,
        100.0 * stats.cache.hit_rate(),
    );
    service.shutdown();
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let (flags, positional) = parse_args(&args[1..]);
    let result = match cmd.as_str() {
        "info" => cmd_info(&positional),
        "dock" => cmd_dock(&flags),
        "screen" => cmd_screen(&flags),
        "serve" => cmd_serve(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
