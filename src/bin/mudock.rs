//! `mudock` — command-line front end for the docking pipeline.
//!
//! ```text
//! mudock info   <ligand.pdbqt>                       # inspect a molecule
//! mudock dock   --receptor R.pdbqt --ligand L.pdbqt  # dock one ligand
//!               [--backend avx2|autovec|reference|…]
//!               [--generations N] [--population P] [--seed S]
//!               [--local-search] [--out pose.pdbqt]
//! mudock dock   --demo                               # bundled 1a30-like complex
//! mudock screen --demo N [--threads T]               # synthetic screening batch
//! mudock serve  --demo N [--jobs J] [--threads T]    # screening service demo
//!               [--top K] [--chunk C] [--jsonl DIR] [--checkpoint DIR]
//! mudock serve  --listen ADDR [--jobs J] [--threads T] [--results DIR]
//!                                                    # network screening server
//! mudock submit --addr HOST:PORT (--demo N | --receptor R --ligands L)
//!               [campaign options] [--priority low|normal|high]
//! mudock poll   --addr HOST:PORT ID [--wait] [--results] [--cancel]
//! mudock stats  --addr HOST:PORT [--metrics]          # /stats JSON or /metrics text
//! ```
//!
//! Every subcommand builds one [`CampaignSpec`](mudock::core::CampaignSpec)
//! through `Campaign::builder()` from the shared flag set and hands it to
//! its entry point — `dock_campaign`, `screen_campaign`, or a serve
//! `JobSpec` — so the CLI, the library, and the service all run from the
//! same validated description. Invalid values (zero top-k, zero chunks,
//! negative radii, impossible GA shapes, unsupported SIMD pins) are
//! rejected by the builder with a typed error and exit code 2; runtime
//! failures exit 1.
//!
//! Argument parsing is hand-rolled (no CLI-crate dependency, matching the
//! workspace's minimal dependency policy).

use std::collections::HashMap;
use std::process::ExitCode;

use mudock::core::{
    screen_campaign, Backend, BackendPolicy, Campaign, CampaignError, CampaignSpec, ChunkPolicy,
    DockingEngine, GaParams, LigandPrep, ShardPolicy, SolisWetsParams, StopPolicy,
};
use mudock::grids::{GridBuilder, GridDims};
use mudock::mol::{Molecule, Vec3};

fn usage() -> &'static str {
    "usage:\n  mudock info <file.pdbqt>\n  mudock dock --receptor R.pdbqt --ligand L.pdbqt [options]\n  mudock dock --demo [options]\n  mudock screen --demo N [--threads T] [options]\n  mudock serve --demo N [--jobs J] [--threads T] [options]\n  mudock serve --listen ADDR [--jobs J] [--threads T] [--results DIR]\n  mudock coordinator --listen ADDR --nodes HOST:PORT,HOST:PORT[,...]\n  mudock submit --addr HOST:PORT (--demo N | --receptor R --ligands L) [options]\n  mudock poll --addr HOST:PORT ID [--wait] [--results] [--cancel] [--interval-ms MS]\n  mudock stats --addr HOST:PORT [--metrics]\n\ncampaign options (validated; bad values exit with code 2):\n  --backend <reference|autovec|scalar|sse2|avx2|avx512>  (default: best available;\n                    naming a SIMD level pins the job's grids to that level)\n  --generations N   (default 150)\n  --population P    (default 100)\n  --seed S          (default 42)\n  --radius R        search radius in Å (default: grid-derived)\n  --local-search    enable Solis-Wets Lamarckian refinement\n  --top K           ranking size (default 10)\n  --chunk C         ligands per chunk (default 16)\n  --chunk-target-ms MS   adaptive chunks sized to ~MS wall-clock each\n  --max-evals N     stop after N pose evaluations\n  --deadline-s S    stop after S seconds of wall-clock\n  --stable-window W stop once the top-k held still for W chunks\n  --stable-eps E    score tolerance for --stable-window (default 0)\n  --shard-weight W  relative executor share vs other receptors (default 1)\n  --single-queue    opt out of receptor sharding (pure priority/FIFO)\n\nother options:\n  --out FILE        write the best pose as PDBQT (dock only)\n  --threads T       worker threads (screen/serve)\n  --jobs J          concurrent service jobs (serve only, default 2)\n  --shards N        receptor shard groups slots are split across\n                    (serve only; default 0 = one per live receptor)\n  --cache N         grid sets kept resident (serve only, default 4)\n  --spill-dir DIR   spill evicted grids to DIR and reload on the next\n                    miss instead of rebuilding (serve only)\n  --spill-cap N     spill files kept in --spill-dir (default 16)\n  --cache-policy P  grid-cache replacement policy: lru | slru (default slru)\n  --cache-prefetch  reload the next queued job's spilled grids in the\n                    background while the current job docks (needs --spill-dir)\n  --cache-trace FILE  record grid-cache events as JSONL for offline policy\n                    replay with the cache_replay tool (serve only)\n  --jsonl DIR       stream per-ligand JSONL results into DIR (serve only)\n  --checkpoint DIR  write per-job chunk checkpoints into DIR (serve only)\n  --trace-file FILE append per-stage span JSONL to FILE, bounded (serve only)\n\nnetwork options:\n  --listen ADDR     serve the HTTP API on ADDR (port 0 picks one; serve only)\n  --results DIR     per-job JSONL result files (serve --listen only)\n  --allow-path-sources  accept server-side {\"path\": ...} sources (off by default)\n  --max-conns N     open connections held before load-shedding 503s\n                    (serve --listen only, default 1024)\n  --idle-s S        keep-alive idle-connection timeout in seconds (default 60)\n  --header-s S      request-header read deadline in seconds (default 10)\n  --event-loops N   frontend event-loop threads sharing the listen port\n                    (serve --listen and coordinator; default 0 = one per\n                    core, capped at 4; connections pin to one loop for life)\n  --addr HOST:PORT  server to talk to (submit/poll)\n\ncoordinator options:\n  --nodes A,B,...   member `mudock serve --listen` addresses (required)\n  --health-ms MS    health-probe spacing (default 500)\n  --dead-after N    consecutive failures before a member is dead (default 3)\n  --scatter-min N   smallest library worth fanning out (default 8)\n  --max-parts N     scatter fan-out ceiling (default 16)\n  --poll-ms MS      sub-job poll interval (default 20)\n  --max-attempts N  dispatch attempts per window before failing (default 4)\n  --name NAME       campaign name (submit, default 'remote')\n  --priority P      low|normal|high (submit, default normal)\n  --ligands FILE    multi-model PDBQT ligand library (submit)\n  --receptor-seed S synthetic receptor seed for submit --demo, so two\n                    submissions can target different receptors/shards\n  --wait            poll until the job is terminal\n  --results (poll)  print the job's JSONL results\n  --cancel          request cancellation\n  --interval-ms MS  poll interval for --wait (default 100)\n  --metrics (stats) print the Prometheus /metrics text instead of /stats JSON"
}

/// CLI failure with its exit code: usage/validation errors (exit 2,
/// including every typed [`CampaignError`]) versus runtime errors
/// (exit 1).
enum CliError {
    Usage(String),
    Run(String),
}

impl From<CampaignError> for CliError {
    fn from(e: CampaignError) -> Self {
        CliError::Usage(format!("invalid campaign: {e}"))
    }
}

impl From<String> for CliError {
    fn from(e: String) -> Self {
        CliError::Run(e)
    }
}

impl From<&str> for CliError {
    fn from(e: &str) -> Self {
        CliError::Run(e.into())
    }
}

/// Split argv into flags (`--k v` / bare `--k`) and positionals.
/// `boolean` names flags that never take a value, so `poll --wait 42`
/// keeps `42` as the positional job id instead of swallowing it as
/// `--wait`'s value.
fn parse_args(args: &[String], boolean: &[&str]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let takes_value =
                !boolean.contains(&key) && i + 1 < args.len() && !args[i + 1].starts_with("--");
            if takes_value {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), String::new());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

fn load(path: &str) -> Result<Molecule, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Run(format!("{path}: {e}")))?;
    mudock::molio::parse(&text).map_err(|e| CliError::Run(format!("{path}: {e}")))
}

fn cmd_info(positional: &[String]) -> Result<(), CliError> {
    let path = positional.first().ok_or("info needs a file")?;
    let mol = load(path)?;
    mol.validate().map_err(|e| CliError::Run(e.to_string()))?;
    let topo = mudock::mol::Topology::build(&mol);
    println!(
        "name:            {}",
        if mol.name.is_empty() {
            "(unnamed)"
        } else {
            &mol.name
        }
    );
    println!("atoms:           {}", mol.atoms.len());
    println!(
        "heavy atoms:     {}",
        mol.atoms.iter().filter(|a| !a.ty.is_hydrogen()).count()
    );
    println!("bonds:           {}", mol.bonds.len());
    println!(
        "rotatable bonds: {} ({} usable torsions)",
        mol.num_rotatable_bonds(),
        topo.torsions.len()
    );
    println!("scored pairs:    {}", topo.pairs.len());
    println!("net charge:      {:+.3} e", mol.total_charge());
    println!("radius:          {:.2} Å", mol.radius());
    let mut types: Vec<String> = mol.atoms.iter().map(|a| a.ty.label().to_string()).collect();
    types.sort();
    types.dedup();
    println!("atom types:      {}", types.join(" "));
    Ok(())
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --{key} value '{v}'"))),
    }
}

/// The one campaign every subcommand runs from, built and validated
/// from the shared flag set.
fn campaign_from(flags: &HashMap<String, String>, name: &str) -> Result<CampaignSpec, CliError> {
    let mut builder = Campaign::builder()
        .name(name)
        .ga(GaParams {
            population: num(flags, "population", 100usize)?,
            generations: num(flags, "generations", 150usize)?,
            ..Default::default()
        })
        .seed(num(flags, "seed", 42u64)?)
        .top_k(num(flags, "top", 10usize)?);
    if let Some(bname) = flags.get("backend") {
        let backend = Backend::parse(bname)
            .ok_or_else(|| CliError::Usage(format!("unknown backend '{bname}'")))?;
        builder = builder.backend(BackendPolicy::Fixed(backend));
    }
    if flags.contains_key("radius") {
        builder = builder.search_radius(num(flags, "radius", 0.0f32)?);
    }
    if flags.contains_key("local-search") {
        builder = builder.local_search(SolisWetsParams::default());
    }
    builder = builder.chunk(if flags.contains_key("chunk-target-ms") {
        ChunkPolicy::Adaptive {
            target: std::time::Duration::from_millis(num(flags, "chunk-target-ms", 1000u64)?),
        }
    } else {
        ChunkPolicy::Fixed(num(flags, "chunk", 16usize)?)
    });
    if flags.contains_key("single-queue") && flags.contains_key("shard-weight") {
        return Err(CliError::Usage(
            "--single-queue opts out of sharding; it conflicts with --shard-weight".into(),
        ));
    }
    if flags.contains_key("single-queue") {
        builder = builder.shard(ShardPolicy::SingleQueue);
    } else if flags.contains_key("shard-weight") {
        builder = builder.shard_weight(num(flags, "shard-weight", 1.0f32)?);
    }
    let stop_flags: Vec<&str> = ["max-evals", "deadline-s", "stable-window"]
        .into_iter()
        .filter(|k| flags.contains_key(*k))
        .collect();
    if stop_flags.len() > 1 {
        return Err(CliError::Usage(format!(
            "choose one stop policy: --{} conflict",
            stop_flags.join(" and --")
        )));
    }
    if flags.contains_key("stable-eps") && !flags.contains_key("stable-window") {
        return Err(CliError::Usage("--stable-eps needs --stable-window".into()));
    }
    match stop_flags.first().copied() {
        Some("max-evals") => {
            builder = builder.stop(StopPolicy::MaxEvaluations(num(flags, "max-evals", 0u64)?));
        }
        Some("deadline-s") => {
            let secs: f64 = num(flags, "deadline-s", 0.0f64)?;
            // try_from: a finite but absurd value (1e300 overflows
            // Duration) must exit 2 like every other bad flag, not
            // panic.
            let deadline = if secs.is_finite() && secs >= 0.0 {
                std::time::Duration::try_from_secs_f64(secs).ok()
            } else {
                None
            };
            let Some(deadline) = deadline else {
                return Err(CliError::Usage(format!(
                    "bad --deadline-s value '{secs}': must be a non-negative number of seconds \
                     a deadline can hold"
                )));
            };
            builder = builder.stop(StopPolicy::Deadline(deadline));
        }
        Some("stable-window") => {
            builder = builder.stop(StopPolicy::RankingStable {
                window: num(flags, "stable-window", 0usize)?,
                epsilon: num(flags, "stable-eps", 0.0f32)?,
            });
        }
        _ => {}
    }
    Ok(builder.build()?)
}

fn complex_from(flags: &HashMap<String, String>) -> Result<(Molecule, Molecule), CliError> {
    if flags.contains_key("demo") {
        let (r, l) = mudock::molio::complex_1a30_like();
        return Ok((r, l));
    }
    let r = load(flags.get("receptor").ok_or("need --receptor or --demo")?)?;
    let l = load(flags.get("ligand").ok_or("need --ligand or --demo")?)?;
    Ok((r, l))
}

fn build_grids(
    receptor: &Molecule,
    ligands: &[&Molecule],
    spec: &CampaignSpec,
) -> mudock::grids::GridSet {
    let mut types: Vec<mudock::ff::AtomType> = ligands
        .iter()
        .flat_map(|l| l.atoms.iter().map(|a| a.ty))
        .collect();
    types.sort_unstable();
    types.dedup();
    // Box centered on the receptor pocket, covering the receptor span,
    // built at the campaign's pinned (or detected) SIMD level.
    GridBuilder::new(receptor, spec.dims_for(receptor))
        .with_types(&types)
        .build_simd(spec.grid_level())
}

fn cmd_dock(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let (receptor, ligand) = complex_from(flags)?;
    let spec = campaign_from(flags, "dock")?;
    eprintln!(
        "docking {} ({} atoms) into {} ({} atoms) with backend {}…",
        if ligand.name.is_empty() {
            "ligand"
        } else {
            &ligand.name
        },
        ligand.atoms.len(),
        if receptor.name.is_empty() {
            "receptor"
        } else {
            &receptor.name
        },
        receptor.atoms.len(),
        spec.backend.resolve()
    );
    let grids = build_grids(&receptor, &[&ligand], &spec);
    let engine = DockingEngine::new(&grids).map_err(|e| e.to_string())?;
    let prep = LigandPrep::new(ligand).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let report = engine
        .dock_campaign(&prep, &spec)
        .map_err(|e| e.to_string())?;
    println!(
        "best score: {:.3} kcal/mol  ({} evaluations in {:.2?})",
        report.best_score,
        report.evaluations,
        t0.elapsed()
    );
    println!(
        "improvement: {:.3} → {:.3} over {} generations",
        report.history[0],
        report.history.last().unwrap(),
        report.history.len()
    );

    if let Some(out) = flags.get("out") {
        // Write the best pose: transform a copy of the prepared molecule.
        let mut posed = prep.mol.clone();
        let mut conf = mudock::mol::ConformSoA::with_capacity(prep.base.n);
        mudock::core::transform::apply_pose_reference(
            &prep.base,
            &prep.plans,
            &report.best_genotype,
            &mut conf,
        );
        for (i, a) in posed.atoms.iter_mut().enumerate() {
            a.pos = conf.pos(i);
        }
        posed.name = format!("{} (docked)", posed.name);
        std::fs::write(out, mudock::molio::write(&posed)).map_err(|e| e.to_string())?;
        println!("best pose written to {out}");
    }
    Ok(())
}

/// The `N` of `--demo N`: `default` for a bare `--demo`, an error (not
/// a silent fallback) when a value is present but unparsable.
fn demo_count(flags: &HashMap<String, String>, default: usize) -> Result<usize, CliError> {
    match flags.get("demo").map(String::as_str) {
        None | Some("") => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --demo value '{v}'"))),
    }
}

/// A demo campaign: the shared flags, plus a snappy generation count
/// unless the user asked for one explicitly.
fn demo_campaign(flags: &HashMap<String, String>, name: &str) -> Result<CampaignSpec, CliError> {
    let mut spec = campaign_from(flags, name)?;
    if !flags.contains_key("generations") {
        spec.ga.generations = 60; // keep the demo snappy
    }
    Ok(spec)
}

/// The bundled synthetic screening complex every demo mode shares.
/// `screen --demo`, `serve --demo`, and `submit --demo` must screen
/// the same target on the same lattice — `submit`'s rankings are only
/// comparable to the local demos because these constants are the
/// single source of that complex.
const DEMO_RECEPTOR_SEED: u64 = 0xd0c6;
const DEMO_RECEPTOR_ATOMS: usize = 300;
const DEMO_RECEPTOR_RADIUS: f32 = 9.0;

fn demo_receptor() -> Molecule {
    mudock::molio::synthetic_receptor(
        DEMO_RECEPTOR_SEED,
        DEMO_RECEPTOR_ATOMS,
        DEMO_RECEPTOR_RADIUS,
    )
}

fn demo_grid_dims() -> GridDims {
    GridDims::centered(Vec3::ZERO, 11.0, 0.6)
}

fn cmd_screen(flags: &HashMap<String, String>) -> Result<(), CliError> {
    if !flags.contains_key("demo") {
        return Err(CliError::Usage(
            "screen currently supports --demo N (synthetic batch)".into(),
        ));
    }
    let n = demo_count(flags, 16)?;
    let threads = num(flags, "threads", mudock::pool::default_threads())?;
    let mut spec = demo_campaign(flags, "screen-demo")?;
    spec.grid_dims = Some(demo_grid_dims());
    let receptor = demo_receptor();
    let ligands = mudock::molio::mediate_like_set(spec.seed, n);
    eprintln!("screening {n} synthetic ligands on {threads} threads…");
    let grids = GridBuilder::new(&receptor, spec.dims_for(&receptor)).build_simd(spec.grid_level());
    let summary = screen_campaign(&grids, &ligands, &spec, threads);
    println!(
        "{} ligands in {:.2?} → {:.1} ligands/s",
        summary.results.len(),
        summary.elapsed,
        summary.throughput
    );
    println!("\nrank  ligand                              score (kcal/mol)");
    for (rank, idx) in summary.top_k(spec.top_k.min(n)).into_iter().enumerate() {
        let r = &summary.results[idx];
        println!(
            "{:>4}  {:<34} {:>10.3}",
            rank + 1,
            r.name,
            r.best_score.unwrap()
        );
    }
    Ok(())
}

/// The service sizing every `serve` mode shares, from the flag set:
/// `--threads`, `--jobs`, `--shards`, `--cache`, the spill tier
/// (`--spill-dir`, `--spill-cap`), and the cache lab knobs
/// (`--cache-policy`, `--cache-prefetch`, `--cache-trace`).
fn serve_config_from(
    flags: &HashMap<String, String>,
    job_slots: usize,
    threads: usize,
) -> Result<mudock::serve::ServeConfig, CliError> {
    use mudock::serve::{CachePolicy, ServeConfig, SpillConfig};
    let defaults = ServeConfig::default();
    let spill = match flags.get("spill-dir").filter(|d| !d.is_empty()) {
        Some(dir) => Some(SpillConfig {
            dir: dir.into(),
            capacity: num(flags, "spill-cap", 16usize)?.max(1),
        }),
        None => {
            if flags.contains_key("spill-cap") {
                return Err(CliError::Usage("--spill-cap needs --spill-dir".into()));
            }
            None
        }
    };
    let cache_capacity = num(flags, "cache", defaults.cache_capacity)?;
    if spill.is_some() && cache_capacity == 0 {
        return Err(CliError::Usage(
            "--spill-dir needs --cache >= 1: capacity 0 disables caching entirely, \
             so nothing would ever spill or reload"
                .into(),
        ));
    }
    let cache_policy = match flags.get("cache-policy") {
        Some(name) => CachePolicy::parse(name).ok_or_else(|| {
            CliError::Usage(format!("--cache-policy {name:?}: expected lru or slru"))
        })?,
        None => defaults.cache_policy,
    };
    let cache_prefetch = flags.contains_key("cache-prefetch");
    if cache_prefetch && spill.is_none() {
        return Err(CliError::Usage(
            "--cache-prefetch needs --spill-dir: prefetch reloads spilled grids, \
             it never builds"
                .into(),
        ));
    }
    Ok(ServeConfig {
        total_threads: threads,
        job_slots,
        shards: num(flags, "shards", 0usize)?,
        cache_capacity,
        spill,
        cache_policy,
        cache_prefetch,
        cache_trace: flags
            .get("cache-trace")
            .filter(|p| !p.is_empty())
            .map(std::path::PathBuf::from),
        trace: flags
            .get("trace-file")
            .filter(|p| !p.is_empty())
            .map(mudock::serve::TraceConfig::new),
        ..defaults
    })
}

/// Demo of the screening service: J concurrent jobs against one shared
/// synthetic receptor, showing the grid cache, fair thread sharing, and
/// incremental top-k sinks in action.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use mudock::serve::{JobSpec, LigandSource, ScreenService};
    use std::sync::Arc;

    if flags.contains_key("listen") {
        return cmd_serve_listen(flags);
    }
    if !flags.contains_key("demo") {
        return Err(CliError::Usage(
            "serve needs --demo N (synthetic batch per job) or --listen ADDR (network server)"
                .into(),
        ));
    }
    let n = demo_count(flags, 32)?;
    let jobs: usize = num(flags, "jobs", 2usize)?.max(1);
    let threads = num(flags, "threads", mudock::pool::default_threads())?;
    let base = {
        let mut c = demo_campaign(flags, "demo")?;
        c.grid_dims = Some(demo_grid_dims());
        c
    };

    let cfg = serve_config_from(flags, jobs.min(threads).max(1), threads)?;
    let service = ScreenService::try_start(cfg)
        .map_err(|e| CliError::Run(format!("starting service: {e}")))?;
    let receptor = Arc::new(demo_receptor());

    eprintln!("serving {jobs} jobs × {n} ligands on {threads} threads…");
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|j| {
            let campaign = CampaignSpec {
                name: format!("demo-{j}"),
                ..base.clone()
            };
            let mut spec = JobSpec {
                receptor: Arc::clone(&receptor),
                ligands: LigandSource::synth(base.seed.wrapping_add(j as u64), n),
                ..JobSpec::from(campaign)
            };
            if let Some(dir) = flags.get("jsonl") {
                spec.jsonl = Some(std::path::Path::new(dir).join(format!("demo-{j}.jsonl")));
            }
            if let Some(dir) = flags.get("checkpoint") {
                spec.checkpoint = Some(std::path::Path::new(dir).join(format!("demo-{j}.ckpt")));
            }
            service
                .submit(spec)
                .map_err(|e| CliError::Run(e.to_string()))
        })
        .collect::<Result<_, _>>()?;

    for handle in handles {
        let o = handle.wait();
        println!(
            "job {:<10} {:?}{}  {} ligands in {:.2?}  grid {}  best:",
            o.name,
            o.state,
            if o.stopped_early { " (early stop)" } else { "" },
            o.ligands_done,
            o.elapsed,
            if o.grid_cache_hit {
                "cache-hit"
            } else {
                "built"
            },
        );
        if let Some(err) = &o.error {
            println!("  error: {err}");
        }
        for (rank, r) in o.top.iter().enumerate() {
            println!("  {:>3}  {:<34} {:>10.3}", rank + 1, r.name, r.score);
        }
    }
    let elapsed = t0.elapsed();
    let stats = service.stats();
    println!(
        "\n{} ligands docked live in {:.2?} → {:.1} ligands/s  (cache: {} hit / {} miss, {:.0} % hit rate)",
        stats.ligands_docked,
        elapsed,
        stats.ligands_docked as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.cache.hits,
        stats.cache.misses,
        100.0 * stats.cache.hit_rate(),
    );
    service.shutdown();
    Ok(())
}

/// `mudock serve --listen ADDR`: the screening node as a network
/// service. Binds the HTTP frontend over a [`ScreenService`] and runs
/// until killed. The resolved address (important for `--listen …:0`)
/// is printed to stdout so scripts can capture the port.
fn cmd_serve_listen(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use mudock::serve::{NetConfig, NetServer, ScreenService};
    use std::sync::Arc;

    let addr = flags
        .get("listen")
        .filter(|a| !a.is_empty())
        .ok_or_else(|| CliError::Usage("--listen needs an ADDR (e.g. 127.0.0.1:7979)".into()))?;
    let jobs: usize = num(flags, "jobs", 2usize)?.max(1);
    let threads = num(flags, "threads", mudock::pool::default_threads())?;
    let cfg = serve_config_from(flags, jobs, threads)?;
    let service = Arc::new(
        ScreenService::try_start(cfg)
            .map_err(|e| CliError::Run(format!("starting service: {e}")))?,
    );
    let mut cfg = NetConfig::default();
    if let Some(dir) = flags.get("results").filter(|d| !d.is_empty()) {
        cfg.results_dir = dir.into();
    }
    // Off by default: on an open socket, server-side path sources are
    // a filesystem probe. Inline PDBQT text always works.
    cfg.allow_path_sources = flags.contains_key("allow-path-sources");
    cfg.max_connections = num(flags, "max-conns", cfg.max_connections)?.max(1);
    cfg.idle_timeout =
        std::time::Duration::from_secs(num(flags, "idle-s", cfg.idle_timeout.as_secs())?.max(1));
    cfg.header_timeout = std::time::Duration::from_secs(
        num(flags, "header-s", cfg.header_timeout.as_secs())?.max(1),
    );
    // 0 = auto (one loop per core, capped at 4).
    cfg.event_loops = num(flags, "event-loops", cfg.event_loops)?;
    let server = NetServer::bind(addr.as_str(), Arc::clone(&service), cfg)
        .map_err(|e| CliError::Run(format!("bind {addr}: {e}")))?;
    println!("mudock-serve listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    eprintln!(
        "endpoints: POST /jobs, GET /jobs/{{id}}, GET /jobs/{{id}}/results, \
         DELETE /jobs/{{id}}, GET /healthz, GET /stats, GET /metrics"
    );
    // Serve until the process is killed; jobs run on the service's
    // executors, connections on the frontend's event-loop thread.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `mudock coordinator --listen ADDR --nodes A,B`: federate existing
/// serve nodes into one screening cluster. Speaks the node dialect on
/// the frontend, so `mudock submit/poll/stats` work against it
/// unchanged.
fn cmd_coordinator(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use mudock::cluster::{ClusterConfig, Coordinator};

    let addr = flags
        .get("listen")
        .filter(|a| !a.is_empty())
        .ok_or_else(|| CliError::Usage("--listen needs an ADDR (e.g. 127.0.0.1:7878)".into()))?;
    let nodes: Vec<String> = flags
        .get("nodes")
        .map(|n| {
            n.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    if nodes.is_empty() {
        return Err(CliError::Usage(
            "coordinator needs --nodes HOST:PORT[,HOST:PORT...]".into(),
        ));
    }
    let defaults = ClusterConfig::default();
    let cfg = ClusterConfig {
        nodes,
        health_interval: std::time::Duration::from_millis(
            num(
                flags,
                "health-ms",
                defaults.health_interval.as_millis() as u64,
            )?
            .max(10),
        ),
        dead_after: num(flags, "dead-after", defaults.dead_after)?.max(1),
        scatter_min_ligands: num(flags, "scatter-min", defaults.scatter_min_ligands)?,
        max_parts: num(flags, "max-parts", defaults.max_parts)?.max(1),
        poll_interval: std::time::Duration::from_millis(
            num(flags, "poll-ms", defaults.poll_interval.as_millis() as u64)?.max(1),
        ),
        max_attempts: num(flags, "max-attempts", defaults.max_attempts)?.max(1),
        allow_path_sources: flags.contains_key("allow-path-sources"),
        event_loops: num(flags, "event-loops", defaults.event_loops)?,
        ..defaults
    };
    let n_nodes = cfg.nodes.len();
    let coordinator = Coordinator::bind(addr.as_str(), cfg)
        .map_err(|e| CliError::Run(format!("bind {addr}: {e}")))?;
    println!(
        "mudock-coordinator listening on {}",
        coordinator.local_addr()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    eprintln!(
        "federating {n_nodes} node(s); endpoints: POST /jobs, GET /jobs/{{id}}, \
         GET /jobs/{{id}}/results, DELETE /jobs/{{id}}, GET /healthz, GET /stats, GET /metrics"
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `mudock submit`: build a campaign from the shared flag set and POST
/// it to a remote server. Prints the assigned job id (alone, on
/// stdout) for scripting.
fn cmd_submit(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use mudock::serve::net::client;
    use mudock::serve::{wire, LigandSource, Priority, ReceptorSource};

    let addr = flags
        .get("addr")
        .filter(|a| !a.is_empty())
        .ok_or_else(|| CliError::Usage("submit needs --addr HOST:PORT".into()))?;
    let name = flags
        .get("name")
        .cloned()
        .unwrap_or_else(|| "remote".into());
    let priority = match flags.get("priority").map(String::as_str) {
        None | Some("") => Priority::Normal,
        Some(p) => wire::priority_parse(p)
            .ok_or_else(|| CliError::Usage(format!("bad --priority '{p}' (low|normal|high)")))?,
    };
    let (spec, receptor, ligands) = if flags.contains_key("demo") {
        let n = demo_count(flags, 16)?;
        let mut spec = demo_campaign(flags, &name)?;
        // The same synthetic complex (and lattice) the local serve
        // demo screens — unless --receptor-seed picks a different
        // synthetic target, which lands the job in its own shard (the
        // multi-receptor testing hook the CI shard smoke uses).
        spec.grid_dims = Some(demo_grid_dims());
        (
            spec,
            ReceptorSource::Synth {
                seed: num(flags, "receptor-seed", DEMO_RECEPTOR_SEED)?,
                atoms: DEMO_RECEPTOR_ATOMS,
                radius: DEMO_RECEPTOR_RADIUS,
            },
            LigandSource::synth(num(flags, "seed", 42u64)?, n),
        )
    } else {
        let rpath = flags
            .get("receptor")
            .filter(|p| !p.is_empty())
            .ok_or_else(|| {
                CliError::Usage(
                    "submit needs --demo N or --receptor R.pdbqt --ligands L.pdbqt".into(),
                )
            })?;
        let lpath = flags
            .get("ligands")
            .filter(|p| !p.is_empty())
            .ok_or_else(|| {
                CliError::Usage(
                    "submit needs --ligands FILE (multi-model PDBQT) with --receptor".into(),
                )
            })?;
        // Read both client-side and ship the text inline, so the server
        // does not need a shared filesystem.
        let rtext =
            std::fs::read_to_string(rpath).map_err(|e| CliError::Run(format!("{rpath}: {e}")))?;
        let ltext =
            std::fs::read_to_string(lpath).map_err(|e| CliError::Run(format!("{lpath}: {e}")))?;
        (
            campaign_from(flags, &name)?,
            ReceptorSource::Pdbqt(rtext),
            LigandSource::from_pdbqt(ltext),
        )
    };
    let id = client::submit(addr, &spec, &receptor, &ligands, priority)
        .map_err(|e| CliError::Run(e.to_string()))?;
    eprintln!("submitted campaign '{name}' to {addr} as job {id}");
    println!("{id}");
    Ok(())
}

/// `mudock poll`: status / wait / results / cancel against a remote
/// job. Status and results go to stdout verbatim (JSON / JSONL).
fn cmd_poll(flags: &HashMap<String, String>, positional: &[String]) -> Result<(), CliError> {
    use mudock::serve::net::client;
    use mudock::serve::JobState;

    let addr = flags
        .get("addr")
        .filter(|a| !a.is_empty())
        .ok_or_else(|| CliError::Usage("poll needs --addr HOST:PORT".into()))?;
    let id: u64 = positional
        .first()
        .ok_or_else(|| CliError::Usage("poll needs a job id".into()))?
        .parse()
        .map_err(|_| CliError::Usage(format!("bad job id '{}'", positional[0])))?;
    let run = |e: client::ClientError| CliError::Run(e.to_string());

    if flags.contains_key("cancel") {
        let status = client::cancel(addr, id).map_err(run)?;
        eprintln!(
            "job {id}: cancellation requested (state {})",
            mudock::serve::wire::state_name(status.state)
        );
    }
    if flags.contains_key("wait") {
        let interval = std::time::Duration::from_millis(num(flags, "interval-ms", 100u64)?.max(1));
        let status = client::wait(addr, id, interval).map_err(run)?;
        if status.state == JobState::Failed {
            let why = status
                .outcome
                .and_then(|o| o.error)
                .unwrap_or_else(|| "no error detail".into());
            return Err(CliError::Run(format!("job {id} failed: {why}")));
        }
    }
    if flags.contains_key("results") {
        print!("{}", client::results(addr, id).map_err(run)?);
        return Ok(());
    }
    let resp = client::request(addr, "GET", &format!("/jobs/{id}"), None)
        .map_err(run)?
        .ok()
        .map_err(run)?;
    println!("{}", resp.body);
    Ok(())
}

/// `mudock stats`: one `/stats` snapshot (JSON) from a remote server —
/// or, with `--metrics`, the raw Prometheus text exposition. Both go
/// to stdout verbatim for piping into `jq` / `promtool`.
fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use mudock::serve::net::client;

    let addr = flags
        .get("addr")
        .filter(|a| !a.is_empty())
        .ok_or_else(|| CliError::Usage("stats needs --addr HOST:PORT".into()))?;
    let path = if flags.contains_key("metrics") {
        "/metrics"
    } else {
        "/stats"
    };
    let run = |e: client::ClientError| CliError::Run(e.to_string());
    let resp = client::request(addr, "GET", path, None)
        .map_err(run)?
        .ok()
        .map_err(run)?;
    print!("{}", resp.body);
    if !resp.body.ends_with('\n') {
        println!();
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    // Per-command boolean flags (never consume the next argument).
    // `--demo` is absent on purpose: its optional value (`--demo N`)
    // relies on the greedy form. For `poll`, `--results` is boolean;
    // for `serve` it takes a directory.
    let boolean: &[&str] = match cmd.as_str() {
        "poll" => &["wait", "cancel", "results"],
        "stats" => &["metrics"],
        "serve" => &[
            "local-search",
            "allow-path-sources",
            "single-queue",
            "cache-prefetch",
        ],
        "coordinator" => &["allow-path-sources"],
        "dock" | "screen" | "submit" => &["local-search", "single-queue"],
        _ => &[],
    };
    let (flags, positional) = parse_args(&args[1..], boolean);
    let result = match cmd.as_str() {
        "info" => cmd_info(&positional),
        "dock" => cmd_dock(&flags),
        "screen" => cmd_screen(&flags),
        "serve" => cmd_serve(&flags),
        "coordinator" => cmd_coordinator(&flags),
        "submit" => cmd_submit(&flags),
        "poll" => cmd_poll(&flags, &positional),
        "stats" => cmd_stats(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n{}",
            usage()
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
        Err(CliError::Run(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
