//! Quickstart: dock one ligand into a receptor pocket and print the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mudock::core::{Backend, DockParams, DockingEngine, GaParams, LigandPrep};
use mudock::grids::{GridBuilder, GridDims};
use mudock::mol::Vec3;
use mudock::simd::SimdLevel;

fn main() {
    // 1. Inputs: a receptor + ligand (the PDBbind-1a30-like bundled complex;
    //    real PDBQT files load via mudock::molio::parse).
    let (receptor, ligand) = mudock::molio::complex_1a30_like();
    println!(
        "receptor: {} atoms | ligand: {} atoms, {} rotatable bonds",
        receptor.atoms.len(),
        ligand.atoms.len(),
        ligand.num_rotatable_bonds()
    );

    // 2. AutoGrid step: precompute interaction maps around the pocket for
    //    the ligand's atom types.
    let mut types: Vec<mudock::ff::AtomType> = ligand.atoms.iter().map(|a| a.ty).collect();
    types.sort_unstable();
    types.dedup();
    let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.5);
    let level = SimdLevel::detect();
    println!(
        "building grid maps ({} points/map) with {level}…",
        dims.total()
    );
    let maps = GridBuilder::new(&receptor, dims)
        .with_types(&types)
        .build_simd(level);

    // 3. Dock: genetic algorithm over poses, explicit SIMD scoring.
    let engine = DockingEngine::new(&maps).expect("grid fits the engine");
    let prep = LigandPrep::new(ligand).expect("valid ligand");
    let params = DockParams {
        ga: GaParams {
            population: 100,
            generations: 120,
            ..Default::default()
        },
        seed: 42,
        backend: Backend::Explicit(level),
        search_radius: Some(5.0),
        local_search: None,
    };
    let t0 = std::time::Instant::now();
    let report = engine.dock(&prep, &params).expect("docking succeeds");
    let dt = t0.elapsed();

    println!(
        "\nbest score: {:.3} kcal/mol after {} pose evaluations in {:.2?}",
        report.best_score, report.evaluations, dt
    );
    println!(
        "pose: translation {}, {} torsions",
        report.best_genotype.translation(),
        report.best_genotype.n_torsions()
    );
    println!("\nconvergence (best score per 10 generations):");
    for (i, chunk) in report.history.chunks(10).enumerate() {
        println!("  gen {:>4}: {:>10.3}", i * 10, chunk[0]);
    }
}
