//! Virtual screening: dock a MEDIATE-like batch over all cores with the
//! work-stealing pool and rank the hits (the paper's Figure 2b scenario,
//! scaled to a laptop).
//!
//! ```text
//! cargo run --release --example virtual_screen [n_ligands] [threads]
//! ```

use mudock::core::{screen, Backend, DockParams, GaParams};
use mudock::grids::{GridBuilder, GridDims};
use mudock::mol::Vec3;
use mudock::simd::SimdLevel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_ligands: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let threads: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(mudock::pool::default_threads);

    let receptor = mudock::molio::synthetic_receptor(0xcafe, 300, 9.0);
    let ligands = mudock::molio::mediate_like_set(0xf00d, n_ligands);
    println!(
        "screening {} ligands on {} threads…",
        ligands.len(),
        threads
    );

    // Screening sets span many atom types: build the full map set once.
    let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.6);
    let maps = GridBuilder::new(&receptor, dims).build_simd(SimdLevel::detect());
    println!(
        "grid maps: {:.1} MiB",
        maps.bytes() as f64 / (1024.0 * 1024.0)
    );

    let params = DockParams {
        ga: GaParams {
            population: 50,
            generations: 60,
            ..Default::default()
        },
        seed: 7,
        backend: Backend::Explicit(SimdLevel::detect()),
        search_radius: Some(5.0),
        local_search: None,
    };
    let summary = screen(&maps, &ligands, &params, threads);

    println!(
        "\n{} ligands in {:.2?} → {:.1} ligands/s on {} threads",
        summary.results.len(),
        summary.elapsed,
        summary.throughput,
        summary.threads
    );
    let stats = summary.total_stats();
    println!(
        "kernel work: {} poses, {} pair evaluations, {} grid lookups",
        stats.poses_scored, stats.pairs_evaluated, stats.grid_lookups
    );

    println!("\ntop 5 hits:");
    for (rank, idx) in summary.top_k(5).into_iter().enumerate() {
        let r = &summary.results[idx];
        println!(
            "  #{} {:<28} {:>9.3} kcal/mol",
            rank + 1,
            r.name,
            r.best_score.unwrap()
        );
    }
}
