//! Virtual screening: dock a MEDIATE-like batch over all cores with the
//! work-stealing pool and rank the hits (the paper's Figure 2b scenario,
//! scaled to a laptop).
//!
//! The whole run is described by one `Campaign::builder()` spec — the
//! same shape the `mudock-serve` service and the CLI consume — lowered
//! here onto the local batch path `screen_campaign`.
//!
//! ```text
//! cargo run --release --example virtual_screen [n_ligands] [threads]
//! ```

use mudock::core::{screen_campaign, Campaign, ChunkPolicy};
use mudock::grids::{GridBuilder, GridDims};
use mudock::mol::Vec3;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_ligands: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let threads: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(mudock::pool::default_threads);

    let spec = Campaign::builder()
        .name("virtual-screen")
        .population(50)
        .generations(60)
        .seed(7)
        .search_radius(5.0)
        .top_k(5)
        // Chunks sized to ~250 ms of measured docking each, so progress
        // (and, in the service, checkpoints) land at a steady cadence
        // whatever the GA parameters cost.
        .chunk(ChunkPolicy::Adaptive {
            target: std::time::Duration::from_millis(250),
        })
        .grid_dims(GridDims::centered(Vec3::ZERO, 11.0, 0.6))
        .build()
        .expect("a valid campaign");

    let receptor = mudock::molio::synthetic_receptor(0xcafe, 300, 9.0);
    let ligands = mudock::molio::mediate_like_set(0xf00d, n_ligands);
    println!(
        "screening {} ligands on {} threads…",
        ligands.len(),
        threads
    );

    // Screening sets span many atom types: build the full map set once,
    // at the campaign's (detected or pinned) SIMD level.
    let maps = GridBuilder::new(&receptor, spec.dims_for(&receptor)).build_simd(spec.grid_level());
    println!(
        "grid maps: {:.1} MiB",
        maps.bytes() as f64 / (1024.0 * 1024.0)
    );

    let summary = screen_campaign(&maps, &ligands, &spec, threads);

    println!(
        "\n{} ligands in {:.2?} → {:.1} ligands/s on {} threads",
        summary.results.len(),
        summary.elapsed,
        summary.throughput,
        summary.threads
    );
    let stats = summary.total_stats();
    println!(
        "kernel work: {} poses, {} pair evaluations, {} grid lookups",
        stats.poses_scored, stats.pairs_evaluated, stats.grid_lookups
    );

    println!("\ntop {} hits:", spec.top_k);
    for (rank, idx) in summary.top_k(spec.top_k).into_iter().enumerate() {
        let r = &summary.results[idx];
        println!(
            "  #{} {:<28} {:>9.3} kcal/mol",
            rank + 1,
            r.name,
            r.best_score.unwrap()
        );
    }
}
