//! Inspect AutoGrid-style interaction maps: build them for a pocket and
//! print an ASCII contour of the carbon-probe map through the pocket
//! center, plus per-map statistics.
//!
//! ```text
//! cargo run --release --example grid_maps
//! ```

use mudock::ff::AtomType;
use mudock::grids::{GridBuilder, GridDims, DESOLV_MAP, ELEC_MAP};
use mudock::mol::Vec3;
use mudock::simd::SimdLevel;

fn main() {
    let receptor = mudock::molio::synthetic_receptor(0xab, 260, 8.5);
    let dims = GridDims::centered(Vec3::ZERO, 10.0, 0.5);
    println!(
        "building maps: {}³ points, {:.2} Å spacing…",
        dims.npts[0], dims.spacing
    );
    let maps = GridBuilder::new(&receptor, dims)
        .with_types(&[AtomType::C, AtomType::OA, AtomType::HD])
        .build_simd(SimdLevel::detect());

    // Slice through the pocket center (z = 0): '#' repulsive wall,
    // '-'/'.' attractive-to-neutral, '+' mildly positive.
    println!("\ncarbon-probe map, z = 0 slice:");
    let n = dims.npts[0];
    for iy in (0..n).step_by(2) {
        let mut row = String::new();
        for ix in (0..n).step_by(1) {
            let p = dims.point(ix, iy, n / 2);
            let e = maps.sample(AtomType::C.idx(), p);
            row.push(match e {
                e if e > 10.0 => '#',
                e if e > 0.5 => '+',
                e if e > -0.05 => '.',
                e if e > -0.5 => '-',
                _ => '=',
            });
        }
        println!("  {row}");
    }

    println!("\nper-map statistics:");
    for (name, idx) in [
        ("C (vdW)", AtomType::C.idx()),
        ("OA (acceptor)", AtomType::OA.idx()),
        ("HD (donor H)", AtomType::HD.idx()),
        ("electrostatic", ELEC_MAP),
        ("desolvation", DESOLV_MAP),
    ] {
        let m = maps.map(idx);
        let min = m.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = m.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mean = m.iter().sum::<f32>() / m.len() as f32;
        println!("  {name:<14} min {min:>10.3}  mean {mean:>10.3}  max {max:>12.1}");
    }
    println!(
        "\ntotal map set: {:.1} MiB — the constant lookup structure the paper's \
         memory-bound inter-energy kernel gathers from",
        maps.bytes() as f64 / (1024.0 * 1024.0)
    );
}
