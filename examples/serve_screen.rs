//! The screening *service*: submit concurrent jobs against one receptor
//! and watch the serve layer at work — the grid cache absorbing the
//! dominant fixed cost, chunks streaming through the work-stealing pool,
//! and per-job top-k rankings folding incrementally.
//!
//! Each job is a `Campaign::builder()` spec bound to the service by
//! `JobSpec::from`. The last job shows two policies the campaign API
//! adds: it may stop early once its ranking stabilizes, and jobs could
//! equally pin distinct SIMD levels (`.pin_level(...)`) and still share
//! this node — the grid cache keys entries per level.
//!
//! ```text
//! cargo run --release --example serve_screen [n_ligands_per_job] [jobs]
//! ```

use std::sync::Arc;

use mudock::core::{Campaign, ChunkPolicy, StopPolicy};
use mudock::grids::GridDims;
use mudock::mol::Vec3;
use mudock::serve::{JobSpec, LigandSource, Priority, ScreenService, ServeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_ligands: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let jobs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let threads = mudock::pool::default_threads();
    let service = ScreenService::start(ServeConfig {
        total_threads: threads,
        job_slots: 2,
        ..ServeConfig::default()
    });
    println!("service up: {threads} threads, 2 job slots");

    // One hot target shared by every job: only the first build pays.
    let receptor = Arc::new(mudock::molio::synthetic_receptor(0xcafe, 300, 9.0));
    let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.6);

    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|j| {
            let mut builder = Campaign::builder()
                .name(format!("campaign-{j}"))
                .population(50)
                .generations(60)
                .seed(7)
                .search_radius(5.0)
                .top_k(5)
                .chunk(ChunkPolicy::Fixed(8))
                .grid_dims(dims);
            // The last job demonstrates early termination: once its
            // top-5 has held still for two consecutive chunks, the stop
            // policy cancels the rest of its stream.
            if j == jobs - 1 {
                builder = builder.stop(StopPolicy::RankingStable {
                    window: 2,
                    epsilon: 0.0,
                });
            }
            let campaign = builder.build().expect("a valid demo campaign");
            service
                .submit(JobSpec {
                    receptor: Arc::clone(&receptor),
                    ligands: LigandSource::synth(0xf00d + j as u64, n_ligands),
                    // The last-submitted job jumps the queue.
                    priority: if j == jobs - 1 {
                        Priority::High
                    } else {
                        Priority::Normal
                    },
                    ..JobSpec::from(campaign)
                })
                .expect("service accepts the demo jobs")
        })
        .collect();

    for handle in handles {
        let o = handle.wait();
        println!(
            "\n{} ({:?}{}): {} ligands in {:.2?}, grid {}",
            o.name,
            o.state,
            if o.stopped_early {
                ", stopped early"
            } else {
                ""
            },
            o.ligands_done,
            o.elapsed,
            if o.grid_cache_hit {
                "from cache"
            } else {
                "built fresh"
            }
        );
        for (rank, r) in o.top.iter().enumerate() {
            println!("  #{} {:<28} {:>9.3} kcal/mol", rank + 1, r.name, r.score);
        }
    }

    let stats = service.stats();
    println!(
        "\n{} ligands in {:.2?} → {:.1} ligands/s",
        stats.ligands_docked,
        t0.elapsed(),
        stats.ligands_docked as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    );
    println!(
        "grid cache: {} hits / {} misses ({:.0} % hit rate) — the paper's dominant fixed cost, paid once",
        stats.cache.hits,
        stats.cache.misses,
        100.0 * stats.cache.hit_rate()
    );
    if let Some(build) = service
        .monitor()
        .region(mudock::serve::cache::GRID_BUILD_REGION)
    {
        println!(
            "grid builds: {} × {:.2?} total",
            build.invocations, build.elapsed
        );
    }
    service.shutdown();
}
