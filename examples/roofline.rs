//! Roofline analysis of this host: measure peak FLOP/s and bandwidth with
//! the likwid-bench-style microbenchmarks, place the real docking kernels
//! on the plot (paper Figure 5 methodology, applied to the actual machine).
//!
//! ```text
//! cargo run --release --example roofline
//! ```

use mudock::core::Backend;
use mudock::perf::{peak, KernelPoint, Roofline};

fn main() {
    println!("measuring host peaks (likwid-bench style)…");
    let scalar_gflops = peak::peakflops_scalar(3_000_000);
    let bw = peak::load_bandwidth(64, 3);
    println!("  scalar FMA peak ≈ {scalar_gflops:.2} GFLOP/s per core");
    println!("  streaming load bandwidth ≈ {bw:.2} GB/s\n");

    let lanes = mudock::simd::SimdLevel::detect().lanes() as f64;
    let roof = Roofline::new("host", bw)
        .with_ceiling("sp_scalar", scalar_gflops)
        .with_ceiling("sp_vector+fma", scalar_gflops * lanes);

    // Place the real pose-scoring kernel: FLOPs estimated from the kernel
    // templates (see mudock-archsim::opmix), time measured on this host.
    let wl = mudock_bench_shim::host_workload();
    let flops_per_pose = (wl.prep.pairs.n as f64) * 94.0 + (wl.prep.base.n as f64) * 80.0;
    println!("roofline ({}):", roof.name);
    for (ai, gf) in roof.series(0.05, 200.0, 12) {
        println!("  AI {ai:>8.2} → attainable {gf:>8.1} GFLOP/s");
    }
    println!("\nkernel points (scoring one pose end-to-end):");
    for backend in Backend::available() {
        let secs = wl.seconds_per_pose(backend);
        let gflops = flops_per_pose / secs / 1e9;
        // Docking is compute-bound: most traffic is cache-resident, only
        // ~1 % leaks to DRAM (Table V), so AI is high.
        let ai = 50.0;
        let p = KernelPoint { ai, gflops };
        println!(
            "  {:<10} {:>8.2} GFLOP/s ({:>5.1}% of roof at AI {ai})",
            backend.name(),
            gflops,
            100.0 * roof.efficiency(p)
        );
    }
}

/// Tiny local shim so the example does not depend on the bench crate.
mod mudock_bench_shim {
    use mudock::core::{DockingEngine, Genotype, LigandPrep};
    use mudock::grids::{GridBuilder, GridDims, GridSet};
    use mudock::mol::{ConformSoA, Vec3};
    use mudock::simd::SimdLevel;

    pub struct Wl {
        pub grids: GridSet,
        pub prep: LigandPrep,
        poses: Vec<Genotype>,
    }

    impl Wl {
        pub fn seconds_per_pose(&self, backend: mudock::core::Backend) -> f64 {
            let engine = DockingEngine::new(&self.grids).unwrap();
            let mut scratch = ConformSoA::with_capacity(self.prep.base.n);
            let mut sink = 0.0;
            for p in &self.poses {
                sink += engine.score(&self.prep, p, &mut scratch, backend);
            }
            let t0 = std::time::Instant::now();
            for p in &self.poses {
                sink += engine.score(&self.prep, p, &mut scratch, backend);
            }
            std::hint::black_box(sink);
            t0.elapsed().as_secs_f64() / self.poses.len() as f64
        }
    }

    pub fn host_workload() -> Wl {
        use rand::{rngs::StdRng, SeedableRng};
        let (receptor, ligand) = mudock::molio::complex_1a30_like();
        let mut types: Vec<mudock::ff::AtomType> = ligand.atoms.iter().map(|a| a.ty).collect();
        types.sort_unstable();
        types.dedup();
        let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.55);
        let grids = GridBuilder::new(&receptor, dims)
            .with_types(&types)
            .build_simd(SimdLevel::detect());
        let prep = LigandPrep::new(ligand).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let poses = (0..300)
            .map(|_| Genotype::random(&mut rng, prep.n_torsions(), Vec3::ZERO, 6.0))
            .collect();
        Wl { grids, prep, poses }
    }
}
