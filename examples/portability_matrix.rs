//! Regenerate the paper's Figure 6 performance-portability matrix from the
//! cross-architecture model (plus the host's real backend spread).
//!
//! ```text
//! cargo run --release --example portability_matrix
//! ```

use mudock::archsim::Study;

fn main() {
    println!("building the cross-architecture study (runs short real docking)…\n");
    let study = Study::new();
    let m = study.fig6();

    print!("{:<10}", "Arch");
    for c in &m.compilers {
        print!("{c:>8}");
    }
    println!();
    for (r, arch) in m.archs.iter().enumerate() {
        print!("{arch:<10}");
        for eff in &m.eff[r] {
            match eff {
                Some(e) => print!("{e:>8.2}"),
                None => print!("{:>8}", "-"),
            }
        }
        println!();
    }
    print!("{:<10}", "H-mean");
    for h in m.harmonic_means() {
        print!("{h:>8.2}");
    }
    println!("\n\npaper Figure 6 for comparison:");
    println!("  grace:    GCC .50  Clang 1.00  HWY .76  NVCC .43");
    println!("  genoa:    GCC 1.00 Clang .78   HWY .93  AOCC .91");
    println!("  spr:      GCC .71  Clang .75   HWY 1.00 ICPX .85");
    println!("  a64fx:    GCC .12  Clang .84   HWY .80  FCC 1.00");
    println!("  graviton: GCC .49  Clang 1.00  HWY .73");
    println!("  H-means:  GCC .33  Clang .86   HWY .83  (vendor compilers 0)");
}
