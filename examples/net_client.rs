//! The network API in one process: bind the HTTP frontend on a loopback
//! socket, then drive it exactly as a remote client would — submit a
//! campaign, poll for progress, stream the JSONL results, and read the
//! service stats.
//!
//! ```text
//! cargo run --release --example net_client
//! ```
//!
//! Two-process form of the same loop (any HTTP client works — the API
//! is plain JSON over HTTP/1.1):
//!
//! ```text
//! mudock serve --listen 127.0.0.1:7979           # terminal A
//! mudock submit --addr 127.0.0.1:7979 --demo 16  # terminal B → prints the id
//! mudock poll --addr 127.0.0.1:7979 1 --wait
//! mudock poll --addr 127.0.0.1:7979 1 --results
//! ```

use std::sync::Arc;
use std::time::Duration;

use mudock::core::{Campaign, ChunkPolicy};
use mudock::grids::GridDims;
use mudock::mol::Vec3;
use mudock::serve::net::client;
use mudock::serve::{
    LigandSource, NetConfig, NetServer, Priority, ReceptorSource, ScreenService, ServeConfig,
};

fn main() {
    // A screening node: the docking service plus its network frontend.
    let service = Arc::new(ScreenService::start(ServeConfig {
        total_threads: mudock::pool::default_threads(),
        ..ServeConfig::default()
    }));
    let mut server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr().to_string();
    println!("node listening on {addr}");

    // The client side: a validated campaign, a receptor, and a ligand
    // stream — all of it serialized by the wire codec, nothing shared
    // in-process.
    let campaign = Campaign::builder()
        .name("net-demo")
        .population(12)
        .generations(8)
        .seed(7)
        .search_radius(4.0)
        .top_k(5)
        .chunk(ChunkPolicy::Fixed(4))
        .grid_dims(GridDims::centered(Vec3::ZERO, 11.0, 0.6))
        .build()
        .expect("a valid campaign");
    let id = client::submit(
        &addr,
        &campaign,
        &ReceptorSource::Synth {
            seed: 0xd0c6,
            atoms: 300,
            radius: 9.0,
        },
        &LigandSource::synth(7, 20),
        Priority::Normal,
    )
    .expect("submit over the socket");
    println!("submitted job {id}");

    // Poll until terminal, showing progress as chunks land.
    loop {
        let status = client::poll(&addr, id).expect("poll");
        println!(
            "  job {id}: {} ({} ligands, {} chunks)",
            mudock::serve::wire::state_name(status.state),
            status.ligands_done,
            status.chunks_done
        );
        if status.is_terminal() {
            let outcome = status.outcome.expect("terminal outcome");
            println!("top {} ligands:", outcome.top.len());
            for (rank, r) in outcome.top.iter().enumerate() {
                println!("  {:>3}  {:<34} {:>10.3}", rank + 1, r.name, r.score);
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // The per-ligand stream the job wrote while running.
    let results = client::results(&addr, id).expect("results");
    println!("{} JSONL result lines", results.lines().count());

    let stats = client::request(&addr, "GET", "/stats", None)
        .expect("stats")
        .body;
    println!("stats: {stats}");

    server.shutdown();
    service.shutdown();
}
