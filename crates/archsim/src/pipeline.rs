//! Analytical throughput/latency model: converts a workload's operation
//! mix plus a (compiler, architecture) codegen description and a cache
//! simulation into execution-time, stall, vectorization-ratio, FLOP and
//! energy estimates.
//!
//! Model structure (each term is first-order and documented):
//!
//! * **compute** — per kernel, issue-slot counts divided by
//!   `pipes × effective lanes`; gathers never amortize with width (they
//!   issue per element on every ISA here); the `exp` op expands to
//!   polynomial (≈13 slots), FEXPA (≈2), or an unvectorized libm call
//!   (≈30 scalar slots) depending on codegen — the paper's decisive math
//!   library axis.
//! * **memory** — per-level miss counts from the trace-driven cache
//!   simulator × next-level latencies, divided by an MLP factor bounded
//!   by ROB size (the Table II resource that separates A64FX from the
//!   rest).
//! * **latency exposure** — small-ROB cores cannot hide long FP
//!   dependency chains; calibrated so A64FX shows the paper's ≈70 % stall
//!   fraction (Figure 4).

use crate::arch::ArchConfig;
use crate::cache::CacheOutcome;
use crate::compiler::Codegen;
use crate::opmix::{
    KernelMix, GA_PER_GENE, INTER_PER_ATOM, INTRA_PER_PAIR, TRANSFORM_RIGID_PER_ATOM,
    TRANSFORM_TORSION_PER_ATOM,
};
use crate::workload::Workload;

/// Issue-slot cost of one exponential by implementation.
pub const EXP_SLOTS_POLY: f64 = 13.0;
pub const EXP_SLOTS_FEXPA: f64 = 2.0;
pub const EXP_SLOTS_LIBM: f64 = 30.0;

/// FLOPs credited per exponential by implementation (matches what a
/// hardware FLOP counter would see).
pub const EXP_FLOPS_POLY: f64 = 13.0;
pub const EXP_FLOPS_FEXPA: f64 = 2.0;
pub const EXP_FLOPS_LIBM: f64 = 25.0;

/// Per-kernel model output.
#[derive(Clone, Debug)]
pub struct KernelEstimate {
    pub name: &'static str,
    /// Lanes the emitted code uses for this kernel (1 = scalar).
    pub lanes: usize,
    pub compute_cycles: f64,
    pub vector_instrs: f64,
    pub scalar_instrs: f64,
    pub flops: f64,
}

/// Model output for one ligand's docking run on one core.
#[derive(Clone, Debug)]
pub struct RunEstimate {
    pub seconds_per_ligand: f64,
    pub cycles_per_ligand: f64,
    pub compute_cycles: f64,
    pub mem_stall_cycles: f64,
    pub latency_stall_cycles: f64,
    /// Fraction of cycles not doing useful issue (Figure 4's metric).
    pub stall_frac: f64,
    /// Vector instructions / all instructions (Figure 3's metric).
    pub vec_ratio: f64,
    pub flops_per_ligand: f64,
    pub dram_bytes_per_ligand: f64,
    pub kernels: Vec<KernelEstimate>,
}

impl RunEstimate {
    /// Attained GFLOP/s for one core.
    pub fn gflops(&self) -> f64 {
        self.flops_per_ligand / self.seconds_per_ligand / 1e9
    }

    /// Arithmetic intensity between LLC and DRAM (Table V's metric).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes_per_ligand > 0.0 {
            self.flops_per_ligand / self.dram_bytes_per_ligand
        } else {
            f64::INFINITY
        }
    }
}

/// Kernels and their per-ligand element counts for a workload.
fn kernel_elements(wl: &Workload) -> Vec<(KernelMix, f64)> {
    let poses = wl.poses_per_ligand;
    vec![
        (INTRA_PER_PAIR, wl.pairs * poses),
        (INTER_PER_ATOM, wl.atoms * poses),
        (TRANSFORM_RIGID_PER_ATOM, wl.atoms * poses),
        (TRANSFORM_TORSION_PER_ATOM, wl.atoms * wl.torsions * poses),
        (GA_PER_GENE, wl.genes * poses),
    ]
}

/// Estimate one ligand's docking on a single core of `arch` compiled per
/// `cg`, with the memory behaviour of `cache` (a single-core or per-core
/// multi-core cache outcome over `wl`'s trace).
pub fn estimate(
    arch: &ArchConfig,
    cg: &Codegen,
    wl: &Workload,
    cache: &CacheOutcome,
) -> RunEstimate {
    let exec_lanes = arch.exec_lanes().max(1);
    let pipes = arch.vec_pipes.max(1) as f64;

    let mut kernels = Vec::new();
    let mut compute_cycles = 0.0;
    let mut vector_instrs = 0.0;
    let mut scalar_instrs = 0.0;
    let mut flops = 0.0;
    let mut total_issue_instrs = 0.0;

    for (k, elements) in kernel_elements(wl) {
        // GA control flow never vectorizes; math-bearing kernels only
        // vectorize when the codegen has vector math.
        let emitted_lanes = if k.name == "ga" || (k.contains_exp && !cg.math_vectorized) {
            1
        } else {
            (cg.vec_bits / 32).max(1)
        };
        let eff_lanes = emitted_lanes.min(exec_lanes).max(1) as f64;

        let mix = k.per_element.scaled(elements);
        let (exp_slots, exp_flops) = if emitted_lanes == 1 && k.contains_exp {
            (EXP_SLOTS_LIBM, EXP_FLOPS_LIBM)
        } else if cg.fexpa {
            (EXP_SLOTS_FEXPA, EXP_FLOPS_FEXPA)
        } else {
            (EXP_SLOTS_POLY, EXP_FLOPS_POLY)
        };

        let issue_slots = mix.issue_slots(cg.fma) + mix.exp * exp_slots;
        let fp_cycles = issue_slots / (pipes * eff_lanes);
        // Gathers sustain a few elements per cycle on wide machines
        // (hardware vpgatherdps / SVE gathers) but never amortize like
        // contiguous loads; scalar code gets the two load ports.
        let gather_rate = eff_lanes.clamp(2.0, 4.0);
        let ld_cycles =
            mix.load / eff_lanes / 2.0 + mix.gather / gather_rate + mix.store / eff_lanes;
        let int_cycles = mix.int_ops / (2.0 * eff_lanes);
        let k_compute = fp_cycles.max(ld_cycles).max(int_cycles);

        let instr_estimate =
            (issue_slots + mix.load + mix.store + mix.gather + mix.int_ops) / eff_lanes;
        // The paper scopes the vectorization ratio to the docking kernels
        // (LIKWID markers); GA bookkeeping sits outside the markers.
        if k.name != "ga" {
            if emitted_lanes > 1 {
                vector_instrs += instr_estimate;
            } else {
                scalar_instrs += instr_estimate;
            }
        }
        let k_flops = mix.flops(exp_flops);
        flops += k_flops;
        compute_cycles += k_compute;
        // Latency exposure is per *instruction*: vector code retires the
        // same work in fewer, wider instructions.
        total_issue_instrs += issue_slots / eff_lanes;

        kernels.push(KernelEstimate {
            name: k.name,
            lanes: emitted_lanes,
            compute_cycles: k_compute,
            vector_instrs: if emitted_lanes > 1 {
                instr_estimate
            } else {
                0.0
            },
            scalar_instrs: if emitted_lanes > 1 {
                0.0
            } else {
                instr_estimate
            },
            flops: k_flops,
        });
    }

    // ---- memory stalls from the cache simulation ------------------------
    // The trace covers `trace_poses` poses; scale to the full schedule.
    let scale = wl.poses_per_ligand / wl.trace_poses as f64;
    let mut stall_raw = 0.0;
    for (li, level) in cache.levels.iter().enumerate() {
        let next_lat = if li + 1 < arch.caches.len() {
            arch.caches[li + 1].latency_cycles as f64
        } else {
            arch.mem_lat_cycles() as f64
        };
        stall_raw += level.misses as f64 * next_lat;
    }
    // Normalize by the number of cores that contributed to the outcome
    // (multi-core replays aggregate all cores' accesses).
    let cores_in_outcome =
        (cache.total_accesses as f64 / (wl.traces[0].len() as f64 * 24.0)).max(1.0);
    let mlp = (arch.rob as f64 / 96.0).clamp(1.0, 8.0);
    // Hardware prefetchers hide roughly half of the miss latency on the
    // semi-regular trilinear access streams.
    const PREFETCH_FACTOR: f64 = 0.5;
    let mem_stall_cycles = stall_raw / cores_in_outcome * scale / mlp * PREFETCH_FACTOR;
    // Real machines never reach zero DRAM traffic even when the LRU model
    // says the working set fits: TLB walks, conflict evictions and
    // coherence noise leak ~1 % of the demand volume (documented
    // calibration; keeps arithmetic intensity finite as in Table V).
    let demand_bytes = wl.accesses_per_pose() * wl.poses_per_ligand * 4.0;
    let dram_bytes_per_ligand =
        (cache.dram_bytes as f64 / cores_in_outcome * scale).max(0.01 * demand_bytes);

    // ---- latency exposure on small-ROB cores ----------------------------
    // Long FP chains (exp polynomials, Newton steps) stall when the OoO
    // window cannot cover them; coefficient calibrated to the paper's
    // Figure 4 (A64FX ≈ 70 % stalls, larger-ROB cores far less).
    let rob_deficit = ((256.0 - arch.rob as f64) / 256.0).max(0.0);
    let latency_stall_cycles = total_issue_instrs * rob_deficit * 2.0;

    // Frontend/branch overhead floor: even well-fed pipelines lose some
    // issue slots (paper Figure 4 shows nonzero stalls everywhere).
    let frontend_cycles = 0.15 * compute_cycles;
    let overlap = 0.2 * compute_cycles.min(mem_stall_cycles);
    let cycles =
        compute_cycles.max(mem_stall_cycles) + overlap + latency_stall_cycles + frontend_cycles;
    let seconds = cycles / (arch.sustained_ghz as f64 * 1e9) / cg.tuning as f64;

    RunEstimate {
        seconds_per_ligand: seconds,
        cycles_per_ligand: cycles,
        compute_cycles,
        mem_stall_cycles,
        latency_stall_cycles,
        stall_frac: ((cycles - compute_cycles) / cycles).clamp(0.0, 1.0),
        vec_ratio: vector_instrs / (vector_instrs + scalar_instrs).max(1.0),
        flops_per_ligand: flops,
        dram_bytes_per_ligand,
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::compiler::{self, CLANG, GCC, HWY};
    use crate::workload;

    fn wl() -> Workload {
        workload::reduced_workload()
    }

    fn single_core_cache(a: &ArchConfig, w: &Workload) -> CacheOutcome {
        workload::replay(a, w, 1)
    }

    #[test]
    fn wider_vectors_are_faster_on_spr() {
        let a = arch::spr();
        let w = wl();
        let cache = single_core_cache(&a, &w);
        let hwy = estimate(&a, &compiler::codegen(&HWY, &a).unwrap(), &w, &cache);
        let clang = estimate(&a, &compiler::codegen(&CLANG, &a).unwrap(), &w, &cache);
        // HWY emits 512-bit, Clang 256-bit: HWY must win on SPR (paper
        // Section VIII-a).
        assert!(
            hwy.seconds_per_ligand < clang.seconds_per_ligand,
            "hwy {} vs clang {}",
            hwy.seconds_per_ligand,
            clang.seconds_per_ligand
        );
    }

    #[test]
    fn missing_vector_math_is_catastrophic_on_arm() {
        let a = arch::grace();
        let w = wl();
        let cache = single_core_cache(&a, &w);
        let gcc = estimate(&a, &compiler::codegen(&GCC, &a).unwrap(), &w, &cache);
        let clang = estimate(&a, &compiler::codegen(&CLANG, &a).unwrap(), &w, &cache);
        assert!(
            gcc.seconds_per_ligand > 1.5 * clang.seconds_per_ligand,
            "gcc {} vs clang {}",
            gcc.seconds_per_ligand,
            clang.seconds_per_ligand
        );
        // And its vectorization ratio collapses (Figure 3).
        assert!(gcc.vec_ratio < 0.5);
        assert!(clang.vec_ratio > 0.8);
    }

    #[test]
    fn a64fx_stall_fraction_dominates() {
        let w = wl();
        let a64 = arch::a64fx();
        let cache_a = single_core_cache(&a64, &w);
        let est_a = estimate(
            &a64,
            &compiler::codegen(&CLANG, &a64).unwrap(),
            &w,
            &cache_a,
        );
        for other in [arch::spr(), arch::grace()] {
            let cache_o = single_core_cache(&other, &w);
            let est_o = estimate(
                &other,
                &compiler::codegen(&CLANG, &other).unwrap(),
                &w,
                &cache_o,
            );
            assert!(
                est_a.stall_frac > est_o.stall_frac,
                "A64FX {} vs {} {}",
                est_a.stall_frac,
                other.key,
                est_o.stall_frac
            );
        }
        // Paper Figure 4: ≈70 % of A64FX cycles are stalls.
        assert!(
            (0.5..0.9).contains(&est_a.stall_frac),
            "A64FX stall fraction {}",
            est_a.stall_frac
        );
    }

    #[test]
    fn speedup_against_novec_baseline() {
        // Vectorized code beats the no-vectorization baseline everywhere;
        // by more on 512-bit machines than on 128-bit ones (Figure 3).
        let w = wl();
        let spr = arch::spr();
        let grace = arch::grace();
        let cache_s = single_core_cache(&spr, &w);
        let cache_g = single_core_cache(&grace, &w);
        let s_cg = compiler::codegen(&HWY, &spr).unwrap();
        let s_vec = estimate(&spr, &s_cg, &w, &cache_s);
        let s_novec = estimate(&spr, &compiler::novec_baseline(&spr, &s_cg), &w, &cache_s);
        let g_cg = compiler::codegen(&CLANG, &grace).unwrap();
        let g_vec = estimate(&grace, &g_cg, &w, &cache_g);
        let g_novec = estimate(
            &grace,
            &compiler::novec_baseline(&grace, &g_cg),
            &w,
            &cache_g,
        );
        let s_speedup = s_novec.seconds_per_ligand / s_vec.seconds_per_ligand;
        let g_speedup = g_novec.seconds_per_ligand / g_vec.seconds_per_ligand;
        assert!(s_speedup > 1.5, "SPR speedup {s_speedup}");
        assert!(g_speedup > 1.2, "Grace speedup {g_speedup}");
    }

    #[test]
    fn flops_and_ai_are_positive() {
        let a = arch::spr();
        let w = wl();
        let cache = single_core_cache(&a, &w);
        let e = estimate(&a, &compiler::codegen(&CLANG, &a).unwrap(), &w, &cache);
        assert!(e.gflops() > 0.0);
        assert!(e.arithmetic_intensity() > 1.0, "docking is compute-dense");
        assert_eq!(e.kernels.len(), 5);
    }
}
