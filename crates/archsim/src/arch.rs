//! Architecture configurations — the five CPUs of the paper's Tables I
//! and II, plus the microarchitectural parameters (cache geometry, memory
//! latency/bandwidth) the analytical model needs, taken from the paper's
//! own references (chipsandcheese, vendor tuning guides, Fugaku docs).
//!
//! These stand in for the physical testbeds we cannot access; see
//! DESIGN.md §4 for the substitution argument.

/// Instruction-set family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    X86,
    Arm,
}

/// One cache level. Levels are ordered nearest-first in
/// [`ArchConfig::caches`]; the last entry is the LLC (on A64FX that is the
/// CMG-shared L2 — there is no L3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheLevel {
    pub name: &'static str,
    pub size_kib: usize,
    pub assoc: usize,
    pub line_bytes: usize,
    /// Cores sharing one instance of this level.
    pub shared_by: usize,
    /// Load-to-use latency in cycles.
    pub latency_cycles: f32,
}

/// Full description of one target CPU.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchConfig {
    /// Short key used on command lines and in tables ("spr", "genoa", …).
    pub key: &'static str,
    /// Display name.
    pub name: &'static str,
    pub vendor: &'static str,
    pub codename: &'static str,
    pub isa: Isa,
    pub vec_ext: &'static str,

    // ---- Table I ----
    pub max_clock_ghz: f32,
    /// Clock sustained during the paper's experiments (Section VII-a).
    pub sustained_ghz: f32,
    /// Cores per socket.
    pub cores_per_socket: usize,
    pub threads_per_core: usize,
    pub sockets: usize,
    /// Socket TDP in watts.
    pub tdp_w: f32,
    /// Cost per node-hour in USD.
    pub cost_per_node_hour: f32,
    pub year: u32,

    // ---- Table II + vector datapath ----
    /// Architectural vector register width (bits).
    pub vec_bits: usize,
    /// Execution datapath width (bits) — Zen 4 splits 512-bit ops into two
    /// 256-bit µops, so its datapath is 256.
    pub vec_exec_bits: usize,
    /// Vector pipelines.
    pub vec_pipes: usize,
    pub has_fma: bool,
    /// A64FX's approximate-exponential instruction.
    pub has_fexpa: bool,
    pub scalar_regs: usize,
    pub vector_regs: usize,
    pub rob: usize,

    // ---- memory system ----
    pub caches: Vec<CacheLevel>,
    /// DRAM load latency (ns).
    pub mem_lat_ns: f32,
    /// Per-socket memory bandwidth (GB/s).
    pub mem_bw_gbs: f32,

    pub reference: &'static str,
}

impl ArchConfig {
    /// Total usable cores on the node.
    pub fn cores(&self) -> usize {
        self.cores_per_socket * self.sockets
    }

    /// Total hardware threads on the node.
    pub fn threads(&self) -> usize {
        self.cores() * self.threads_per_core
    }

    /// Node TDP (all sockets).
    pub fn node_tdp_w(&self) -> f32 {
        self.tdp_w * self.sockets as f32
    }

    /// Node memory bandwidth (all sockets).
    pub fn node_bw_gbs(&self) -> f32 {
        self.mem_bw_gbs * self.sockets as f32
    }

    /// Last-level cache description.
    pub fn llc(&self) -> &CacheLevel {
        self.caches.last().expect("every arch has caches")
    }

    /// DRAM latency in core cycles.
    pub fn mem_lat_cycles(&self) -> f32 {
        self.mem_lat_ns * self.sustained_ghz
    }

    /// f32 lanes of the execution datapath.
    pub fn exec_lanes(&self) -> usize {
        self.vec_exec_bits / 32
    }

    /// Single-core peak GFLOP/s (vector FMA).
    pub fn core_peak_gflops(&self) -> f64 {
        let fma = if self.has_fma { 2.0 } else { 1.0 };
        self.sustained_ghz as f64 * self.vec_pipes as f64 * self.exec_lanes() as f64 * fma
    }

    /// Node peak GFLOP/s.
    pub fn node_peak_gflops(&self) -> f64 {
        self.core_peak_gflops() * self.cores() as f64
    }
}

/// Intel Sapphire Rapids (Xeon Platinum 8470, as measured in the paper).
pub fn spr() -> ArchConfig {
    ArchConfig {
        key: "spr",
        name: "SPR",
        vendor: "Intel",
        codename: "Golden Cove",
        isa: Isa::X86,
        vec_ext: "AVX512",
        max_clock_ghz: 4.8,
        sustained_ghz: 2.5,
        cores_per_socket: 52,
        threads_per_core: 2,
        sockets: 2,
        tdp_w: 350.0,
        cost_per_node_hour: 3.82,
        year: 2023,
        vec_bits: 512,
        vec_exec_bits: 512,
        vec_pipes: 2,
        has_fma: true,
        has_fexpa: false,
        scalar_regs: 288,
        vector_regs: 220,
        rob: 512,
        caches: vec![
            CacheLevel {
                name: "L1d",
                size_kib: 48,
                assoc: 12,
                line_bytes: 64,
                shared_by: 1,
                latency_cycles: 5.0,
            },
            CacheLevel {
                name: "L2",
                size_kib: 2048,
                assoc: 16,
                line_bytes: 64,
                shared_by: 1,
                latency_cycles: 16.0,
            },
            CacheLevel {
                name: "L3",
                size_kib: 105 * 1024,
                assoc: 15,
                line_bytes: 64,
                shared_by: 52,
                latency_cycles: 55.0,
            },
        ],
        mem_lat_ns: 110.0,
        mem_bw_gbs: 307.0,
        reference: "[55], [56], [63], [64]",
    }
}

/// AMD Genoa-X (EPYC 9684X, as measured in the paper).
pub fn genoa() -> ArchConfig {
    ArchConfig {
        key: "genoa",
        name: "Genoa",
        vendor: "AMD",
        codename: "Zen 4",
        isa: Isa::X86,
        vec_ext: "AVX512",
        max_clock_ghz: 3.7,
        sustained_ghz: 2.7,
        cores_per_socket: 96,
        threads_per_core: 2,
        sockets: 1,
        tdp_w: 400.0,
        cost_per_node_hour: 4.39,
        year: 2022,
        vec_bits: 512,
        vec_exec_bits: 256,
        vec_pipes: 2,
        has_fma: true,
        has_fexpa: false,
        scalar_regs: 224,
        vector_regs: 192,
        rob: 320,
        caches: vec![
            CacheLevel {
                name: "L1d",
                size_kib: 32,
                assoc: 8,
                line_bytes: 64,
                shared_by: 1,
                latency_cycles: 5.0,
            },
            CacheLevel {
                name: "L2",
                size_kib: 1024,
                assoc: 8,
                line_bytes: 64,
                shared_by: 1,
                latency_cycles: 14.0,
            },
            // 9684X: 3D V-Cache, 96 MiB per 8-core CCD; LLC is per-CCD, so
            // cross-CCD sharing of the grid maps is impossible (the paper's
            // Section VIII-b mechanism for the multi-core miss spike).
            CacheLevel {
                name: "L3",
                size_kib: 96 * 1024,
                assoc: 16,
                line_bytes: 64,
                shared_by: 8,
                latency_cycles: 50.0,
            },
        ],
        mem_lat_ns: 105.0,
        mem_bw_gbs: 460.0,
        reference: "[55], [57], [65]",
    }
}

/// NVIDIA Grace (Neoverse V2, 72 cores, as in GH200).
pub fn grace() -> ArchConfig {
    ArchConfig {
        key: "grace",
        name: "Grace",
        vendor: "NVIDIA",
        codename: "Neoverse V2",
        isa: Isa::Arm,
        vec_ext: "SVE2",
        max_clock_ghz: 3.4,
        sustained_ghz: 2.5,
        cores_per_socket: 72,
        threads_per_core: 1,
        sockets: 1,
        tdp_w: 250.0,
        cost_per_node_hour: 11.17,
        year: 2022,
        vec_bits: 128,
        vec_exec_bits: 128,
        vec_pipes: 4,
        has_fma: true,
        has_fexpa: false,
        scalar_regs: 213,
        vector_regs: 188,
        rob: 320,
        caches: vec![
            CacheLevel {
                name: "L1d",
                size_kib: 64,
                assoc: 4,
                line_bytes: 64,
                shared_by: 1,
                latency_cycles: 4.0,
            },
            CacheLevel {
                name: "L2",
                size_kib: 1024,
                assoc: 8,
                line_bytes: 64,
                shared_by: 1,
                latency_cycles: 13.0,
            },
            CacheLevel {
                name: "L3",
                size_kib: 114 * 1024,
                assoc: 12,
                line_bytes: 64,
                shared_by: 72,
                latency_cycles: 60.0,
            },
        ],
        mem_lat_ns: 130.0,
        mem_bw_gbs: 500.0,
        reference: "[30], [58], [61], [62]",
    }
}

/// Fujitsu A64FX (FX700, 48 cores at 2.0 GHz as measured).
pub fn a64fx() -> ArchConfig {
    ArchConfig {
        key: "a64fx",
        name: "A64FX",
        vendor: "Fujitsu",
        codename: "ARM Custom",
        isa: Isa::Arm,
        vec_ext: "SVE2",
        max_clock_ghz: 2.2,
        sustained_ghz: 2.0,
        cores_per_socket: 48,
        threads_per_core: 1,
        sockets: 1,
        tdp_w: 150.0,
        cost_per_node_hour: 0.64,
        year: 2019,
        vec_bits: 512,
        vec_exec_bits: 512,
        vec_pipes: 2,
        has_fma: true,
        has_fexpa: true,
        scalar_regs: 96,
        vector_regs: 128,
        rob: 128,
        caches: vec![
            CacheLevel {
                name: "L1d",
                size_kib: 64,
                assoc: 4,
                line_bytes: 256,
                shared_by: 1,
                latency_cycles: 5.0,
            },
            // No private L2 and no L3: the 8 MiB CMG L2 is the LLC,
            // shared by the 12 cores of a core-memory-group.
            CacheLevel {
                name: "L2(CMG)",
                size_kib: 8 * 1024,
                assoc: 16,
                line_bytes: 256,
                shared_by: 12,
                latency_cycles: 47.0,
            },
        ],
        mem_lat_ns: 130.0,
        mem_bw_gbs: 1024.0,
        reference: "[59], [60], [73]",
    }
}

/// AWS Graviton 4 (Neoverse V2, dual socket, 192 cores).
pub fn graviton4() -> ArchConfig {
    ArchConfig {
        key: "graviton",
        name: "Graviton",
        vendor: "AWS",
        codename: "Neoverse V2",
        isa: Isa::Arm,
        vec_ext: "SVE2",
        max_clock_ghz: 2.8,
        sustained_ghz: 2.0,
        cores_per_socket: 96,
        threads_per_core: 1,
        sockets: 2,
        tdp_w: 130.0,
        cost_per_node_hour: 3.40,
        year: 2023,
        vec_bits: 128,
        vec_exec_bits: 128,
        vec_pipes: 4,
        has_fma: true,
        has_fexpa: false,
        scalar_regs: 213,
        vector_regs: 188,
        rob: 320,
        caches: vec![
            CacheLevel {
                name: "L1d",
                size_kib: 64,
                assoc: 4,
                line_bytes: 64,
                shared_by: 1,
                latency_cycles: 4.0,
            },
            CacheLevel {
                name: "L2",
                size_kib: 2048,
                assoc: 8,
                line_bytes: 64,
                shared_by: 1,
                latency_cycles: 13.0,
            },
            CacheLevel {
                name: "L3",
                size_kib: 36 * 1024,
                assoc: 12,
                line_bytes: 64,
                shared_by: 96,
                latency_cycles: 60.0,
            },
        ],
        mem_lat_ns: 120.0,
        mem_bw_gbs: 537.0,
        reference: "[55], [58]",
    }
}

/// The five architectures in the paper's presentation order
/// (Grace, Genoa, SPR, A64FX, Graviton).
pub fn all_archs() -> Vec<ArchConfig> {
    vec![grace(), genoa(), spr(), a64fx(), graviton4()]
}

/// Look up an architecture by key.
pub fn arch_by_key(key: &str) -> Option<ArchConfig> {
    all_archs().into_iter().find(|a| a.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_architectures() {
        let archs = all_archs();
        assert_eq!(archs.len(), 5);
        let keys: Vec<&str> = archs.iter().map(|a| a.key).collect();
        assert_eq!(keys, vec!["grace", "genoa", "spr", "a64fx", "graviton"]);
    }

    #[test]
    fn lookup_by_key() {
        assert_eq!(arch_by_key("spr").unwrap().vendor, "Intel");
        assert!(arch_by_key("m1").is_none());
    }

    #[test]
    fn table_one_invariants() {
        // Spot-check against the paper's Table I.
        let spr = spr();
        assert_eq!(spr.max_clock_ghz, 4.8);
        assert_eq!(spr.cost_per_node_hour, 3.82);
        let a = a64fx();
        assert_eq!(a.cost_per_node_hour, 0.64);
        assert_eq!(a.year, 2019);
        assert!(a.has_fexpa);
        let g = graviton4();
        assert_eq!(g.cores(), 192);
        assert_eq!(g.threads(), 192);
    }

    #[test]
    fn table_two_invariants() {
        // Table II: ROB sizes and vector resources.
        assert_eq!(spr().rob, 512);
        assert_eq!(genoa().rob, 320);
        assert_eq!(a64fx().rob, 128);
        assert_eq!(grace().rob, 320);
        // Zen 4 decomposes 512-bit ops: datapath < register width.
        let g = genoa();
        assert!(g.vec_exec_bits < g.vec_bits);
        // Neoverse V2 compensates narrow vectors with more pipes.
        assert_eq!(grace().vec_pipes, 4);
    }

    #[test]
    fn a64fx_l2_is_llc() {
        let a = a64fx();
        assert_eq!(a.caches.len(), 2);
        assert_eq!(a.llc().name, "L2(CMG)");
        assert_eq!(a.llc().shared_by, 12);
        assert_eq!(a.llc().line_bytes, 256);
    }

    #[test]
    fn peak_flops_ordering() {
        // x86 nodes out-muscle ARM nodes on per-core vector peak except
        // A64FX, whose 2×512-bit pipes match SPR width at lower clock.
        let spr = spr().core_peak_gflops();
        let grace = grace().core_peak_gflops();
        assert!(spr > grace);
        // Per-core: 4×128 at Grace == 512-bit × 1 — SPR has 2 such pipes.
        assert!((spr / grace - 2.0 * 2.5 / 2.5).abs() < 0.01);
    }

    #[test]
    fn memory_latency_in_cycles() {
        let a = a64fx();
        assert!((a.mem_lat_cycles() - 260.0).abs() < 1.0);
    }
}
