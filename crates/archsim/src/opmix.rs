//! Operation mixes of the docking kernels.
//!
//! Per-element operation counts, transcribed from the kernel sources in
//! `mudock-core` (each constant's comment names the function it was
//! counted from). The pipeline model multiplies these by the workload's
//! element counts and divides by the effective vector width.

/// Operation counts, in *elements* (one element = one lane of work).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpMix {
    /// Fused multiply-adds (2 FLOPs each where FMA exists).
    pub fma: f64,
    /// Additions/subtractions.
    pub add: f64,
    /// Multiplications.
    pub mul: f64,
    /// Compares, selects, min/max.
    pub cmp_sel: f64,
    /// Square roots.
    pub sqrt: f64,
    /// Hardware reciprocal / rsqrt estimates (Newton steps are counted in
    /// `fma`/`mul`).
    pub recip: f64,
    /// Exponential evaluations (expanded by the pipeline model according
    /// to the codegen: polynomial, FEXPA, or scalar libm).
    pub exp: f64,
    /// Gathered element loads (indexed).
    pub gather: f64,
    /// Contiguous element loads.
    pub load: f64,
    /// Contiguous element stores.
    pub store: f64,
    /// Integer ALU ops (index arithmetic).
    pub int_ops: f64,
}

impl OpMix {
    /// Scale every count by `k`.
    pub fn scaled(&self, k: f64) -> OpMix {
        OpMix {
            fma: self.fma * k,
            add: self.add * k,
            mul: self.mul * k,
            cmp_sel: self.cmp_sel * k,
            sqrt: self.sqrt * k,
            recip: self.recip * k,
            exp: self.exp * k,
            gather: self.gather * k,
            load: self.load * k,
            store: self.store * k,
            int_ops: self.int_ops * k,
        }
    }

    /// Element-wise sum.
    pub fn plus(&self, o: &OpMix) -> OpMix {
        OpMix {
            fma: self.fma + o.fma,
            add: self.add + o.add,
            mul: self.mul + o.mul,
            cmp_sel: self.cmp_sel + o.cmp_sel,
            sqrt: self.sqrt + o.sqrt,
            recip: self.recip + o.recip,
            exp: self.exp + o.exp,
            gather: self.gather + o.gather,
            load: self.load + o.load,
            store: self.store + o.store,
            int_ops: self.int_ops + o.int_ops,
        }
    }

    /// FLOPs represented by this mix, with `flops_per_exp` accounting for
    /// the exponential's implementation (polynomial ≈ 13, FEXPA ≈ 2,
    /// scalar libm ≈ 25).
    pub fn flops(&self, flops_per_exp: f64) -> f64 {
        2.0 * self.fma + self.add + self.mul + self.sqrt + self.recip + self.exp * flops_per_exp
    }

    /// "Simple-op equivalents" for throughput estimation: FMA = 1 issue
    /// slot (2 without FMA hardware), sqrt = 4 slots, everything else 1.
    pub fn issue_slots(&self, has_fma: bool) -> f64 {
        let fma_cost = if has_fma { 1.0 } else { 2.0 };
        self.fma * fma_cost + self.add + self.mul + self.cmp_sel + 4.0 * self.sqrt + self.recip
    }
}

/// One docking kernel, with the properties the codegen model needs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelMix {
    pub name: &'static str,
    /// Per-element mix (element = pair for intra, atom for inter, …).
    pub per_element: OpMix,
    /// Contains math-library calls in the loop body: without a vector
    /// math library, this kernel does not vectorize (the GLIBC issue).
    pub contains_exp: bool,
}

/// Intra-energy, per pair. Counted from
/// `mudock_core::scoring::intra::intra_energy_kernel` +
/// `mudock_ff::vterms::{vdw_hbond, electrostatic, desolvation}`.
pub const INTRA_PER_PAIR: KernelMix = KernelMix {
    name: "intra",
    per_element: OpMix {
        fma: 10.0,
        add: 10.0,
        mul: 14.0,
        cmp_sel: 9.0,
        sqrt: 1.0,
        recip: 3.0,
        exp: 2.0, // dielectric + desolvation Gaussian
        gather: 6.0,
        load: 6.0,
        store: 0.0,
        int_ops: 2.0,
    },
    contains_exp: true,
};

/// Inter-energy, per atom. Counted from
/// `mudock_core::scoring::inter::{inter_energy_kernel, trilerp}`: 24
/// corner gathers (3 maps × 8), trilinear FMA chains, clamp/penalty math,
/// integer index arithmetic.
pub const INTER_PER_ATOM: KernelMix = KernelMix {
    name: "inter",
    per_element: OpMix {
        fma: 25.0,
        add: 14.0,
        mul: 8.0,
        cmp_sel: 10.0,
        sqrt: 1.0,
        recip: 0.0,
        exp: 0.0,
        gather: 24.0,
        load: 6.0,
        store: 0.0,
        int_ops: 24.0,
    },
    contains_exp: false,
};

/// Rigid-body transform, per atom. Counted from
/// `mudock_core::transform::apply_pose_kernel` (rigid part).
pub const TRANSFORM_RIGID_PER_ATOM: KernelMix = KernelMix {
    name: "transform-rigid",
    per_element: OpMix {
        fma: 9.0,
        add: 0.0,
        mul: 0.0,
        cmp_sel: 0.0,
        sqrt: 0.0,
        recip: 0.0,
        exp: 0.0,
        gather: 0.0,
        load: 3.0,
        store: 3.0,
        int_ops: 0.0,
    },
    contains_exp: false,
};

/// Torsion blend, per atom *per torsion* (branchless kernel rotates all
/// atoms and blends by mask). Counted from the torsion loop of
/// `apply_pose_kernel`.
pub const TRANSFORM_TORSION_PER_ATOM: KernelMix = KernelMix {
    name: "transform-torsion",
    per_element: OpMix {
        fma: 12.0,
        add: 3.0,
        mul: 0.0,
        cmp_sel: 0.0,
        sqrt: 0.0,
        recip: 0.0,
        exp: 0.0,
        gather: 0.0,
        load: 4.0,
        store: 3.0,
        int_ops: 0.0,
    },
    contains_exp: false,
};

/// GA bookkeeping per gene per generation (selection, crossover,
/// mutation). Inherently scalar control flow; never vectorized.
pub const GA_PER_GENE: KernelMix = KernelMix {
    name: "ga",
    per_element: OpMix {
        fma: 0.0,
        add: 6.0,
        mul: 6.0,
        cmp_sel: 4.0,
        sqrt: 0.0,
        recip: 0.0,
        exp: 0.0,
        gather: 0.0,
        load: 4.0,
        store: 2.0,
        int_ops: 20.0,
    },
    contains_exp: false,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_and_sum() {
        let m = INTRA_PER_PAIR.per_element.scaled(2.0);
        assert_eq!(m.fma, 20.0);
        assert_eq!(m.exp, 4.0);
        let s = m.plus(&INTER_PER_ATOM.per_element);
        assert_eq!(s.gather, 12.0 + 24.0);
    }

    #[test]
    fn flops_accounting() {
        let m = OpMix {
            fma: 10.0,
            add: 5.0,
            mul: 5.0,
            exp: 1.0,
            ..Default::default()
        };
        assert_eq!(m.flops(13.0), 20.0 + 10.0 + 13.0);
    }

    #[test]
    fn issue_slots_respect_fma() {
        let m = OpMix {
            fma: 10.0,
            add: 2.0,
            sqrt: 1.0,
            ..Default::default()
        };
        assert_eq!(m.issue_slots(true), 10.0 + 2.0 + 4.0);
        assert_eq!(m.issue_slots(false), 20.0 + 2.0 + 4.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the static op-mix tables
    fn kernels_flag_math_correctly() {
        assert!(
            INTRA_PER_PAIR.contains_exp,
            "intra calls exp (dielectric/desolv)"
        );
        assert!(!INTER_PER_ATOM.contains_exp, "inter is pure lookups + FMA");
        assert!(!TRANSFORM_RIGID_PER_ATOM.contains_exp);
    }

    #[test]
    fn intra_is_compute_heavy_inter_is_gather_heavy() {
        // The paper's characterization (Section V): intra = compute-bound,
        // inter = memory lookups.
        let intra = INTRA_PER_PAIR.per_element;
        let inter = INTER_PER_ATOM.per_element;
        let intra_ratio = intra.issue_slots(true) / (intra.gather + intra.load);
        let inter_ratio = inter.issue_slots(true) / (inter.gather + inter.load);
        assert!(intra_ratio > inter_ratio);
    }
}
