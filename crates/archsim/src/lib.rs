//! # mudock-archsim — the cross-architecture model
//!
//! The paper evaluates five CPUs (SPR, Genoa, Grace, A64FX, Graviton 4)
//! and seven compilers. This reproduction has one x86-64 host, so every
//! cross-architecture figure is regenerated through a **calibrated
//! analytical machine model** driven by *real* kernel traces (DESIGN.md
//! §3.2, §4):
//!
//! * [`arch`] — the five CPUs (Tables I & II + cache/memory parameters);
//! * [`compiler`] — the seven toolchains reduced to their decisive
//!   codegen properties (emitted width, vector-math availability, FEXPA);
//! * [`workload`] — short *real* docking runs on the host produce atom/
//!   pair counts and grid-access traces with realistic GA locality;
//! * [`cache`] — trace-driven set-associative LRU hierarchy simulator
//!   (private levels, CCD/CMG-scoped or fully-shared LLCs);
//! * [`pipeline`] — throughput/latency/stall estimation per
//!   (architecture, compiler);
//! * [`portability`] — the Pennycook harmonic-mean metric of Figure 6;
//! * [`scenario::Study`] — computes every table and figure series.
//!
//! The model's purpose is the paper's *shape* — who wins, by what factor,
//! and through which mechanism — not absolute seconds; EXPERIMENTS.md
//! records modeled-vs-paper values for every experiment.

pub mod arch;
pub mod cache;
pub mod compiler;
pub mod opmix;
pub mod pipeline;
pub mod portability;
pub mod scenario;
pub mod workload;

pub use arch::{all_archs, arch_by_key, ArchConfig, CacheLevel, Isa};
pub use cache::{Cache, CacheOutcome, Hierarchy};
pub use compiler::{all_compilers, codegen, compiler_by_key, Codegen, CompilerProfile};
pub use opmix::OpMix;
pub use pipeline::{estimate, RunEstimate};
pub use portability::PortabilityMatrix;
pub use scenario::Study;
pub use workload::{mediate_workload, reduced_workload, Workload};
