//! The full cross-architecture study: computes every series of every
//! table and figure in the paper's evaluation from the workload traces,
//! cache simulations and the pipeline model. Benchmark binaries in
//! `mudock-bench` only format what this module returns.

use std::collections::HashMap;

use mudock_perf::Roofline;

use crate::arch::{all_archs, ArchConfig};
use crate::cache::CacheOutcome;
use crate::compiler::{self, all_compilers, CompilerProfile};
use crate::pipeline::{estimate, RunEstimate};
use crate::portability::PortabilityMatrix;
use crate::workload::{self, Workload};

/// SMT throughput bonus for the embarrassingly-parallel ligand workload
/// (2-way SMT keeps vector pipes busier; ARM parts here have no SMT).
fn smt_boost(arch: &ArchConfig) -> f64 {
    if arch.threads_per_core > 1 {
        1.15
    } else {
        1.0
    }
}

/// Fraction of node TDP drawn during an all-core run (sockets run close
/// to, but not at, TDP on this workload).
const POWER_UTILIZATION: f64 = 0.8;

/// Multi-core memory-system degradation, adopted from the paper's
/// measured Table IV/V: Genoa's CCD-private LLC cannot share the grid
/// maps across CCDs and its miss rate explodes 200× at full node (the
/// first-order cache model reproduces the direction but not the
/// magnitude — see EXPERIMENTS.md); A64FX's CMG L2 thrashes but HBM2
/// absorbs much of it.
fn mc_memory_penalty(arch: &ArchConfig) -> f64 {
    match arch.key {
        // Genoa: per-CCD LLC cannot share grid maps, measured miss rate
        // explodes 200× at full node (Table IV).
        "genoa" => 1.8,
        // Graviton 4: only 36 MiB of LLC behind 96 cores per socket.
        "graviton" => 1.3,
        _ => 1.0,
    }
}

/// One (architecture, compiler) data point.
#[derive(Clone, Debug)]
pub struct Point {
    pub arch: String,
    pub compiler: String,
    pub value: f64,
}

/// Figure 3 needs two values per point.
#[derive(Clone, Debug)]
pub struct VecPoint {
    pub arch: String,
    pub compiler: String,
    pub vec_ratio: f64,
    pub speedup: f64,
}

/// Figure 7 rows.
#[derive(Clone, Debug)]
pub struct CostPoint {
    pub arch: String,
    pub compiler: String,
    /// USD per ligand evaluated.
    pub cost_per_ligand: f64,
    /// Joules per ligand evaluated.
    pub energy_per_ligand: f64,
}

/// Figure 5: one roofline plot per architecture with kernel points.
#[derive(Clone, Debug)]
pub struct RooflinePlot {
    pub arch: String,
    pub roofline: Roofline,
    /// (compiler, AI, attained GFLOP/s) for the docking kernels.
    pub points: Vec<(String, f64, f64)>,
}

/// Tables IV & V rows.
#[derive(Clone, Debug)]
pub struct MemoryRow {
    pub arch: String,
    pub llc_miss_single: f64,
    pub llc_miss_multi: f64,
    pub ai_single: f64,
    pub ai_multi: f64,
}

/// Everything computed once and shared by the figure generators.
pub struct Study {
    pub archs: Vec<ArchConfig>,
    pub compilers: Vec<CompilerProfile>,
    pub reduced: Workload,
    pub mediate: Workload,
    cache_single: HashMap<&'static str, CacheOutcome>,
    cache_multi: HashMap<&'static str, CacheOutcome>,
    /// Cores used in the multi-core cache replays (capped per LLC-domain
    /// independence — see [`Study::sim_cores`]).
    sim_cores: HashMap<&'static str, usize>,
}

impl Study {
    /// Build the workloads (runs short real docking on the host) and all
    /// cache simulations. Takes a few seconds in release mode.
    pub fn new() -> Study {
        let archs = all_archs();
        let reduced = workload::reduced_workload();
        let mediate = workload::mediate_workload();
        let mut cache_single = HashMap::new();
        let mut cache_multi = HashMap::new();
        let mut sim_cores = HashMap::new();
        for a in &archs {
            cache_single.insert(a.key, workload::replay(a, &reduced, 1));
            let cores = Self::cores_to_simulate(a);
            sim_cores.insert(a.key, cores);
            cache_multi.insert(a.key, workload::replay(a, &mediate, cores));
        }
        Study {
            archs,
            compilers: all_compilers(),
            reduced,
            mediate,
            cache_single,
            cache_multi,
            sim_cores,
        }
    }

    /// LLC domains are independent (per-CCD on Genoa, per-CMG on A64FX):
    /// simulating one fully-populated domain reproduces the full node's
    /// per-domain behaviour; fully-shared LLCs are capped at 24 streams to
    /// bound simulation cost (large shared caches are past their capacity
    /// knee well before that).
    fn cores_to_simulate(arch: &ArchConfig) -> usize {
        arch.llc().shared_by.min(24).min(arch.cores())
    }

    /// Single-core run estimate on the reduced dataset; `None` when the
    /// paper does not evaluate the combination.
    pub fn single_core(&self, arch: &ArchConfig, comp: &CompilerProfile) -> Option<RunEstimate> {
        let cg = compiler::codegen(comp, arch)?;
        Some(estimate(
            arch,
            &cg,
            &self.reduced,
            &self.cache_single[arch.key],
        ))
    }

    /// Per-core estimate under multi-core cache behaviour (MEDIATE set).
    pub fn multi_core_per_ligand(
        &self,
        arch: &ArchConfig,
        comp: &CompilerProfile,
    ) -> Option<RunEstimate> {
        let cg = compiler::codegen(comp, arch)?;
        Some(estimate(
            arch,
            &cg,
            &self.mediate,
            &self.cache_multi[arch.key],
        ))
    }

    /// Node wall-clock seconds to screen the whole MEDIATE-like set.
    pub fn node_seconds(&self, arch: &ArchConfig, comp: &CompilerProfile) -> Option<f64> {
        let est = self.multi_core_per_ligand(arch, comp)?;
        let cores = arch.cores() as f64;
        let raw = self.mediate.ligands as f64 * est.seconds_per_ligand / (cores * smt_boost(arch));
        // Bandwidth contention: aggregate DRAM demand vs the node's peak.
        let demand_gbs = cores * est.dram_bytes_per_ligand / est.seconds_per_ligand / 1e9;
        let contention = (demand_gbs / arch.node_bw_gbs() as f64).max(1.0);
        Some(raw * contention * mc_memory_penalty(arch))
    }

    /// Figure 2a: single-core execution time (s) of the reduced dataset.
    pub fn fig2a(&self) -> Vec<Point> {
        let mut rows = Vec::new();
        for a in &self.archs {
            for c in &self.compilers {
                if let Some(est) = self.single_core(a, c) {
                    rows.push(Point {
                        arch: a.key.into(),
                        compiler: c.key.into(),
                        value: est.seconds_per_ligand * self.reduced.ligands as f64,
                    });
                }
            }
        }
        rows
    }

    /// Figure 2b: full-node execution time (s) of the MEDIATE-like set.
    pub fn fig2b(&self) -> Vec<Point> {
        let mut rows = Vec::new();
        for a in &self.archs {
            for c in &self.compilers {
                if let Some(secs) = self.node_seconds(a, c) {
                    rows.push(Point {
                        arch: a.key.into(),
                        compiler: c.key.into(),
                        value: secs,
                    });
                }
            }
        }
        rows
    }

    /// Figure 3: vectorization ratio and speedup over the no-vec baseline.
    pub fn fig3(&self) -> Vec<VecPoint> {
        let mut rows = Vec::new();
        for a in &self.archs {
            for c in &self.compilers {
                let Some(cg) = compiler::codegen(c, a) else {
                    continue;
                };
                let novec = estimate(
                    a,
                    &compiler::novec_baseline(a, &cg),
                    &self.reduced,
                    &self.cache_single[a.key],
                );
                let est = estimate(a, &cg, &self.reduced, &self.cache_single[a.key]);
                rows.push(VecPoint {
                    arch: a.key.into(),
                    compiler: c.key.into(),
                    vec_ratio: est.vec_ratio,
                    speedup: novec.seconds_per_ligand / est.seconds_per_ligand,
                });
            }
        }
        rows
    }

    /// Figure 4: pipeline stall fraction (vs useful work).
    pub fn fig4(&self) -> Vec<Point> {
        let mut rows = Vec::new();
        for a in &self.archs {
            for c in &self.compilers {
                if let Some(est) = self.single_core(a, c) {
                    rows.push(Point {
                        arch: a.key.into(),
                        compiler: c.key.into(),
                        value: est.stall_frac,
                    });
                }
            }
        }
        rows
    }

    /// Figure 5: rooflines for the four instrumented architectures
    /// (Graviton lacks the counters in the paper too).
    pub fn fig5(&self) -> Vec<RooflinePlot> {
        let mut plots = Vec::new();
        for a in &self.archs {
            if a.key == "graviton" {
                continue; // the paper cannot measure bandwidth/energy there
            }
            let lanes = a.vec_exec_bits / 32;
            let ghz = a.sustained_ghz as f64;
            let pipes = a.vec_pipes as f64;
            let vec_name = format!(
                "sp_{}{}",
                if a.isa == crate::arch::Isa::X86 {
                    "avx"
                } else {
                    "sve"
                },
                a.vec_bits
            );
            let roofline = Roofline::new(a.name, a.mem_bw_gbs as f64)
                .with_ceiling("sp_scalar", ghz * 2.0 * 2.0)
                .with_ceiling(&vec_name, ghz * pipes * lanes as f64)
                .with_ceiling(format!("{vec_name}+fma"), ghz * pipes * lanes as f64 * 2.0);
            let mut points = Vec::new();
            for c in &self.compilers {
                if let Some(est) = self.single_core(a, c) {
                    points.push((c.key.to_string(), est.arithmetic_intensity(), est.gflops()));
                }
            }
            plots.push(RooflinePlot {
                arch: a.key.into(),
                roofline,
                points,
            });
        }
        plots
    }

    /// Figure 6: application-efficiency matrix + harmonic means.
    pub fn fig6(&self) -> PortabilityMatrix {
        let times: Vec<Vec<Option<f64>>> = self
            .archs
            .iter()
            .map(|a| {
                self.compilers
                    .iter()
                    .map(|c| self.single_core(a, c).map(|e| e.seconds_per_ligand))
                    .collect()
            })
            .collect();
        PortabilityMatrix::from_times(
            self.archs.iter().map(|a| a.key.to_string()).collect(),
            self.compilers.iter().map(|c| c.key.to_string()).collect(),
            &times,
        )
    }

    /// Figure 7: cost (USD) and energy (J) per ligand on full-node runs.
    pub fn fig7(&self) -> Vec<CostPoint> {
        let mut rows = Vec::new();
        for a in &self.archs {
            for c in &self.compilers {
                if let Some(secs) = self.node_seconds(a, c) {
                    let ligands = self.mediate.ligands as f64;
                    let cost = a.cost_per_node_hour as f64 * (secs / 3600.0) / ligands;
                    let energy = a.node_tdp_w() as f64 * POWER_UTILIZATION * secs / ligands;
                    rows.push(CostPoint {
                        arch: a.key.into(),
                        compiler: c.key.into(),
                        cost_per_ligand: cost,
                        energy_per_ligand: energy,
                    });
                }
            }
        }
        rows
    }

    /// Tables IV & V: LLC miss rates and arithmetic intensity, single- vs
    /// multi-core, for the Clang toolchain (as the paper reports).
    pub fn tables45(&self) -> Vec<MemoryRow> {
        let clang = compiler::CLANG;
        let mut rows = Vec::new();
        for a in &self.archs {
            if a.key == "graviton" {
                continue; // no memory counters in the paper either
            }
            let single = &self.cache_single[a.key];
            let multi = &self.cache_multi[a.key];
            let cg = compiler::codegen(&clang, a).expect("clang targets everything");
            let est_s = estimate(a, &cg, &self.reduced, single);
            let est_m = estimate(a, &cg, &self.mediate, multi);
            rows.push(MemoryRow {
                arch: a.key.into(),
                llc_miss_single: single.llc_miss_rate(),
                llc_miss_multi: multi.llc_miss_rate(),
                ai_single: est_s.arithmetic_intensity(),
                ai_multi: est_m.arithmetic_intensity(),
            });
        }
        rows
    }

    /// Cores used in the multi-core cache replay for an architecture.
    pub fn simulated_cores(&self, arch_key: &str) -> usize {
        self.sim_cores.get(arch_key).copied().unwrap_or(1)
    }
}

impl Default for Study {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The study takes seconds to build; share one across tests.
    fn study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(Study::new)
    }

    fn get(rows: &[Point], arch: &str, comp: &str) -> f64 {
        rows.iter()
            .find(|p| p.arch == arch && p.compiler == comp)
            .unwrap_or_else(|| panic!("missing {arch}/{comp}"))
            .value
    }

    #[test]
    fn fig2a_has_paper_combination_count() {
        // 4+4+4+4+3 = 19 bars in Figure 2a.
        assert_eq!(study().fig2a().len(), 19);
    }

    #[test]
    fn fig2a_headline_orderings() {
        let rows = study().fig2a();
        // HWY fastest on SPR (512-bit vs the compilers' 256-bit cap).
        assert!(get(&rows, "spr", "hwy") < get(&rows, "spr", "clang"));
        assert!(get(&rows, "spr", "hwy") < get(&rows, "spr", "gcc"));
        // FCC fastest on A64FX (FEXPA + tuning).
        assert!(get(&rows, "a64fx", "fcc") < get(&rows, "a64fx", "clang"));
        assert!(get(&rows, "a64fx", "fcc") < get(&rows, "a64fx", "hwy"));
        // GCC catastrophic on A64FX (scalar math on a 512-bit machine).
        assert!(get(&rows, "a64fx", "gcc") > 4.0 * get(&rows, "a64fx", "fcc"));
        // Clang beats HWY on the 128-bit ARM parts (ArmPL math).
        assert!(get(&rows, "grace", "clang") < get(&rows, "grace", "hwy"));
        assert!(get(&rows, "graviton", "clang") < get(&rows, "graviton", "hwy"));
        // GCC wins Genoa (the paper's cost-model/LLC observation).
        assert!(get(&rows, "genoa", "gcc") < get(&rows, "genoa", "clang"));
    }

    #[test]
    fn fig2b_x86_nodes_finish_first() {
        let rows = study().fig2b();
        // Best-per-arch node times: x86 (high core count × wide vectors)
        // beat A64FX and Grace; Graviton is competitive with Genoa.
        let best = |arch: &str| {
            rows.iter()
                .filter(|p| p.arch == arch)
                .map(|p| p.value)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(best("spr") < best("a64fx"));
        assert!(best("genoa") < best("grace"));
        let ratio = best("graviton") / best("genoa");
        assert!(
            (0.3..3.0).contains(&ratio),
            "Graviton comparable to Genoa, got ratio {ratio}"
        );
    }

    #[test]
    fn fig3_vectorization_story() {
        let rows = study().fig3();
        let find = |a: &str, c: &str| {
            rows.iter()
                .find(|p| p.arch == a && p.compiler == c)
                .unwrap()
        };
        // Vectorizing compilers reach a ratio comparable to HWY's.
        assert!(find("spr", "clang").vec_ratio > 0.85);
        assert!(find("spr", "hwy").vec_ratio > 0.85);
        // GCC on ARM and NVCC on Grace collapse (no vectorized GLIBC).
        assert!(find("grace", "gcc").vec_ratio < 0.5);
        assert!(find("grace", "nvcc").vec_ratio < 0.5);
        assert!(find("a64fx", "gcc").speedup < 1.5);
        // 512-bit machines see the biggest speedups.
        assert!(find("a64fx", "fcc").speedup > find("genoa", "clang").speedup);
        assert!(find("spr", "hwy").speedup > find("genoa", "hwy").speedup);
    }

    #[test]
    fn fig4_a64fx_stalls_highest() {
        let rows = study().fig4();
        let a64_clang = get(&rows, "a64fx", "clang");
        assert!(
            (0.5..0.9).contains(&a64_clang),
            "A64FX ≈70 % stalls, got {a64_clang}"
        );
        for arch in ["spr", "genoa", "grace", "graviton"] {
            assert!(
                get(&rows, arch, "clang") < a64_clang,
                "{arch} should stall less than A64FX"
            );
        }
    }

    #[test]
    fn fig5_kernels_are_compute_bound() {
        for plot in study().fig5() {
            for (comp, ai, gflops) in &plot.points {
                assert!(
                    *ai > plot.roofline.ridge_ai(),
                    "{}/{comp}: AI {ai} should be right of the ridge",
                    plot.arch
                );
                // No point exceeds its roof.
                assert!(
                    *gflops <= plot.roofline.attainable(*ai) * 1.001,
                    "{}/{comp}: {gflops} above roof",
                    plot.arch
                );
            }
        }
    }

    #[test]
    fn fig6_matches_paper_shape() {
        let m = study().fig6();
        // Per-row winners as in the paper's Figure 6.
        assert_eq!(m.get("grace", "clang"), Some(1.0));
        assert_eq!(m.get("genoa", "gcc"), Some(1.0));
        assert_eq!(m.get("spr", "hwy"), Some(1.0));
        assert_eq!(m.get("a64fx", "fcc"), Some(1.0));
        assert_eq!(m.get("graviton", "clang"), Some(1.0));
        // GCC's A64FX efficiency collapses (paper: 0.12).
        assert!(m.get("a64fx", "gcc").unwrap() < 0.35);
        // Harmonic means: clang and hwy are portable; vendor compilers 0.
        let h = m.harmonic_means();
        let idx = |k: &str| m.compilers.iter().position(|c| c == k).unwrap();
        assert!(h[idx("clang")] > 0.6);
        assert!(h[idx("hwy")] > 0.6);
        assert!(h[idx("gcc")] < h[idx("clang")]);
        assert_eq!(h[idx("fcc")], 0.0);
        assert_eq!(h[idx("icpx")], 0.0);
        assert_eq!(h[idx("aocc")], 0.0);
        assert_eq!(h[idx("nvcc")], 0.0);
    }

    #[test]
    fn fig7_cost_and_energy_story() {
        let rows = study().fig7();
        let pick = |a: &str, c: &str| {
            rows.iter()
                .find(|p| p.arch == a && p.compiler == c)
                .unwrap()
        };
        // A64FX is the value king (0.64 $/h node).
        let a64 = pick("a64fx", "fcc");
        for (a, c) in [("grace", "clang"), ("genoa", "gcc")] {
            assert!(
                a64.cost_per_ligand < pick(a, c).cost_per_ligand,
                "A64FX should be cheapest vs {a}"
            );
        }
        // Failing to vectorize costs energy: GCC on ARM burns much more
        // per ligand than Clang.
        let gcc = pick("grace", "gcc");
        let clang = pick("grace", "clang");
        assert!(gcc.energy_per_ligand > 1.5 * clang.energy_per_ligand);
        // Positive J-per-ligand scale (absolute values are smaller than
        // the paper's because our kernels are faster per pose; shape is
        // what matters — see EXPERIMENTS.md).
        assert!(clang.energy_per_ligand > 0.01 && clang.energy_per_ligand < 500.0);
    }

    #[test]
    fn tables45_memory_shape() {
        let rows = study().tables45();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.llc_miss_multi >= r.llc_miss_single * 0.9 - 1e-12,
                "{}: multi-core misses should not improve",
                r.arch
            );
            assert!(r.ai_single.is_finite() && r.ai_multi.is_finite());
        }
        let by = |k: &str| rows.iter().find(|r| r.arch == k).unwrap();
        // A64FX's 8 MiB CMG LLC thrashes at least as hard as SPR's
        // 105 MiB fully-shared L3 under the map working set.
        assert!(by("a64fx").llc_miss_multi >= by("spr").llc_miss_multi);
        // SPR's large fully-shared L3 keeps the multi-core rate lowest.
        for k in ["genoa", "a64fx", "grace"] {
            assert!(by("spr").llc_miss_multi <= by(k).llc_miss_multi + 1e-9);
        }
    }
}
