//! Workload extraction: runs *real* docking on the host to obtain the
//! numbers the analytical model needs — atoms/pairs/torsion counts, and a
//! sampled grid-access trace from actual GA trajectories (so the cache
//! simulator sees realistic locality: early random poses → converged
//! poses circling the pocket).
//!
//! The traces are expressed on a *virtual fine grid* (AutoGrid's default
//! 0.375 Å spacing over the paper-scale box) regardless of the coarse grid
//! used to run the GA quickly; positions are mapped to fine-grid cells
//! arithmetically.

use mudock_core::{Backend, DockParams, DockingEngine, GaParams, LigandPrep};
use mudock_ff::types::NUM_TYPES;
use mudock_grids::{GridBuilder, GridDims, GridSet, NUM_MAPS};
use mudock_mol::{ConformSoA, Vec3};
use mudock_molio::{complex_1a30_like, mediate_like_set};
use mudock_simd::SimdLevel;

/// One sampled map access: the atom's type map plus the elec/desolv maps
/// are derived during replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Atom type index (selects the map layer).
    pub ty: u8,
    /// Linear cell index of the trilinear 000 corner on the *virtual*
    /// fine grid.
    pub cell: u32,
}

/// Everything the model needs about one evaluation scenario.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: &'static str,
    /// Distinct ligands in the dataset.
    pub ligands: usize,
    /// Pose evaluations per ligand (population × generations).
    pub poses_per_ligand: f64,
    /// Mean atoms per ligand.
    pub atoms: f64,
    /// Mean scored pairs per ligand.
    pub pairs: f64,
    /// Mean torsions per ligand.
    pub torsions: f64,
    /// Mean genes per genotype.
    pub genes: f64,
    /// Virtual fine-grid geometry (x-fastest linear cells).
    pub grid_npts: [u32; 3],
    /// Cells per map on the virtual grid.
    pub cells_per_map: usize,
    /// Number of map layers (14 types + elec + desolv).
    pub n_maps: usize,
    /// Per-ligand access traces (one stream per distinct ligand; cores
    /// replay `traces[core % len]`).
    pub traces: Vec<Vec<TraceEntry>>,
    /// Poses covered by each trace (for scaling trace-derived counts).
    pub trace_poses: usize,
}

impl Workload {
    /// Total map-set footprint in bytes on the virtual grid.
    pub fn grid_bytes(&self) -> usize {
        self.cells_per_map * self.n_maps * 4
    }

    /// Map accesses per pose (3 maps × 8 corners per atom).
    pub fn accesses_per_pose(&self) -> f64 {
        self.atoms * 24.0
    }
}

/// Paper-scale virtual grid: the AutoGrid default spacing over a 24 Å box.
fn virtual_dims() -> GridDims {
    GridDims::centered(Vec3::ZERO, 12.0, 0.375)
}

/// Coarse *real* grid used to run the trace-gathering GA quickly.
fn coarse_grid(receptor: &mudock_mol::Molecule, types: &[mudock_ff::AtomType]) -> GridSet {
    let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.75);
    GridBuilder::new(receptor, dims)
        .with_types(types)
        .build_simd(SimdLevel::detect())
}

fn ligand_types(lig: &mudock_mol::Molecule) -> Vec<mudock_ff::AtomType> {
    let mut t: Vec<mudock_ff::AtomType> = lig.atoms.iter().map(|a| a.ty).collect();
    t.sort_unstable();
    t.dedup();
    t
}

/// Run a short GA for one ligand and sample its virtual-grid access trace.
fn trace_ligand(
    gs: &GridSet,
    prep: &LigandPrep,
    seed: u64,
    pop: usize,
    gens: usize,
) -> Vec<TraceEntry> {
    let vdims = virtual_dims();
    let engine = DockingEngine::new(gs).expect("coarse grid fits");
    let params = DockParams {
        ga: GaParams {
            population: pop,
            generations: gens,
            ..Default::default()
        },
        seed,
        backend: Backend::Explicit(SimdLevel::detect()),
        search_radius: Some(8.5),
        local_search: None,
    };
    // Drive the GA manually so we can see each scored pose's coordinates.
    let mut ga = mudock_core::Ga::new(params.ga, params.seed, Vec3::ZERO, 8.5, prep.n_torsions());
    let mut popv = ga.init_population();
    let mut fitness = vec![0.0f32; popv.len()];
    let mut scratch = ConformSoA::with_capacity(prep.base.n);
    let mut trace = Vec::with_capacity(pop * gens * prep.base.n);
    for _ in 0..gens {
        for (ind, fit) in popv.iter().zip(fitness.iter_mut()) {
            *fit = engine.score(prep, ind, &mut scratch, params.backend);
            // Record the virtual-grid cell of every atom of this pose.
            for i in 0..scratch.n {
                let p = scratch.pos(i);
                let g = vdims.to_grid_units(p);
                let [nx, ny, nz] = vdims.npts;
                let ix = (g.x.clamp(0.0, (nx - 1) as f32) as u32).min(nx - 2);
                let iy = (g.y.clamp(0.0, (ny - 1) as f32) as u32).min(ny - 2);
                let iz = (g.z.clamp(0.0, (nz - 1) as f32) as u32).min(nz - 2);
                trace.push(TraceEntry {
                    ty: prep.statics.ty[i] as u8,
                    cell: vdims.linear(ix, iy, iz) as u32,
                });
            }
        }
        popv = ga.evolve(&popv, &fitness);
    }
    trace
}

/// The paper's *reduced dataset*: the 1a30-like complex replicated, used
/// for all single-core measurements (Sections VII-e, VIII). Trace sampled
/// from a short GA; counts scaled to the paper's 100 × 1000 schedule.
pub fn reduced_workload() -> Workload {
    let (receptor, ligand) = complex_1a30_like();
    let types = ligand_types(&ligand);
    let gs = coarse_grid(&receptor, &types);
    let prep = LigandPrep::new(ligand).expect("1a30-like ligand is valid");
    let pop = 40;
    let gens = 25;
    let trace = trace_ligand(&gs, &prep, 0x1a30, pop, gens);
    let vdims = virtual_dims();
    Workload {
        name: "reduced (1a30-like ×20)",
        // The paper replicates the same molecule to get stable kernels
        // measurements; 20 replicas put modeled runtimes in Fig. 2a's range.
        ligands: 20,
        poses_per_ligand: 100.0 * 1000.0,
        atoms: prep.base.n as f64,
        pairs: prep.pairs.n as f64,
        torsions: prep.n_torsions() as f64,
        genes: (7 + prep.n_torsions()) as f64,
        grid_npts: vdims.npts,
        cells_per_map: vdims.total(),
        n_maps: NUM_MAPS,
        traces: vec![trace],
        trace_poses: pop * gens,
    }
}

/// The MEDIATE-like screening set: 2,500 ligands over all cores
/// (Figure 2b, 7). Statistics and traces sampled from a handful of
/// generated ligands, counts scaled to the full set.
pub fn mediate_workload() -> Workload {
    let (receptor, _) = complex_1a30_like();
    let sample = mediate_like_set(0x6d65, 6);
    let mut all_types: Vec<mudock_ff::AtomType> = sample
        .iter()
        .flat_map(|l| l.atoms.iter().map(|a| a.ty))
        .collect();
    all_types.sort_unstable();
    all_types.dedup();
    let gs = coarse_grid(&receptor, &all_types);

    let mut traces = Vec::new();
    let mut atoms = 0.0;
    let mut pairs = 0.0;
    let mut torsions = 0.0;
    let pop = 30;
    let gens = 15;
    for (i, lig) in sample.iter().enumerate() {
        let prep = LigandPrep::new(lig.clone()).expect("generated ligand is valid");
        atoms += prep.base.n as f64;
        pairs += prep.pairs.n as f64;
        torsions += prep.n_torsions() as f64;
        traces.push(trace_ligand(&gs, &prep, 0xbeef + i as u64, pop, gens));
    }
    let n = sample.len() as f64;
    let vdims = virtual_dims();
    Workload {
        name: "MEDIATE-like (2500 ligands)",
        ligands: 2500,
        poses_per_ligand: 100.0 * 1000.0,
        atoms: atoms / n,
        pairs: pairs / n,
        torsions: torsions / n,
        genes: 7.0 + torsions / n,
        grid_npts: vdims.npts,
        cells_per_map: vdims.total(),
        n_maps: NUM_MAPS,
        traces,
        trace_poses: pop * gens,
    }
}

/// Replay a workload's traces through an architecture's cache hierarchy
/// with `cores` active cores (core `c` replays trace `c % traces.len()`,
/// offset so cores are de-phased), expanding each entry into the 24
/// corner-line touches of the three trilinear fetches.
pub fn replay(
    arch: &crate::arch::ArchConfig,
    wl: &Workload,
    cores: usize,
) -> crate::cache::CacheOutcome {
    use crate::cache::Hierarchy;
    let mut h = Hierarchy::new(arch, cores);
    let stride = wl.cells_per_map as u64;
    let nx = wl.grid_npts[0] as u64;
    let sz = (wl.grid_npts[0] * wl.grid_npts[1]) as u64;
    let elec_base = (NUM_TYPES as u64) * stride;
    let des_base = (NUM_TYPES as u64 + 1) * stride;

    // Interleave per-core streams round-robin, as concurrently-running
    // cores would.
    let streams: Vec<&Vec<TraceEntry>> = (0..cores)
        .map(|c| &wl.traces[c % wl.traces.len()])
        .collect();
    let max_len = streams.iter().map(|s| s.len()).max().unwrap_or(0);
    // Pass 0 warms the caches (the paper discards warm-up runs); pass 1 is
    // measured — the steady state of a 1000-generation docking run.
    for pass in 0..2 {
        if pass == 1 {
            h.reset_stats();
        }
        for pos in 0..max_len {
            for (core, stream) in streams.iter().enumerate() {
                // De-phase cores so identical traces don't run in lockstep.
                let idx = (pos + core * 97) % stream.len();
                let e = stream[idx];
                let cell = e.cell as u64;
                let t_base = e.ty as u64 * stride + cell;
                for base in [t_base, elec_base + cell, des_base + cell] {
                    for off in [0, 1, nx, nx + 1, sz, sz + 1, sz + nx, sz + nx + 1] {
                        h.access(core, (base + off) * 4);
                    }
                }
            }
        }
    }
    h.outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    #[test]
    fn reduced_workload_shape() {
        let wl = reduced_workload();
        assert!(wl.atoms >= 24.0, "1a30-like has ≥24 heavy atoms");
        assert!(wl.pairs > 50.0, "flexible ligand has many scored pairs");
        assert!(wl.torsions >= 4.0);
        assert_eq!(wl.poses_per_ligand, 100_000.0);
        assert_eq!(wl.traces.len(), 1);
        assert_eq!(wl.traces[0].len(), wl.trace_poses * wl.atoms as usize);
        // Paper-scale map footprint: tens of MB.
        assert!(wl.grid_bytes() > 10 << 20, "{} B", wl.grid_bytes());
        // All cells within one map.
        let cells = wl.cells_per_map as u32;
        assert!(wl.traces[0].iter().all(|e| e.cell < cells));
    }

    #[test]
    fn trace_shows_convergence_locality() {
        // The GA converges: late-trace cells concentrate on fewer distinct
        // cells than early-trace cells.
        let wl = reduced_workload();
        let t = &wl.traces[0];
        let third = t.len() / 3;
        let uniq = |s: &[TraceEntry]| {
            let mut cells: Vec<u32> = s.iter().map(|e| e.cell).collect();
            cells.sort_unstable();
            cells.dedup();
            cells.len()
        };
        let early = uniq(&t[..third]);
        let late = uniq(&t[t.len() - third..]);
        assert!(
            late < early,
            "expected pose convergence: early {early} distinct cells, late {late}"
        );
    }

    #[test]
    fn replay_single_core_mostly_hits() {
        // One core revisiting the pocket region: high locality once warm.
        let wl = reduced_workload();
        let out = replay(&arch::spr(), &wl, 1);
        assert!(out.total_accesses > 100_000);
        assert!(
            out.llc_miss_rate() < 0.05,
            "single-core LLC miss rate {}",
            out.llc_miss_rate()
        );
    }

    #[test]
    fn multicore_replay_increases_misses() {
        let wl = mediate_workload();
        for a in [arch::genoa(), arch::spr()] {
            let single = replay(&a, &wl, 1).llc_miss_rate();
            let multi = replay(&a, &wl, 16.min(a.cores())).llc_miss_rate();
            assert!(
                multi >= single,
                "{}: multi {multi} < single {single}",
                a.key
            );
        }
    }
}
