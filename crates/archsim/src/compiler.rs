//! Compiler codegen profiles — the seven toolchains of the paper's
//! Table III, reduced to the codegen properties that Section VIII shows
//! actually decide performance:
//!
//! 1. the vector width the compiler *chooses* to emit (LLVM and GCC cap at
//!    256 bits on SPR to avoid AVX-512 frequency licensing, Highway emits
//!    full width);
//! 2. whether a **vectorized math library** resolves `expf` inside loops
//!    (GCC and NVC++ on ARM have no vectorized GLIBC → the loops that call
//!    math stay scalar — the paper's headline portability failure);
//! 3. whether the approximate-exponential instruction `FEXPA` is reachable
//!    (only FCC and LLVM+ArmPL on A64FX);
//! 4. a residual tuning factor calibrated against the paper's measured
//!    application-efficiency matrix (Figure 6) for effects the analytical
//!    model does not capture mechanistically (cost-model aggressiveness,
//!    scheduling quality); each is documented at its definition.

use crate::arch::{ArchConfig, Isa};

/// One toolchain from Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompilerProfile {
    pub key: &'static str,
    pub name: &'static str,
    pub version: &'static str,
    /// Flags used on x86 (None = unavailable), per Table III.
    pub flags_x86: Option<&'static str>,
    /// Flags used on ARM (None = unavailable), per Table III.
    pub flags_arm: Option<&'static str>,
}

/// Codegen behaviour of (compiler, architecture).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Codegen {
    /// Vector width (bits) emitted for vectorizable loops; 32 = scalar.
    pub vec_bits: usize,
    /// A vector math library resolves `expf` etc. inside loops. Without
    /// it, loops containing math calls do not vectorize at all.
    pub math_vectorized: bool,
    /// Emits `FEXPA`-accelerated exponentials (A64FX only).
    pub fexpa: bool,
    /// Fused multiply-add available to the emitted code (false only for
    /// the x86 SSE no-vectorization baseline).
    pub fma: bool,
    /// Residual throughput calibration (1.0 = neutral; >1 favours this
    /// combination). Values are fitted to the paper's Figure 6 and
    /// documented per profile.
    pub tuning: f32,
}

/// The explicit-vectorization "pseudo compiler" (Google Highway analogue):
/// always emits the architecture's full native width with its own
/// polynomial math.
pub const HWY: CompilerProfile = CompilerProfile {
    key: "hwy",
    name: "HWY",
    version: "1.2 (model)",
    flags_x86: Some("-O3 -DNDEBUG (intrinsics via dynamic dispatch)"),
    flags_arm: Some("-O3 -DNDEBUG (intrinsics via dynamic dispatch)"),
};

pub const GCC: CompilerProfile = CompilerProfile {
    key: "gcc",
    name: "GCC",
    version: "15.0.0",
    flags_x86: Some("-fopenmp-simd -ffast-math -march"),
    flags_arm: Some("-fopenmp-simd -ffast-math -mcpu"),
};

pub const CLANG: CompilerProfile = CompilerProfile {
    key: "clang",
    name: "Clang",
    version: "19.1.0",
    flags_x86: Some("-fopenmp-simd -ffast-math -fveclib=libmvec -march"),
    flags_arm: Some("-fopenmp-simd -ffast-math -fveclib=ArmPL -mcpu"),
};

pub const NVCC: CompilerProfile = CompilerProfile {
    key: "nvcc",
    name: "NVCC",
    version: "NVC++ 24.9",
    flags_x86: None,
    flags_arm: Some("-mp -Ofast -mcpu"),
};

pub const FCC: CompilerProfile = CompilerProfile {
    key: "fcc",
    name: "FCC",
    version: "4.11 (clang mode)",
    flags_x86: None,
    flags_arm: Some("-Nclang -fopenmp-simd -ffast-math -mcpu"),
};

pub const AOCC: CompilerProfile = CompilerProfile {
    key: "aocc",
    name: "AOCC",
    version: "5.0.0",
    flags_x86: Some("-fopenmp-simd -ffast-math -fveclib=AMDLIBM"),
    flags_arm: None,
};

pub const ICPX: CompilerProfile = CompilerProfile {
    key: "icpx",
    name: "ICPX",
    version: "oneAPI 2025.1.0",
    flags_x86: Some("-fopenmp-simd -ffp-model=fast"),
    flags_arm: None,
};

/// All compilers, in the paper's plotting order.
pub fn all_compilers() -> Vec<CompilerProfile> {
    vec![GCC, CLANG, HWY, NVCC, FCC, AOCC, ICPX]
}

/// Look up a compiler profile by key.
pub fn compiler_by_key(key: &str) -> Option<CompilerProfile> {
    all_compilers().into_iter().find(|c| c.key == key)
}

/// Which compilers the paper evaluates on each architecture
/// (vendor compilers only on their own platforms).
pub fn available_on(c: &CompilerProfile, arch: &ArchConfig) -> bool {
    match (c.key, arch.key) {
        ("nvcc", k) => k == "grace",
        ("fcc", k) => k == "a64fx",
        ("aocc", k) => k == "genoa",
        ("icpx", k) => k == "spr",
        _ => match arch.isa {
            Isa::X86 => c.flags_x86.is_some(),
            Isa::Arm => c.flags_arm.is_some(),
        },
    }
}

/// Resolve the codegen behaviour of a compiler on an architecture.
/// Returns `None` when the paper does not evaluate that combination.
pub fn codegen(c: &CompilerProfile, arch: &ArchConfig) -> Option<Codegen> {
    if !available_on(c, arch) {
        return None;
    }
    let native = arch.vec_bits;
    let cg = match c.key {
        // Highway: explicit full-width intrinsics + own vector math.
        // Tuning < 1 on ARM: the paper finds ArmPL-based Clang beats HWY's
        // generic polynomials there (Section VIII-a/IX).
        "hwy" => Codegen {
            vec_bits: native,
            math_vectorized: true,
            fexpa: false,
            fma: true,
            tuning: if arch.isa == Isa::Arm { 0.88 } else { 1.0 },
        },
        // GCC: vectorizes with OpenMP SIMD pragmas; on x86 libmvec gives
        // vector math but the cost model stays at 256-bit on SPR; on ARM
        // the system GLIBC has no vector math → math loops stay scalar.
        // Tuning > 1 on Genoa: the paper credits GCC's more aggressive
        // cost model and fewer LLC misses for the win there (VIII-a).
        "gcc" => Codegen {
            vec_bits: if arch.isa == Isa::X86 {
                native.min(256)
            } else {
                native
            },
            math_vectorized: arch.isa == Isa::X86,
            fexpa: false,
            fma: true,
            tuning: if arch.key == "genoa" { 1.10 } else { 1.0 },
        },
        // Clang/LLVM: 256-bit cost-model cap on SPR (llvm#102047); ArmPL
        // gives vector math on ARM and reaches FEXPA on A64FX.
        "clang" => Codegen {
            vec_bits: if arch.isa == Isa::X86 {
                native.min(256)
            } else {
                native
            },
            math_vectorized: true,
            fexpa: arch.has_fexpa,
            fma: true,
            tuning: 1.0,
        },
        // NVC++ on Grace: shares the GCC GLIBC problem (Section VIII-a)
        // and trails GCC slightly in the paper's Figure 6 (0.43 vs 0.50).
        "nvcc" => Codegen {
            vec_bits: native,
            math_vectorized: false,
            fexpa: false,
            fma: true,
            tuning: 0.86,
        },
        // FCC on A64FX: full 512-bit SVE, FEXPA, and scheduling tuned for
        // the A64FX pipeline (best-in-class there, Figure 6 = 1.00).
        "fcc" => Codegen {
            vec_bits: native,
            math_vectorized: true,
            fexpa: true,
            fma: true,
            tuning: 1.12,
        },
        // AOCC on Genoa: AMDLIBM vector math at 256-bit (Figure 6: 0.91,
        // between Clang and GCC).
        "aocc" => Codegen {
            vec_bits: 256,
            math_vectorized: true,
            fexpa: false,
            fma: true,
            tuning: 1.01,
        },
        // ICPX on SPR: emits 512-bit with SVML but does not beat HWY
        // (Figure 6: 0.85) — model as full width with a small penalty.
        "icpx" => Codegen {
            vec_bits: native,
            math_vectorized: true,
            fexpa: false,
            fma: true,
            tuning: 0.85,
        },
        _ => return None,
    };
    Some(cg)
}

/// The no-vectorization baseline used for Figure 3's speedup denominator.
/// The paper measures speedup per compiler ("with no vectorization and
/// with vectorization … using the same compiler"), so the baseline keeps
/// the compiler's math library and FEXPA access. On x86, SSE could not be
/// disabled, so the baseline still runs 128-bit packed code (Section
/// VIII-a); on ARM it is true scalar code.
pub fn novec_baseline(arch: &ArchConfig, cg: &Codegen) -> Codegen {
    Codegen {
        vec_bits: if arch.isa == Isa::X86 { 128 } else { 32 },
        // x86 GLIBC ships SSE libmvec variants, so even the baseline's
        // math is 4-wide there; ARM keeps the compiler's situation.
        math_vectorized: if arch.isa == Isa::X86 {
            true
        } else {
            cg.math_vectorized
        },
        fexpa: cg.fexpa,
        // -fno-vectorize does not disable FMA contraction.
        fma: true,
        tuning: cg.tuning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    #[test]
    fn availability_matrix_matches_paper() {
        // Figure 2/6 show exactly these compiler sets per architecture.
        let count = |a: &ArchConfig| {
            all_compilers()
                .iter()
                .filter(|c| available_on(c, a))
                .count()
        };
        assert_eq!(count(&arch::grace()), 4); // GCC Clang HWY NVCC
        assert_eq!(count(&arch::genoa()), 4); // GCC Clang HWY AOCC
        assert_eq!(count(&arch::spr()), 4); // GCC Clang HWY ICPX
        assert_eq!(count(&arch::a64fx()), 4); // GCC Clang HWY FCC
        assert_eq!(count(&arch::graviton4()), 3); // GCC Clang HWY
    }

    #[test]
    fn spr_cost_model_cap() {
        let spr = arch::spr();
        assert_eq!(codegen(&CLANG, &spr).unwrap().vec_bits, 256);
        assert_eq!(codegen(&GCC, &spr).unwrap().vec_bits, 256);
        // Highway emits full 512-bit on SPR — the paper's explanation for
        // HWY being fastest there.
        assert_eq!(codegen(&HWY, &spr).unwrap().vec_bits, 512);
    }

    #[test]
    fn arm_glibc_issue() {
        for a in [arch::grace(), arch::graviton4(), arch::a64fx()] {
            assert!(!codegen(&GCC, &a).unwrap().math_vectorized, "{}", a.key);
            assert!(codegen(&CLANG, &a).unwrap().math_vectorized, "{}", a.key);
        }
        assert!(!codegen(&NVCC, &arch::grace()).unwrap().math_vectorized);
        // x86 GLIBC ships libmvec: no issue there.
        assert!(codegen(&GCC, &arch::spr()).unwrap().math_vectorized);
    }

    #[test]
    fn fexpa_reachability() {
        let a = arch::a64fx();
        assert!(codegen(&FCC, &a).unwrap().fexpa);
        assert!(
            codegen(&CLANG, &a).unwrap().fexpa,
            "LLVM+ArmPL reaches FEXPA"
        );
        assert!(!codegen(&HWY, &a).unwrap().fexpa);
        // FEXPA does not exist off-A64FX.
        assert!(!codegen(&CLANG, &arch::grace()).unwrap().fexpa);
    }

    #[test]
    fn novec_baseline_widths() {
        let clang_spr = codegen(&CLANG, &arch::spr()).unwrap();
        assert_eq!(novec_baseline(&arch::spr(), &clang_spr).vec_bits, 128);
        let gcc_genoa = codegen(&GCC, &arch::genoa()).unwrap();
        assert_eq!(novec_baseline(&arch::genoa(), &gcc_genoa).vec_bits, 128);
        let clang_grace = codegen(&CLANG, &arch::grace()).unwrap();
        let nv = novec_baseline(&arch::grace(), &clang_grace);
        assert_eq!(nv.vec_bits, 32);
        assert!(nv.math_vectorized, "clang keeps ArmPL in the baseline");
        // FCC's baseline keeps FEXPA.
        let fcc = codegen(&FCC, &arch::a64fx()).unwrap();
        assert!(novec_baseline(&arch::a64fx(), &fcc).fexpa);
    }

    #[test]
    fn vendor_compilers_are_exclusive() {
        assert!(codegen(&ICPX, &arch::genoa()).is_none());
        assert!(codegen(&AOCC, &arch::spr()).is_none());
        assert!(codegen(&FCC, &arch::grace()).is_none());
        assert!(codegen(&NVCC, &arch::a64fx()).is_none());
    }
}
