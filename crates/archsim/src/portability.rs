//! Performance-portability metric (Pennycook, Sewall & Lee) — the paper's
//! Figure 6: application efficiency per (architecture, compiler), and the
//! harmonic mean across architectures, with 0 for toolchains that cannot
//! target the whole platform set.

/// Application-efficiency matrix.
#[derive(Clone, Debug)]
pub struct PortabilityMatrix {
    /// Architecture keys (rows).
    pub archs: Vec<String>,
    /// Compiler keys (columns).
    pub compilers: Vec<String>,
    /// `eff[row][col]`: best-time-on-arch / time, `None` where the
    /// combination does not exist.
    pub eff: Vec<Vec<Option<f64>>>,
}

impl PortabilityMatrix {
    /// Build from raw execution times (`None` = unavailable).
    pub fn from_times(
        archs: Vec<String>,
        compilers: Vec<String>,
        times: &[Vec<Option<f64>>],
    ) -> PortabilityMatrix {
        assert_eq!(times.len(), archs.len());
        let mut eff = Vec::with_capacity(times.len());
        for row in times {
            assert_eq!(row.len(), compilers.len());
            let best = row.iter().flatten().fold(f64::INFINITY, |a, &b| a.min(b));
            eff.push(
                row.iter()
                    .map(|t| t.map(|t| best / t))
                    .collect::<Vec<Option<f64>>>(),
            );
        }
        PortabilityMatrix {
            archs,
            compilers,
            eff,
        }
    }

    /// Pennycook harmonic-mean performance portability of one compiler:
    /// `|H| / Σ 1/eff` over all architectures, and **0** if the compiler
    /// is missing on any architecture (the paper's treatment of vendor
    /// compilers).
    pub fn harmonic_mean(&self, compiler_idx: usize) -> f64 {
        let mut inv_sum = 0.0;
        for row in &self.eff {
            match row[compiler_idx] {
                Some(e) if e > 0.0 => inv_sum += 1.0 / e,
                _ => return 0.0,
            }
        }
        self.archs.len() as f64 / inv_sum
    }

    /// All harmonic means, one per compiler.
    pub fn harmonic_means(&self) -> Vec<f64> {
        (0..self.compilers.len())
            .map(|c| self.harmonic_mean(c))
            .collect()
    }

    /// Efficiency for named (arch, compiler), if present.
    pub fn get(&self, arch: &str, compiler: &str) -> Option<f64> {
        let r = self.archs.iter().position(|a| a == arch)?;
        let c = self.compilers.iter().position(|x| x == compiler)?;
        self.eff[r][c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> PortabilityMatrix {
        // 2 archs × 3 compilers; compiler "v" missing on arch B.
        PortabilityMatrix::from_times(
            vec!["A".into(), "B".into()],
            vec!["x".into(), "y".into(), "v".into()],
            &[
                vec![Some(10.0), Some(20.0), Some(10.0)],
                vec![Some(40.0), Some(15.0), None],
            ],
        )
    }

    #[test]
    fn efficiency_normalizes_to_row_best() {
        let m = matrix();
        assert_eq!(m.get("A", "x"), Some(1.0));
        assert_eq!(m.get("A", "y"), Some(0.5));
        assert_eq!(m.get("B", "y"), Some(1.0));
        assert_eq!(m.get("B", "x"), Some(0.375));
        assert_eq!(m.get("B", "v"), None);
    }

    #[test]
    fn harmonic_mean_and_unavailability() {
        let m = matrix();
        // x: eff 1.0 and 0.375 → H = 2 / (1 + 8/3) = 6/11.
        assert!((m.harmonic_mean(0) - 6.0 / 11.0).abs() < 1e-12);
        // v is missing on B → 0 (paper's convention for vendor compilers).
        assert_eq!(m.harmonic_mean(2), 0.0);
    }

    #[test]
    fn best_compiler_scores_higher() {
        let m = matrix();
        let h = m.harmonic_means();
        assert!(h[1] > h[0], "y is best on B and half on A");
    }
}
