//! Trace-driven cache hierarchy simulator.
//!
//! Set-associative, true-LRU, write-allocate caches assembled from an
//! [`ArchConfig`]'s level descriptions: private levels get one instance
//! per core, shared levels one instance per sharing domain (SPR: one L3
//! for the socket; Genoa: one per 8-core CCD; A64FX: the CMG L2 *is* the
//! LLC). This machinery regenerates the paper's Table IV (LLC miss rates)
//! and feeds DRAM-traffic numbers into Table V and the multi-core model.

use crate::arch::ArchConfig;

/// One cache instance.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    pub accesses: u64,
    pub misses: u64,
}

impl Cache {
    /// Build from size/associativity/line size. Panics unless the set
    /// count works out to a power-of-two positive integer.
    pub fn new(size_bytes: usize, assoc: usize, line_bytes: usize) -> Cache {
        assert!(assoc >= 1 && line_bytes.is_power_of_two());
        let lines = size_bytes / line_bytes;
        let sets = (lines / assoc).max(1);
        Cache {
            sets,
            ways: assoc,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * assoc],
            stamps: vec![0; sets * assoc],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Access a byte address; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_evicting(addr).0
    }

    /// Like [`Cache::access`], but also reports the *line address* a
    /// miss evicted (`None` when an invalid way was filled instead).
    /// This is what trace replayers build victim-tier models on: the
    /// evicted line is exactly what a lower tier would admit.
    pub fn access_evicting(&mut self, addr: u64) -> (bool, Option<u64>) {
        self.clock += 1;
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(w) = slots.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            return (true, None);
        }
        self.misses += 1;
        // Evict the LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        let mut filled_invalid = false;
        for w in 0..self.ways {
            let stamp = self.stamps[base + w];
            if self.tags[base + w] == u64::MAX {
                victim = w;
                filled_invalid = true;
                break;
            }
            if stamp < oldest {
                oldest = stamp;
                victim = w;
            }
        }
        let evicted = if filled_invalid {
            None
        } else {
            Some(self.tags[base + victim] << self.line_shift)
        };
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        (false, evicted)
    }

    /// What an access of `addr` *would* do, without doing it: `(hit,
    /// victim line)`. The victim is `None` on a hit or while an invalid
    /// way remains. Admission-filtered policies (TinyLFU-style) peek the
    /// victim first and only commit the access when the candidate earns
    /// its slot.
    pub fn peek(&self, addr: u64) -> (bool, Option<u64>) {
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.ways;
        if self.tags[base..base + self.ways].contains(&line) {
            return (true, None);
        }
        let mut victim = None;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            if self.tags[base + w] == u64::MAX {
                return (false, None);
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = Some(self.tags[base + w] << self.line_shift);
            }
        }
        (false, victim)
    }

    pub fn miss_rate(&self) -> f64 {
        if self.accesses > 0 {
            self.misses as f64 / self.accesses as f64
        } else {
            0.0
        }
    }

    /// Zero the counters but keep the contents (for warm measurement).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

/// Per-level outcome of a trace replay.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LevelStats {
    pub accesses: u64,
    pub misses: u64,
}

impl LevelStats {
    pub fn miss_rate(&self) -> f64 {
        if self.accesses > 0 {
            self.misses as f64 / self.accesses as f64
        } else {
            0.0
        }
    }

    /// Zero the counters but keep the contents (for warm measurement).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

/// Outcome of replaying a workload through a hierarchy.
#[derive(Clone, Debug, Default)]
pub struct CacheOutcome {
    /// Stats per level, nearest first (last = LLC).
    pub levels: Vec<LevelStats>,
    /// Bytes fetched from DRAM (LLC misses × line size).
    pub dram_bytes: u64,
    /// Total demand accesses issued.
    pub total_accesses: u64,
}

impl CacheOutcome {
    /// LLC miss rate relative to *total demand accesses* — the paper's
    /// Table IV metric (which is why its values are 1e-7…1e-2: most
    /// accesses never reach the LLC at all).
    pub fn llc_miss_rate(&self) -> f64 {
        let misses = self.levels.last().map(|l| l.misses).unwrap_or(0);
        if self.total_accesses > 0 {
            misses as f64 / self.total_accesses as f64
        } else {
            0.0
        }
    }
}

/// A full multi-core cache hierarchy for one architecture.
pub struct Hierarchy {
    /// `instances[level][instance]`.
    instances: Vec<Vec<Cache>>,
    /// `owner[level]` maps a core to its instance index.
    sharing: Vec<usize>,
    line_bytes: Vec<usize>,
    cores: usize,
}

impl Hierarchy {
    /// Build the hierarchy for `cores` active cores of an architecture.
    pub fn new(arch: &ArchConfig, cores: usize) -> Hierarchy {
        assert!(cores >= 1);
        let mut instances = Vec::new();
        let mut sharing = Vec::new();
        let mut line_bytes = Vec::new();
        for level in &arch.caches {
            let domains = cores.div_ceil(level.shared_by);
            instances.push(
                (0..domains)
                    .map(|_| Cache::new(level.size_kib * 1024, level.assoc, level.line_bytes))
                    .collect(),
            );
            sharing.push(level.shared_by);
            line_bytes.push(level.line_bytes);
        }
        Hierarchy {
            instances,
            sharing,
            line_bytes,
            cores,
        }
    }

    /// Issue one demand load from `core` for `addr`, walking the levels.
    /// Returns the level index that hit (`levels.len()` = DRAM).
    pub fn access(&mut self, core: usize, addr: u64) -> usize {
        debug_assert!(core < self.cores);
        for (li, level) in self.instances.iter_mut().enumerate() {
            let inst = core / self.sharing[li];
            if level[inst].access(addr) {
                return li;
            }
        }
        self.instances.len()
    }

    /// Zero all counters, keeping cache contents (warm measurement, like
    /// the paper's discarded warm-up runs).
    pub fn reset_stats(&mut self) {
        for level in &mut self.instances {
            for c in level {
                c.reset_stats();
            }
        }
    }

    /// Aggregate statistics across instances.
    pub fn outcome(&self) -> CacheOutcome {
        let mut levels = Vec::new();
        let mut dram_bytes = 0;
        for (li, insts) in self.instances.iter().enumerate() {
            let mut s = LevelStats::default();
            for c in insts {
                s.accesses += c.accesses;
                s.misses += c.misses;
            }
            if li == self.instances.len() - 1 {
                dram_bytes = s.misses * self.line_bytes[li] as u64;
            }
            levels.push(s);
        }
        let total = levels.first().map(|l| l.accesses).unwrap_or(0);
        CacheOutcome {
            levels,
            dram_bytes,
            total_accesses: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(32 * 1024, 8, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004), "same line");
        assert!(!c.access(0x2000));
        assert_eq!(c.misses, 2);
        assert_eq!(c.accesses, 4);
    }

    #[test]
    fn access_evicting_reports_the_victim_line() {
        // 2-way, 1 set: evictions surface the displaced line address.
        let mut c = Cache::new(128, 2, 64);
        assert_eq!(c.access_evicting(0x000), (false, None), "invalid fill");
        assert_eq!(c.access_evicting(0x100), (false, None), "invalid fill");
        assert_eq!(c.access_evicting(0x000), (true, None), "hit");
        assert_eq!(
            c.access_evicting(0x200),
            (false, Some(0x100)),
            "the LRU line is the victim"
        );
        // peek agrees with access but mutates nothing.
        assert_eq!(c.peek(0x000), (true, None));
        assert_eq!(c.peek(0x300), (false, Some(0x000)));
        assert!(c.access_evicting(0x000).0, "peek preserved recency");
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, 1 set: 128-byte cache with 64-byte lines.
        let mut c = Cache::new(128, 2, 64);
        assert_eq!(c.sets, 1);
        c.access(0x000); // A
        c.access(0x100); // B
        c.access(0x000); // A again (B becomes LRU)
        c.access(0x200); // C evicts B
        assert!(c.access(0x000), "A survives");
        assert!(!c.access(0x100), "B was evicted");
    }

    #[test]
    fn working_set_behaviour() {
        // A working set larger than the cache thrashes; smaller one hits.
        let mut small = Cache::new(4 * 1024, 4, 64);
        for _ in 0..4 {
            for a in (0..(2 * 1024)).step_by(64) {
                small.access(a as u64);
            }
        }
        // 2 KiB set fits in 4 KiB: first pass misses, rest hit.
        assert!(small.miss_rate() < 0.3, "{}", small.miss_rate());

        let mut big = Cache::new(4 * 1024, 4, 64);
        for _ in 0..4 {
            for a in (0..(64 * 1024)).step_by(64) {
                big.access(a as u64);
            }
        }
        // 64 KiB streaming over 4 KiB: everything misses.
        assert!(big.miss_rate() > 0.95, "{}", big.miss_rate());
    }

    #[test]
    fn hierarchy_levels_filter() {
        let spr = arch::spr();
        let mut h = Hierarchy::new(&spr, 1);
        // First touch goes to DRAM, second hits L1.
        assert_eq!(h.access(0, 0x5000), 3);
        assert_eq!(h.access(0, 0x5000), 0);
        let out = h.outcome();
        assert_eq!(out.levels.len(), 3);
        assert_eq!(out.levels[0].accesses, 2);
        assert_eq!(out.levels[0].misses, 1);
        assert_eq!(out.levels[2].misses, 1);
        assert_eq!(out.dram_bytes, 64);
    }

    #[test]
    fn shared_llc_lets_cores_reuse() {
        // On SPR, core 1 finds lines loaded by core 0 in the shared L3.
        let spr = arch::spr();
        let mut h = Hierarchy::new(&spr, 2);
        h.access(0, 0x9000);
        let lvl = h.access(1, 0x9000);
        assert_eq!(lvl, 2, "hit in shared L3, not DRAM");
    }

    #[test]
    fn genoa_ccd_llc_is_private_across_domains() {
        // Cores 0 and 8 sit in different CCDs on Genoa: no LLC sharing.
        let genoa = arch::genoa();
        let mut h = Hierarchy::new(&genoa, 16);
        h.access(0, 0x9000);
        let lvl = h.access(8, 0x9000);
        assert_eq!(lvl, 3, "different CCD must go to DRAM");
        // Same CCD does share.
        let lvl2 = h.access(1, 0x9000);
        assert_eq!(lvl2, 2);
    }

    #[test]
    fn a64fx_two_level_hierarchy() {
        let a = arch::a64fx();
        let mut h = Hierarchy::new(&a, 12);
        assert_eq!(h.access(0, 0x40), 2, "DRAM on first touch (2 levels)");
        assert_eq!(h.access(11, 0x40), 1, "CMG-mates share the L2");
        let out = h.outcome();
        assert_eq!(out.dram_bytes, 256, "A64FX lines are 256 B");
    }
}
