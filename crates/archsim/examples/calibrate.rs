//! Scratch calibration dump: raw model numbers per (arch, compiler).
use mudock_archsim::Study;

fn main() {
    let study = Study::new();
    println!("== fig2a single-core seconds ==");
    for p in study.fig2a() {
        println!("{:9} {:7} {:10.2}", p.arch, p.compiler, p.value);
    }
    println!("== fig6 efficiency ==");
    let m = study.fig6();
    for (r, a) in m.archs.iter().enumerate() {
        print!("{a:9}");
        for c in 0..m.compilers.len() {
            match m.eff[r][c] {
                Some(e) => print!(" {:5.2}", e),
                None => print!("   .  "),
            }
        }
        println!();
    }
    println!("harmonic: {:?}", m.harmonic_means());
    println!("== fig3 ==");
    for p in study.fig3() {
        println!(
            "{:9} {:7} ratio {:5.2} speedup {:5.2}",
            p.arch, p.compiler, p.vec_ratio, p.speedup
        );
    }
    println!("== fig4 stalls ==");
    for p in study.fig4() {
        println!("{:9} {:7} {:5.2}", p.arch, p.compiler, p.value);
    }
    println!("== fig2b node seconds ==");
    for p in study.fig2b() {
        println!("{:9} {:7} {:10.2}", p.arch, p.compiler, p.value);
    }
    println!("== fig7 ==");
    for p in study.fig7() {
        println!(
            "{:9} {:7} cost {:9.6}$ energy {:8.2} J",
            p.arch, p.compiler, p.cost_per_ligand, p.energy_per_ligand
        );
    }
    println!("== tables 4/5 ==");
    for r in study.tables45() {
        println!(
            "{:9} llc {:9.2e} -> {:9.2e}   ai {:8.1} -> {:8.1}",
            r.arch, r.llc_miss_single, r.llc_miss_multi, r.ai_single, r.ai_multi
        );
    }
}
