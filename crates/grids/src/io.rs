//! Grid-set serialization — the analogue of AutoGrid's `.map` files.
//!
//! AutoGrid runs once per receptor and writes its maps to disk; docking
//! campaigns then reuse them across millions of ligands. This module
//! stores a whole [`GridSet`] in one binary file:
//!
//! ```text
//! magic  "MDKGRID1"                      8 bytes
//! npts   [u32; 3]   spacing f32          origin [f32; 3]
//! built  [u8; NUM_MAPS]
//! data   little-endian f32 × NUM_MAPS × npts-product
//! ```
//!
//! Everything is validated on load (magic, dimension sanity, exact file
//! length), so a truncated or foreign file fails loudly instead of
//! docking against garbage.

use std::io::{Read, Write};
use std::path::Path;

use mudock_mol::Vec3;

use crate::dims::GridDims;
use crate::map::{GridSet, NUM_MAPS};

const MAGIC: &[u8; 8] = b"MDKGRID1";

/// Errors loading or saving a grid-set file.
#[derive(Debug)]
pub enum GridIoError {
    Io(std::io::Error),
    /// Not a mudock grid file (bad magic).
    BadMagic,
    /// Header fields are out of sane ranges.
    BadHeader(String),
    /// File size does not match the header's dimensions.
    Truncated {
        expected: usize,
        got: usize,
    },
}

impl std::fmt::Display for GridIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridIoError::Io(e) => write!(f, "grid i/o: {e}"),
            GridIoError::BadMagic => write!(f, "not a mudock grid file"),
            GridIoError::BadHeader(m) => write!(f, "bad grid header: {m}"),
            GridIoError::Truncated { expected, got } => {
                write!(
                    f,
                    "grid file truncated: expected {expected} data bytes, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for GridIoError {}

impl From<std::io::Error> for GridIoError {
    fn from(e: std::io::Error) -> Self {
        GridIoError::Io(e)
    }
}

/// Write a grid set to `path`.
pub fn save(gs: &GridSet, path: &Path) -> Result<(), GridIoError> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    for n in gs.dims.npts {
        w.write_all(&n.to_le_bytes())?;
    }
    w.write_all(&gs.dims.spacing.to_le_bytes())?;
    for c in [gs.dims.origin.x, gs.dims.origin.y, gs.dims.origin.z] {
        w.write_all(&c.to_le_bytes())?;
    }
    let built: Vec<u8> = gs.built.iter().map(|&b| b as u8).collect();
    w.write_all(&built)?;
    // Bulk data: one pass, little-endian f32.
    let mut buf = Vec::with_capacity(gs.data.len() * 4);
    for v in &gs.data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

fn read_exact<const N: usize>(r: &mut impl Read) -> Result<[u8; N], GridIoError> {
    let mut b = [0u8; N];
    r.read_exact(&mut b)?;
    Ok(b)
}

/// Load a grid set from `path`, validating structure and size.
pub fn load(path: &Path) -> Result<GridSet, GridIoError> {
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    let magic = read_exact::<8>(&mut r)?;
    if &magic != MAGIC {
        return Err(GridIoError::BadMagic);
    }
    let mut npts = [0u32; 3];
    for n in &mut npts {
        *n = u32::from_le_bytes(read_exact::<4>(&mut r)?);
    }
    let spacing = f32::from_le_bytes(read_exact::<4>(&mut r)?);
    let ox = f32::from_le_bytes(read_exact::<4>(&mut r)?);
    let oy = f32::from_le_bytes(read_exact::<4>(&mut r)?);
    let oz = f32::from_le_bytes(read_exact::<4>(&mut r)?);

    if npts.iter().any(|&n| !(2..=4096).contains(&n)) {
        return Err(GridIoError::BadHeader(format!("npts {npts:?}")));
    }
    if !(spacing.is_finite() && spacing > 0.0 && spacing < 100.0) {
        return Err(GridIoError::BadHeader(format!("spacing {spacing}")));
    }
    if ![ox, oy, oz].iter().all(|c| c.is_finite()) {
        return Err(GridIoError::BadHeader("non-finite origin".into()));
    }

    let dims = GridDims {
        npts,
        spacing,
        origin: Vec3::new(ox, oy, oz),
    };
    let mut built_bytes = [0u8; NUM_MAPS];
    r.read_exact(&mut built_bytes)?;

    let cells = dims.total();
    let expected = NUM_MAPS * cells * 4;
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    if raw.len() != expected {
        return Err(GridIoError::Truncated {
            expected,
            got: raw.len(),
        });
    }

    let mut gs = GridSet::empty(dims);
    for (i, chunk) in raw.chunks_exact(4).enumerate() {
        gs.data[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for (i, &b) in built_bytes.iter().enumerate() {
        gs.built[i] = b != 0;
    }
    Ok(gs)
}

/// Validate a grid file without reading its data: magic, header sanity,
/// and exact on-disk length. Returns the dimensions on success.
///
/// This is the cheap structural check a serve node runs over every file
/// in its spill directory at startup (warm restart): a multi-megabyte
/// map file costs one header read plus an `fstat`, so rescanning a full
/// spill tier is O(files), not O(bytes). A file that passes `probe` can
/// still fail [`load`] only through an I/O error, never through a
/// format error — both functions apply the same validation.
pub fn probe(path: &Path) -> Result<GridDims, GridIoError> {
    let file = std::fs::File::open(path)?;
    let total = file.metadata()?.len();
    let mut r = std::io::BufReader::new(file);
    let magic = read_exact::<8>(&mut r)?;
    if &magic != MAGIC {
        return Err(GridIoError::BadMagic);
    }
    let mut npts = [0u32; 3];
    for n in &mut npts {
        *n = u32::from_le_bytes(read_exact::<4>(&mut r)?);
    }
    let spacing = f32::from_le_bytes(read_exact::<4>(&mut r)?);
    let ox = f32::from_le_bytes(read_exact::<4>(&mut r)?);
    let oy = f32::from_le_bytes(read_exact::<4>(&mut r)?);
    let oz = f32::from_le_bytes(read_exact::<4>(&mut r)?);

    if npts.iter().any(|&n| !(2..=4096).contains(&n)) {
        return Err(GridIoError::BadHeader(format!("npts {npts:?}")));
    }
    if !(spacing.is_finite() && spacing > 0.0 && spacing < 100.0) {
        return Err(GridIoError::BadHeader(format!("spacing {spacing}")));
    }
    if ![ox, oy, oz].iter().all(|c| c.is_finite()) {
        return Err(GridIoError::BadHeader("non-finite origin".into()));
    }

    let dims = GridDims {
        npts,
        spacing,
        origin: Vec3::new(ox, oy, oz),
    };
    let header = 8 + 12 + 4 + 12 + NUM_MAPS as u64;
    let expected = dims.total() * NUM_MAPS * 4;
    let got = total.saturating_sub(header) as usize;
    if got != expected {
        return Err(GridIoError::Truncated { expected, got });
    }
    Ok(dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::GridBuilder;
    use mudock_ff::types::AtomType;
    use mudock_mol::{Atom, Molecule};

    fn sample() -> GridSet {
        let mut rec = Molecule::new("r");
        rec.atoms.push(Atom::new(Vec3::ZERO, AtomType::OA, -0.3));
        rec.atoms
            .push(Atom::new(Vec3::new(2.0, 0.0, 0.0), AtomType::C, 0.1));
        let dims = GridDims::centered(Vec3::ZERO, 3.0, 0.8);
        GridBuilder::new(&rec, dims)
            .with_types(&[AtomType::C, AtomType::HD])
            .build_scalar()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mudock-grid-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let gs = sample();
        let path = tmp("roundtrip.grid");
        save(&gs, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.dims, gs.dims);
        assert_eq!(back.built, gs.built);
        assert_eq!(back.data.len(), gs.data.len());
        for (a, b) in gs.data.iter().zip(&back.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("foreign.grid");
        std::fs::write(&path, b"definitely not a grid file").unwrap();
        assert!(matches!(load(&path), Err(GridIoError::BadMagic)));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_truncation() {
        let gs = sample();
        let path = tmp("truncated.grid");
        save(&gs, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 17]).unwrap();
        assert!(matches!(load(&path), Err(GridIoError::Truncated { .. })));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_corrupt_header() {
        let gs = sample();
        let path = tmp("corrupt.grid");
        save(&gs, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Stomp npts[0] with an absurd value.
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(GridIoError::BadHeader(_))));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn probe_accepts_valid_and_rejects_damaged_files() {
        let gs = sample();
        let path = tmp("probe.grid");
        save(&gs, &path).unwrap();
        assert_eq!(probe(&path).unwrap(), gs.dims);

        // Truncation is caught from the length alone — no data read.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(probe(&path), Err(GridIoError::Truncated { .. })));

        // Foreign bytes are caught by the magic.
        std::fs::write(&path, b"junkjunkjunkjunkjunkjunkjunkjunkjunk").unwrap();
        assert!(matches!(probe(&path), Err(GridIoError::BadMagic)));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn loaded_maps_sample_identically() {
        let gs = sample();
        let path = tmp("sample.grid");
        save(&gs, &path).unwrap();
        let back = load(&path).unwrap();
        for p in [
            Vec3::ZERO,
            Vec3::new(1.3, -0.7, 0.4),
            Vec3::new(-2.0, 2.0, 1.0),
        ] {
            assert_eq!(
                gs.sample(AtomType::C.idx(), p).to_bits(),
                back.sample(AtomType::C.idx(), p).to_bits()
            );
        }
        let _ = std::fs::remove_file(path);
    }
}
