//! Content fingerprints for grid caching.
//!
//! Building a grid set is the dominant fixed cost of a screening job
//! (AutoGrid-style precomputation over every lattice point), and virtual
//! screening campaigns hammer the *same* receptor with millions of
//! ligands. `mudock-serve` therefore caches built [`GridSet`](crate::GridSet)s keyed by
//! *what went into the build*: receptor content and lattice geometry.
//! This module provides those keys as stable 64-bit FNV-1a fingerprints —
//! independent of pointer identity, allocation order, or molecule names,
//! and stable across processes so cache keys can live in checkpoints.

use mudock_mol::Molecule;

use crate::dims::GridDims;

/// Incremental FNV-1a (64-bit) hasher. Small, dependency-free, and — in
/// contrast with `std`'s `DefaultHasher` — guaranteed stable across Rust
/// releases, which matters because fingerprints are persisted.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    #[inline]
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    #[inline]
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Hash an `f32` by bit pattern (exact content, no epsilon: a cache
    /// must only ever hit on *identical* inputs).
    #[inline]
    pub fn write_f32(&mut self, v: f32) -> &mut Self {
        self.write_u32(v.to_bits())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of everything about a receptor that influences a grid
/// build: atom positions, types, and charges, plus the atom count.
/// Names and bonds are excluded — the builder never reads them.
pub fn receptor_fingerprint(receptor: &Molecule) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(receptor.atoms.len() as u64);
    for a in &receptor.atoms {
        h.write_f32(a.pos.x)
            .write_f32(a.pos.y)
            .write_f32(a.pos.z)
            .write_u32(a.ty.idx() as u32)
            .write_f32(a.charge);
    }
    h.finish()
}

/// Fingerprint of the lattice geometry (point counts, spacing, origin).
pub fn dims_fingerprint(dims: &GridDims) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(dims.npts[0])
        .write_u32(dims.npts[1])
        .write_u32(dims.npts[2])
        .write_f32(dims.spacing)
        .write_f32(dims.origin.x)
        .write_f32(dims.origin.y)
        .write_f32(dims.origin.z);
    h.finish()
}

/// Combined cache key for a full-map grid build of `receptor` on `dims`.
///
/// The two component hashes are mixed rather than XORed so that
/// (receptor A, dims B) and (receptor B, dims A) cannot collide by
/// construction.
pub fn grid_cache_key(receptor: &Molecule, dims: &GridDims) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(receptor_fingerprint(receptor));
    h.write_u64(dims_fingerprint(dims));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_ff::types::AtomType;
    use mudock_mol::{Atom, Vec3};

    fn mol(n: usize, offset: f32) -> Molecule {
        let mut m = Molecule::new("r");
        for i in 0..n {
            m.atoms.push(Atom::new(
                Vec3::new(i as f32 + offset, 0.5, -1.0),
                AtomType::C,
                0.01,
            ));
        }
        m
    }

    #[test]
    fn identical_content_identical_key() {
        let dims = GridDims::centered(Vec3::ZERO, 5.0, 0.5);
        let a = mol(10, 0.0);
        let mut b = mol(10, 0.0);
        b.name = "completely different name".into();
        assert_eq!(grid_cache_key(&a, &dims), grid_cache_key(&b, &dims));
    }

    #[test]
    fn any_content_change_changes_key() {
        let dims = GridDims::centered(Vec3::ZERO, 5.0, 0.5);
        let base = mol(10, 0.0);
        let base_key = grid_cache_key(&base, &dims);

        let moved = mol(10, 1e-3);
        assert_ne!(base_key, grid_cache_key(&moved, &dims));

        let mut retyped = mol(10, 0.0);
        retyped.atoms[3].ty = AtomType::OA;
        assert_ne!(base_key, grid_cache_key(&retyped, &dims));

        let mut recharged = mol(10, 0.0);
        recharged.atoms[0].charge += 0.5;
        assert_ne!(base_key, grid_cache_key(&recharged, &dims));

        let other_dims = GridDims::centered(Vec3::ZERO, 5.0, 0.55);
        assert_ne!(base_key, grid_cache_key(&base, &other_dims));
    }

    #[test]
    fn fnv_reference_vectors() {
        // Fingerprints are persisted in checkpoints, so the hash must
        // match the published FNV-1a test vectors forever.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::new().write(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            Fnv64::new().write(b"foobar").finish(),
            0x8594_4171_f739_67e8
        );
    }
}
