//! Grid map storage and trilinear sampling.
//!
//! Following AutoGrid, a [`GridSet`] holds one 3-D map per ligand atom type
//! plus an electrostatic map (per unit charge) and a charge-dependent
//! desolvation map (per unit |charge|). All maps live in **one contiguous
//! buffer** so the SIMD inter-energy kernel can fetch any value with a
//! single gather: `data[map_idx * stride + cell]` — the "multiple layers of
//! 3D maps" the paper describes in Section V.

use mudock_ff::types::NUM_TYPES;
use mudock_mol::Vec3;

use crate::dims::GridDims;

/// Map slot of the electrostatic map.
pub const ELEC_MAP: usize = NUM_TYPES;
/// Map slot of the charge-dependent desolvation map.
pub const DESOLV_MAP: usize = NUM_TYPES + 1;
/// Total number of map slots.
pub const NUM_MAPS: usize = NUM_TYPES + 2;

/// A complete set of precomputed interaction maps around a receptor.
#[derive(Clone, Debug)]
pub struct GridSet {
    pub dims: GridDims,
    /// `NUM_MAPS × dims.total()` values; map `m` occupies
    /// `[m*stride, (m+1)*stride)`.
    pub data: Vec<f32>,
    /// Which map slots were actually computed (unbuilt slots stay zero and
    /// must not be sampled — the engine validates ligand types against
    /// this).
    pub built: [bool; NUM_MAPS],
}

impl GridSet {
    /// Allocate an all-zero, nothing-built grid set.
    pub fn empty(dims: GridDims) -> GridSet {
        GridSet {
            dims,
            data: vec![0.0; NUM_MAPS * dims.total()],
            built: [false; NUM_MAPS],
        }
    }

    /// Number of points per map (= offset between consecutive maps).
    #[inline(always)]
    pub fn stride(&self) -> usize {
        self.dims.total()
    }

    /// Immutable view of one map.
    #[inline]
    pub fn map(&self, m: usize) -> &[f32] {
        let s = self.stride();
        &self.data[m * s..(m + 1) * s]
    }

    /// Mutable view of one map.
    #[inline]
    pub fn map_mut(&mut self, m: usize) -> &mut [f32] {
        let s = self.stride();
        &mut self.data[m * s..(m + 1) * s]
    }

    /// Trilinear sample of map `m` at `p`, with `p` clamped into the box
    /// (out-of-box handling — the penalty — is the scoring layer's job so
    /// it is applied once per atom, not once per map).
    pub fn sample(&self, m: usize, p: Vec3) -> f32 {
        debug_assert!(self.built[m], "sampling unbuilt map {m}");
        trilinear(self.map(m), &self.dims, p)
    }

    /// Approximate heap size in bytes (for the cache-model workloads).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Scalar trilinear interpolation over one map, clamping the sample point
/// into the grid box. This is the reference the SIMD gather kernel is
/// tested against.
pub fn trilinear(map: &[f32], dims: &GridDims, p: Vec3) -> f32 {
    let [nx, ny, nz] = dims.npts;
    debug_assert!(nx >= 2 && ny >= 2 && nz >= 2, "grid too small to sample");
    let g = dims.to_grid_units(p);
    let cx = g.x.clamp(0.0, (nx - 1) as f32);
    let cy = g.y.clamp(0.0, (ny - 1) as f32);
    let cz = g.z.clamp(0.0, (nz - 1) as f32);
    let ix = (cx as u32).min(nx - 2);
    let iy = (cy as u32).min(ny - 2);
    let iz = (cz as u32).min(nz - 2);
    let fx = cx - ix as f32;
    let fy = cy - iy as f32;
    let fz = cz - iz as f32;

    let sx = 1usize;
    let sy = nx as usize;
    let sz = (nx * ny) as usize;
    let base = dims.linear(ix, iy, iz);

    let c000 = map[base];
    let c100 = map[base + sx];
    let c010 = map[base + sy];
    let c110 = map[base + sy + sx];
    let c001 = map[base + sz];
    let c101 = map[base + sz + sx];
    let c011 = map[base + sz + sy];
    let c111 = map[base + sz + sy + sx];

    let c00 = c000 + fx * (c100 - c000);
    let c10 = c010 + fx * (c110 - c010);
    let c01 = c001 + fx * (c101 - c001);
    let c11 = c011 + fx * (c111 - c011);
    let c0 = c00 + fy * (c10 - c00);
    let c1 = c01 + fy * (c11 - c01);
    c0 + fz * (c1 - c0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> GridDims {
        GridDims {
            npts: [5, 5, 5],
            spacing: 1.0,
            origin: Vec3::ZERO,
        }
    }

    /// Linear field f(x,y,z) = 2x + 3y - z + 1 is reproduced exactly by
    /// trilinear interpolation.
    fn linear_field(d: &GridDims) -> Vec<f32> {
        let mut m = vec![0.0; d.total()];
        for iz in 0..d.npts[2] {
            for iy in 0..d.npts[1] {
                for ix in 0..d.npts[0] {
                    let p = d.point(ix, iy, iz);
                    m[d.linear(ix, iy, iz)] = 2.0 * p.x + 3.0 * p.y - p.z + 1.0;
                }
            }
        }
        m
    }

    #[test]
    fn trilinear_exact_on_grid_points() {
        let d = dims();
        let m = linear_field(&d);
        for iz in 0..5 {
            for iy in 0..5 {
                for ix in 0..5 {
                    let p = d.point(ix, iy, iz);
                    let want = m[d.linear(ix, iy, iz)];
                    assert!((trilinear(&m, &d, p) - want).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn trilinear_exact_on_linear_fields() {
        let d = dims();
        let m = linear_field(&d);
        for p in [
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(1.25, 3.75, 2.5),
            Vec3::new(3.999, 0.001, 2.0),
        ] {
            let want = 2.0 * p.x + 3.0 * p.y - p.z + 1.0;
            assert!(
                (trilinear(&m, &d, p) - want).abs() < 1e-4,
                "at {p}: {} vs {want}",
                trilinear(&m, &d, p)
            );
        }
    }

    #[test]
    fn trilinear_clamps_outside_points() {
        let d = dims();
        let m = linear_field(&d);
        // Far outside: clamps to the nearest corner value.
        let corner = m[d.linear(4, 4, 0)];
        let got = trilinear(&m, &d, Vec3::new(100.0, 100.0, -50.0));
        assert!((got - corner).abs() < 1e-4);
    }

    #[test]
    fn gridset_layout() {
        let mut gs = GridSet::empty(dims());
        assert_eq!(gs.data.len(), NUM_MAPS * 125);
        gs.map_mut(3)[7] = 42.0;
        assert_eq!(gs.map(3)[7], 42.0);
        assert_eq!(gs.data[3 * 125 + 7], 42.0);
        assert_eq!(gs.bytes(), NUM_MAPS * 125 * 4);
    }

    #[test]
    fn sample_uses_map_slot() {
        let d = dims();
        let mut gs = GridSet::empty(d);
        gs.built[0] = true;
        for v in gs.map_mut(0) {
            *v = 5.0;
        }
        assert_eq!(gs.sample(0, Vec3::new(2.0, 2.0, 2.0)), 5.0);
    }
}
