//! Grid geometry: extents, spacing, and index arithmetic shared by the
//! scalar sampler and the SIMD inter-energy kernel.

use mudock_mol::Vec3;

/// Default AutoGrid spacing (Å).
pub const DEFAULT_SPACING: f32 = 0.375;

/// Geometry of a 3-D interaction grid. Point `(ix, iy, iz)` sits at
/// `origin + (ix, iy, iz) * spacing`; the linear index runs x-fastest so a
/// row of x-points is contiguous (vectorizable).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridDims {
    /// Points along x, y, z.
    pub npts: [u32; 3],
    /// Point spacing (Å).
    pub spacing: f32,
    /// Position of point (0, 0, 0).
    pub origin: Vec3,
}

impl GridDims {
    /// Grid centered at `center` spanning at least `half_extent` Å in every
    /// direction from it.
    pub fn centered(center: Vec3, half_extent: f32, spacing: f32) -> GridDims {
        assert!(spacing > 0.0, "spacing must be positive");
        assert!(half_extent > 0.0, "half extent must be positive");
        let half_pts = (half_extent / spacing).ceil() as u32;
        let npts = 2 * half_pts + 1;
        let origin = center - Vec3::new(1.0, 1.0, 1.0) * (half_pts as f32 * spacing);
        GridDims {
            npts: [npts, npts, npts],
            spacing,
            origin,
        }
    }

    /// Total number of points in one map.
    #[inline]
    pub fn total(&self) -> usize {
        self.npts[0] as usize * self.npts[1] as usize * self.npts[2] as usize
    }

    /// Linear index of point `(ix, iy, iz)` (x fastest).
    #[inline(always)]
    pub fn linear(&self, ix: u32, iy: u32, iz: u32) -> usize {
        ((iz as usize * self.npts[1] as usize) + iy as usize) * self.npts[0] as usize + ix as usize
    }

    /// Cartesian position of a grid point.
    #[inline]
    pub fn point(&self, ix: u32, iy: u32, iz: u32) -> Vec3 {
        self.origin
            + Vec3::new(
                ix as f32 * self.spacing,
                iy as f32 * self.spacing,
                iz as f32 * self.spacing,
            )
    }

    /// Far corner of the grid (last point).
    #[inline]
    pub fn max_corner(&self) -> Vec3 {
        self.point(self.npts[0] - 1, self.npts[1] - 1, self.npts[2] - 1)
    }

    /// Position in fractional grid units (continuous index space).
    #[inline(always)]
    pub fn to_grid_units(&self, p: Vec3) -> Vec3 {
        (p - self.origin) / self.spacing
    }

    /// Is `p` inside the sampled volume (every trilinear corner valid)?
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        let g = self.to_grid_units(p);
        g.x >= 0.0
            && g.y >= 0.0
            && g.z >= 0.0
            && g.x <= (self.npts[0] - 1) as f32
            && g.y <= (self.npts[1] - 1) as f32
            && g.z <= (self.npts[2] - 1) as f32
    }

    /// Distance (Å) from `p` to the grid box, 0 if inside — drives the
    /// out-of-box penalty that keeps poses inside the sampled region.
    #[inline]
    pub fn distance_outside(&self, p: Vec3) -> f32 {
        let lo = self.origin;
        let hi = self.max_corner();
        let dx = (lo.x - p.x).max(0.0) + (p.x - hi.x).max(0.0);
        let dy = (lo.y - p.y).max(0.0) + (p.y - hi.y).max(0.0);
        let dz = (lo.z - p.z).max(0.0) + (p.z - hi.z).max(0.0);
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_covers_extent() {
        let d = GridDims::centered(Vec3::new(1.0, 2.0, 3.0), 10.0, 0.375);
        assert!(d.npts[0] % 2 == 1, "odd point count keeps center on-grid");
        let mid = (d.npts[0] - 1) / 2;
        let c = d.point(mid, mid, mid);
        assert!((c - Vec3::new(1.0, 2.0, 3.0)).norm() < 1e-4);
        // Extent at least requested.
        assert!((d.max_corner().x - 1.0) >= 10.0 - 1e-4);
    }

    #[test]
    fn linear_index_is_x_fastest() {
        let d = GridDims {
            npts: [4, 3, 2],
            spacing: 1.0,
            origin: Vec3::ZERO,
        };
        assert_eq!(d.linear(0, 0, 0), 0);
        assert_eq!(d.linear(1, 0, 0), 1);
        assert_eq!(d.linear(0, 1, 0), 4);
        assert_eq!(d.linear(0, 0, 1), 12);
        assert_eq!(d.linear(3, 2, 1), 23);
        assert_eq!(d.total(), 24);
    }

    #[test]
    fn containment_and_outside_distance() {
        let d = GridDims {
            npts: [11, 11, 11],
            spacing: 1.0,
            origin: Vec3::ZERO,
        };
        assert!(d.contains(Vec3::new(5.0, 5.0, 5.0)));
        assert!(d.contains(Vec3::new(0.0, 0.0, 0.0)));
        assert!(d.contains(Vec3::new(10.0, 10.0, 10.0)));
        assert!(!d.contains(Vec3::new(10.1, 5.0, 5.0)));
        assert_eq!(d.distance_outside(Vec3::new(5.0, 5.0, 5.0)), 0.0);
        assert!((d.distance_outside(Vec3::new(13.0, 5.0, 5.0)) - 3.0).abs() < 1e-5);
        assert!((d.distance_outside(Vec3::new(-3.0, -4.0, 5.0)) - 5.0).abs() < 1e-5);
    }

    #[test]
    fn grid_units_roundtrip() {
        let d = GridDims::centered(Vec3::new(0.0, 0.0, 0.0), 5.0, 0.5);
        let p = Vec3::new(1.3, -2.1, 0.7);
        let g = d.to_grid_units(p);
        let back = d.origin + g * d.spacing;
        assert!((back - p).norm() < 1e-5);
    }
}
