//! AutoGrid-style map precomputation (scalar reference + SIMD builders).
//!
//! For every grid point the builder accumulates, over all receptor atoms:
//!
//! * per probe-type maps: vdW/H-bond 12-6/12-10 energy plus the
//!   type-dependent half of the desolvation term;
//! * an electrostatic map per unit probe charge;
//! * a desolvation map per unit |probe charge| (the charge-dependent half).
//!
//! This is the memoization/gridification step of the paper's Section V: at
//! docking time the inter-energy of a pose reduces to table lookups.
//!
//! The SIMD builder vectorizes over *receptor atoms* (structure-of-arrays,
//! padded), computing each point's sums with full-width arithmetic and a
//! final horizontal reduction.

use mudock_ff::params::{weights, PairTable, QSOLPAR};
use mudock_ff::terms;
use mudock_ff::types::AtomType;
use mudock_ff::vterms;
use mudock_mol::{padded_len, Molecule, Vec3, PAD_COORD};
use mudock_simd::{dispatch, math, Simd, SimdLevel};

use crate::dims::GridDims;
use crate::map::{GridSet, DESOLV_MAP, ELEC_MAP};

/// Per-probe-type coefficient arrays over the receptor atoms (padded).
struct TypeCoef {
    c12: Vec<f32>,
    c6: Vec<f32>,
    c10: Vec<f32>,
    rij: Vec<f32>,
    /// Weighted full desolvation coefficient `W_d(S_t·V_j + S_j·V_t)`.
    sv: Vec<f32>,
}

/// Receptor data flattened for the builder kernels.
struct ReceptorTables {
    x: Vec<f32>,
    y: Vec<f32>,
    z: Vec<f32>,
    /// Electrostatic coefficient `W_e·332.06·q_j` (padded 0).
    qv: Vec<f32>,
    /// Charge-dependent desolvation coefficient `W_d·0.01097·V_j` (padded 0).
    dv: Vec<f32>,
    per_type: Vec<TypeCoef>,
}

impl ReceptorTables {
    fn new(receptor: &Molecule, types: &[AtomType], table: &PairTable) -> ReceptorTables {
        let n = receptor.atoms.len();
        let len = padded_len(n.max(1));
        let mut t = ReceptorTables {
            x: vec![PAD_COORD; len],
            y: vec![PAD_COORD; len],
            z: vec![PAD_COORD; len],
            qv: vec![0.0; len],
            dv: vec![0.0; len],
            per_type: Vec::with_capacity(types.len()),
        };
        for (j, a) in receptor.atoms.iter().enumerate() {
            t.x[j] = a.pos.x;
            t.y[j] = a.pos.y;
            t.z[j] = a.pos.z;
            t.qv[j] = vterms::premult::qq(1.0, a.charge);
            t.dv[j] = weights::DESOLV * QSOLPAR * mudock_ff::params::type_params(a.ty).vol;
        }
        for &ty in types {
            let pt = mudock_ff::params::type_params(ty);
            let mut c = TypeCoef {
                c12: vec![0.0; len],
                c6: vec![0.0; len],
                c10: vec![0.0; len],
                rij: vec![1.0; len],
                sv: vec![0.0; len],
            };
            for (j, a) in receptor.atoms.iter().enumerate() {
                let k = PairTable::index(ty, a.ty);
                c.c12[j] = table.c12[k];
                c.c6[j] = table.c6[k];
                c.c10[j] = table.c10[k];
                c.rij[j] = table.rij[k];
                let sj = terms::solvation_param(a.ty, a.charge);
                let vj = mudock_ff::params::type_params(a.ty).vol;
                c.sv[j] = weights::DESOLV * (pt.solpar * vj + sj * pt.vol);
            }
            t.per_type.push(c);
        }
        t
    }
}

/// Configurable grid-set builder.
pub struct GridBuilder<'a> {
    receptor: &'a Molecule,
    dims: GridDims,
    types: Vec<AtomType>,
    cutoff: f32,
}

impl<'a> GridBuilder<'a> {
    /// Build maps for all 14 atom types by default.
    pub fn new(receptor: &'a Molecule, dims: GridDims) -> GridBuilder<'a> {
        GridBuilder {
            receptor,
            dims,
            types: AtomType::ALL.to_vec(),
            cutoff: mudock_ff::params::NB_CUTOFF,
        }
    }

    /// Restrict to the type maps actually needed (AutoGrid is told the
    /// ligand types up front; building fewer maps is much cheaper).
    pub fn with_types(mut self, types: &[AtomType]) -> Self {
        let mut ts = types.to_vec();
        ts.sort_unstable();
        ts.dedup();
        self.types = ts;
        self
    }

    /// Override the short-range (vdW/desolvation) cutoff.
    pub fn with_cutoff(mut self, cutoff: f32) -> Self {
        assert!(cutoff > 0.0);
        self.cutoff = cutoff;
        self
    }

    /// Scalar reference build.
    pub fn build_scalar(&self) -> GridSet {
        let table = PairTable::new();
        let mut gs = GridSet::empty(self.dims);
        let [nx, ny, nz] = self.dims.npts;
        let cutoff = self.cutoff;
        let atoms = &self.receptor.atoms;

        // Pre-resolve per-atom solvation data once.
        let sj: Vec<f32> = atoms
            .iter()
            .map(|a| terms::solvation_param(a.ty, a.charge))
            .collect();
        let vj: Vec<f32> = atoms
            .iter()
            .map(|a| mudock_ff::params::type_params(a.ty).vol)
            .collect();

        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let p = self.dims.point(ix, iy, iz);
                    let cell = self.dims.linear(ix, iy, iz);
                    let mut elec = 0.0f32;
                    let mut des = 0.0f32;
                    for (j, a) in atoms.iter().enumerate() {
                        let r = p.distance(a.pos);
                        elec += terms::electrostatic(1.0, a.charge, r);
                        if r <= cutoff {
                            let g = (-(r * r)
                                / (2.0
                                    * mudock_ff::params::DESOLV_SIGMA
                                    * mudock_ff::params::DESOLV_SIGMA))
                                .exp();
                            des += weights::DESOLV * QSOLPAR * vj[j] * g;
                            for ty in &self.types {
                                let pt = mudock_ff::params::type_params(*ty);
                                let k = PairTable::index(*ty, a.ty);
                                let e = terms::vdw_hbond(&table, k, r)
                                    + weights::DESOLV * (pt.solpar * vj[j] + sj[j] * pt.vol) * g;
                                let s = gs.stride();
                                gs.data[ty.idx() * s + cell] += e;
                            }
                        }
                    }
                    let s = gs.stride();
                    gs.data[ELEC_MAP * s + cell] = elec;
                    gs.data[DESOLV_MAP * s + cell] = des;
                }
            }
        }
        for ty in &self.types {
            gs.built[ty.idx()] = true;
        }
        gs.built[ELEC_MAP] = true;
        gs.built[DESOLV_MAP] = true;
        gs
    }

    /// SIMD build at the requested level (vectorizes over receptor atoms).
    pub fn build_simd(&self, level: SimdLevel) -> GridSet {
        let table = PairTable::new();
        let tables = ReceptorTables::new(self.receptor, &self.types, &table);
        let mut gs = GridSet::empty(self.dims);
        let [nx, ny, nz] = self.dims.npts;
        let cutoff2 = self.cutoff * self.cutoff;
        let stride = gs.stride();

        // One pass over points; all per-point sums computed vector-wide.
        let n_types = self.types.len();
        let mut sums = vec![0.0f32; n_types + 2];
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let p = self.dims.point(ix, iy, iz);
                    let cell = self.dims.linear(ix, iy, iz);
                    dispatch!(level, |s| point_sums(s, &tables, p, cutoff2, &mut sums));
                    for (ti, ty) in self.types.iter().enumerate() {
                        gs.data[ty.idx() * stride + cell] = sums[ti];
                    }
                    gs.data[ELEC_MAP * stride + cell] = sums[n_types];
                    gs.data[DESOLV_MAP * stride + cell] = sums[n_types + 1];
                }
            }
        }
        for ty in &self.types {
            gs.built[ty.idx()] = true;
        }
        gs.built[ELEC_MAP] = true;
        gs.built[DESOLV_MAP] = true;
        gs
    }
}

/// Vector-wide accumulation of every map's value at one grid point.
/// `sums` receives `[type_0, …, type_{n-1}, elec, desolv]`.
#[inline(always)]
fn point_sums<S: Simd>(s: S, t: &ReceptorTables, p: Vec3, cutoff2: f32, sums: &mut [f32]) {
    let px = s.splat(p.x);
    let py = s.splat(p.y);
    let pz = s.splat(p.z);
    let vcut2 = s.splat(cutoff2);
    let zero = s.zero();

    let n_types = t.per_type.len();
    debug_assert_eq!(sums.len(), n_types + 2);

    let mut elec_acc = s.zero();
    let mut des_acc = s.zero();
    // Per-type accumulators: bounded small (≤ 14); stack array avoids
    // allocation in the hot loop.
    let mut type_acc = [s.zero(); mudock_ff::types::NUM_TYPES];

    let len = t.x.len();
    let mut j = 0;
    while j < len {
        let dx = s.sub(s.load(&t.x[j..]), px);
        let dy = s.sub(s.load(&t.y[j..]), py);
        let dz = s.sub(s.load(&t.z[j..]), pz);
        let r2 = s.mul_add(dz, dz, s.mul_add(dy, dy, s.mul(dx, dx)));
        let r = s.sqrt(r2);

        // Electrostatics: no cutoff (padding lanes have qv = 0).
        let r_cl = s.max(r, s.splat(terms::RMIN));
        let denom = s.mul(vterms::dielectric(s, r_cl), r_cl);
        elec_acc = s.mul_add(s.load(&t.qv[j..]), math::recip_nr(s, denom), elec_acc);

        // Short-range terms, masked by the cutoff.
        let in_cut = s.le(r2, vcut2);
        if s.any(in_cut) {
            let g = vterms::desolv_gauss(s, r2);
            let des = s.mul(s.load(&t.dv[j..]), g);
            des_acc = s.add(des_acc, s.select(in_cut, des, zero));
            for (ti, tc) in t.per_type.iter().enumerate() {
                let e = vterms::vdw_hbond(
                    s,
                    r,
                    s.load(&tc.rij[j..]),
                    s.load(&tc.c12[j..]),
                    s.load(&tc.c6[j..]),
                    s.load(&tc.c10[j..]),
                );
                let e = s.mul_add(s.load(&tc.sv[j..]), g, e);
                type_acc[ti] = s.add(type_acc[ti], s.select(in_cut, e, zero));
            }
        }
        j += S::LANES;
    }

    for ti in 0..n_types {
        sums[ti] = s.reduce_add(type_acc[ti]);
    }
    sums[n_types] = s.reduce_add(elec_acc);
    sums[n_types + 1] = s.reduce_add(des_acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_mol::Atom;

    fn tiny_receptor() -> Molecule {
        let mut m = Molecule::new("tiny");
        m.atoms
            .push(Atom::new(Vec3::new(0.0, 0.0, 0.0), AtomType::OA, -0.4));
        m.atoms
            .push(Atom::new(Vec3::new(1.5, 0.0, 0.0), AtomType::C, 0.1));
        m.atoms
            .push(Atom::new(Vec3::new(0.0, 1.5, 0.0), AtomType::HD, 0.3));
        m.atoms
            .push(Atom::new(Vec3::new(0.0, 0.0, 1.5), AtomType::N, -0.2));
        m
    }

    fn tiny_dims() -> GridDims {
        GridDims::centered(Vec3::new(0.5, 0.5, 0.5), 3.0, 0.75)
    }

    #[test]
    fn scalar_build_marks_built_maps() {
        let r = tiny_receptor();
        let gs = GridBuilder::new(&r, tiny_dims())
            .with_types(&[AtomType::C, AtomType::HD])
            .build_scalar();
        assert!(gs.built[AtomType::C.idx()]);
        assert!(gs.built[AtomType::HD.idx()]);
        assert!(!gs.built[AtomType::Br.idx()]);
        assert!(gs.built[ELEC_MAP]);
        assert!(gs.built[DESOLV_MAP]);
    }

    #[test]
    fn repulsive_near_receptor_atoms() {
        // A carbon probe sitting on top of a receptor atom sees a huge
        // positive vdW energy; far corners are mildly attractive/near zero.
        let r = tiny_receptor();
        let gs = GridBuilder::new(&r, tiny_dims())
            .with_types(&[AtomType::C])
            .build_scalar();
        let on_atom = gs.sample(AtomType::C.idx(), Vec3::new(0.0, 0.0, 0.0));
        assert!(on_atom > 100.0, "on-atom energy {on_atom}");
        let far = gs.sample(AtomType::C.idx(), Vec3::new(3.0, 3.0, 3.0));
        assert!(far < 1.0, "far energy {far}");
    }

    #[test]
    fn elec_map_sign_follows_receptor_charge() {
        // Net receptor charge here is -0.2; a positive unit probe near the
        // OA (q = -0.4) should see negative potential.
        let r = tiny_receptor();
        let gs = GridBuilder::new(&r, tiny_dims())
            .with_types(&[AtomType::C])
            .build_scalar();
        let near_oa = gs.sample(ELEC_MAP, Vec3::new(-0.7, -0.7, 0.0));
        assert!(near_oa < 0.0, "elec near OA = {near_oa}");
    }

    #[test]
    fn simd_build_matches_scalar_all_levels() {
        let r = tiny_receptor();
        let builder = GridBuilder::new(&r, tiny_dims()).with_types(&[
            AtomType::C,
            AtomType::OA,
            AtomType::HD,
        ]);
        let reference = builder.build_scalar();
        for level in SimdLevel::available() {
            let got = builder.build_simd(level);
            let mut worst = 0.0f32;
            for (a, b) in reference.data.iter().zip(&got.data) {
                let err = (a - b).abs() / a.abs().max(1.0);
                worst = worst.max(err);
            }
            assert!(
                worst < 2e-3,
                "{level}: worst relative map deviation {worst}"
            );
        }
    }

    #[test]
    fn desolv_map_positive_and_decaying() {
        let r = tiny_receptor();
        let gs = GridBuilder::new(&r, tiny_dims())
            .with_types(&[AtomType::C])
            .build_scalar();
        let near = gs.sample(DESOLV_MAP, Vec3::new(0.2, 0.2, 0.2));
        let far = gs.sample(DESOLV_MAP, Vec3::new(3.2, 3.2, 3.2));
        assert!(near > 0.0);
        assert!(far < near);
    }

    #[test]
    fn empty_receptor_builds_zero_maps() {
        let m = Molecule::new("empty");
        let gs = GridBuilder::new(&m, tiny_dims())
            .with_types(&[AtomType::C])
            .build_simd(SimdLevel::detect());
        assert!(gs.data.iter().all(|&v| v == 0.0));
    }
}
