//! # mudock-grids — AutoGrid substrate
//!
//! AutoDock never evaluates ligand–receptor atom pairs directly during
//! docking: AutoGrid precomputes, for each ligand atom *type*, a 3-D map of
//! interaction energies on a lattice around the binding site, plus an
//! electrostatic and a desolvation map. Scoring a pose then costs one
//! trilinear lookup per atom per map — turning the inter-energy loop into
//! the memory-bound "lookups into large constant data structures" pattern
//! the paper studies (Section V).
//!
//! This crate provides:
//!
//! * [`GridDims`] — lattice geometry and index arithmetic;
//! * [`GridSet`] — all maps in one contiguous, gather-friendly buffer;
//! * [`GridBuilder`] — AutoGrid-equivalent precomputation with a scalar
//!   reference path and SIMD paths at every [`SimdLevel`];
//! * [`trilinear`] — the scalar sampling reference used to validate the
//!   vectorized inter-energy kernel in `mudock-core`.
//!
//! ```
//! use mudock_grids::{GridBuilder, GridDims};
//! use mudock_mol::{Atom, Molecule, Vec3};
//! use mudock_ff::types::AtomType;
//!
//! let mut receptor = Molecule::new("pocket");
//! receptor.atoms.push(Atom::new(Vec3::ZERO, AtomType::OA, -0.4));
//! let dims = GridDims::centered(Vec3::ZERO, 4.0, 0.5);
//! let maps = GridBuilder::new(&receptor, dims)
//!     .with_types(&[AtomType::C])
//!     .build_scalar();
//! // A carbon probe at the C–OA equilibrium distance (3.6 Å) sits in the
//! // van der Waals well; on top of the oxygen it is strongly repelled.
//! let at_well = maps.sample(AtomType::C.idx(), Vec3::new(3.6, 0.0, 0.0));
//! let on_atom = maps.sample(AtomType::C.idx(), Vec3::ZERO);
//! assert!(at_well < 0.5 && on_atom > 100.0);
//! ```

pub mod build;
pub mod dims;
pub mod hash;
pub mod io;
pub mod map;

pub use build::GridBuilder;
pub use dims::{GridDims, DEFAULT_SPACING};
pub use hash::{dims_fingerprint, grid_cache_key, receptor_fingerprint, Fnv64};
pub use io::{load as load_grids, save as save_grids, GridIoError};
pub use map::{trilinear, GridSet, DESOLV_MAP, ELEC_MAP, NUM_MAPS};

pub use mudock_simd::SimdLevel;
