//! # mudock-pool — work-stealing parallelism for ligand batches
//!
//! The paper parallelizes muDock across *inputs* ("we can compute more
//! inputs in parallel rather than parallelize the computation of a single
//! input", Section IV) with pthreads and a trivial work-stealing scheme.
//! This crate reproduces that scheme on `crossbeam-deque`:
//!
//! * every task is one ligand (coarse-grained, no synchronization inside);
//! * workers drain a shared injector, then steal from each other;
//! * results land in pre-allocated per-index slots, so no ordering pass is
//!   needed afterwards.
//!
//! Thread affinity (the paper pins threads to cores to avoid NUMA effects)
//! is intentionally not reproduced: it needs privileged syscalls that add
//! nothing on the 2-core CI hosts this reproduction targets — see
//! DESIGN.md §4.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// Per-worker ("shard") scheduling counters from one parallel run — the
/// observability `mudock-serve` uses to verify concurrent jobs share the
/// node fairly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Tasks this worker executed.
    pub executed: usize,
    /// Of those, tasks stolen from a sibling's deque.
    pub steals: usize,
}

/// Scheduling statistics from one parallel run (observability for tests
/// and the bench harness).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed in total.
    pub executed: usize,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the parallel region (spawn to join). Merged runs
    /// accumulate, so `executed as f64 / elapsed.as_secs_f64()` is a
    /// tasks-per-second rate across every region merged in.
    pub elapsed: Duration,
    /// Per-worker breakdown (`shards.len() == threads`).
    pub shards: Vec<ShardStats>,
}

impl PoolStats {
    /// Smallest / largest per-shard task count — a quick imbalance probe.
    pub fn shard_spread(&self) -> (usize, usize) {
        let max = self.shards.iter().map(|s| s.executed).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.executed).min().unwrap_or(0);
        (min, max)
    }

    /// Merge counters from another run (shards append).
    pub fn merge(&mut self, other: &PoolStats) {
        self.executed += other.executed;
        self.steals += other.steals;
        self.threads = self.threads.max(other.threads);
        self.elapsed += other.elapsed;
        self.shards.extend_from_slice(&other.shards);
    }
}

/// Number of worker threads to use by default: the `MUDOCK_THREADS`
/// environment variable if set (for reproducible CI and benchmark runs),
/// capped at the host's available parallelism; otherwise all of it.
pub fn default_threads() -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var("MUDOCK_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n.min(available),
        _ => available,
    }
}

/// Apply `f` to every item of `items` on `threads` workers with work
/// stealing; returns the results in input order plus scheduling stats.
///
/// `f` receives `(index, &item)`. Tasks are independent (the
/// embarrassingly-parallel docking workload), so no ordering between them
/// is guaranteed — only the result placement is.
pub fn parallel_map_stats<T, R, F>(items: &[T], threads: usize, f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    let t0 = Instant::now();

    if n == 0 {
        return (
            Vec::new(),
            PoolStats {
                executed: 0,
                steals: 0,
                threads,
                elapsed: Duration::ZERO,
                shards: vec![ShardStats::default(); threads],
            },
        );
    }

    // Single-threaded fast path keeps tests deterministic and cheap.
    if threads == 1 || n == 1 {
        let results: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        return (
            results,
            PoolStats {
                executed: n,
                steals: 0,
                threads: 1,
                elapsed: t0.elapsed(),
                shards: vec![ShardStats {
                    executed: n,
                    steals: 0,
                }],
            },
        );
    }

    let shard_executed: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let shard_steals: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();

    let injector: Injector<usize> = Injector::new();
    for i in 0..n {
        injector.push(i);
    }

    let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(|w| w.stealer()).collect();

    // Results flow back over a channel (requires only `R: Send`) and are
    // re-placed by index afterwards.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();

    std::thread::scope(|scope| {
        for (wid, local) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let steals = &shard_steals[wid];
            let executed = &shard_executed[wid];
            let f = &f;
            let tx = tx.clone();
            scope.spawn(move || loop {
                let task = find_task(&local, injector, stealers, wid, steals);
                match task {
                    Some(i) => {
                        let r = f(i, &items[i]);
                        executed.fetch_add(1, Ordering::Relaxed);
                        tx.send((i, r)).expect("receiver outlives the scope");
                    }
                    None => break,
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx.iter() {
        debug_assert!(slots[i].is_none(), "task {i} executed twice");
        slots[i] = Some(r);
    }
    let results: Vec<R> = slots
        .into_iter()
        .map(|s| s.expect("every task produced a result"))
        .collect();
    let shards: Vec<ShardStats> = shard_executed
        .iter()
        .zip(&shard_steals)
        .map(|(e, s)| ShardStats {
            executed: e.load(Ordering::Relaxed),
            steals: s.load(Ordering::Relaxed),
        })
        .collect();
    let stats = PoolStats {
        executed: shards.iter().map(|s| s.executed).sum(),
        steals: shards.iter().map(|s| s.steals).sum(),
        threads,
        elapsed: t0.elapsed(),
        shards,
    };
    (results, stats)
}

/// Task acquisition order: local deque → global injector (batch) →
/// steal from a sibling. Returns `None` when everything is drained.
fn find_task(
    local: &Worker<usize>,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
    wid: usize,
    steal_count: &AtomicUsize,
) -> Option<usize> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    // Steal from siblings; retry while any stealer reports contention.
    loop {
        let mut retry = false;
        for (sid, st) in stealers.iter().enumerate() {
            if sid == wid {
                continue;
            }
            match st.steal() {
                Steal::Success(t) => {
                    steal_count.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// [`parallel_map_stats`] without the statistics.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_stats(items, threads, f).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let (r, stats) = parallel_map_stats(&[] as &[u32], 4, |_, x| *x);
        assert!(r.is_empty());
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn preserves_order_single_thread() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 1, |_, x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_order_multi_thread() {
        let items: Vec<u64> = (0..1000).collect();
        let (out, stats) = parallel_map_stats(&items, 4, |i, x| {
            assert_eq!(i as u64, *x);
            x * x
        });
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
        assert_eq!(stats.executed, 1000);
        assert_eq!(stats.threads, 4);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Skewed task costs: every task must still execute exactly once and
        // land in its own slot.
        let items: Vec<u32> = (0..200).collect();
        let (out, stats) = parallel_map_stats(&items, 3, |_, &x| {
            let mut acc = 0u64;
            let reps = if x % 10 == 0 { 200_000 } else { 100 };
            for i in 0..reps {
                acc = acc.wrapping_add(i).rotate_left(1);
            }
            (acc, x)
        });
        assert_eq!(stats.executed, 200);
        assert!(out.iter().enumerate().all(|(i, (_, x))| *x == i as u32));
    }

    #[test]
    fn more_threads_than_tasks() {
        let items = vec![1u32, 2, 3];
        let out = parallel_map(&items, 16, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    /// Serializes every test that touches `MUDOCK_THREADS`: the test
    /// harness runs tests on multiple threads, and concurrent
    /// setenv/getenv is a data race.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn default_threads_positive() {
        let _env = ENV_LOCK.lock().unwrap();
        assert!(default_threads() >= 1);
    }

    #[test]
    fn default_threads_honors_env_override() {
        // Owns the process-wide env while it runs; restore afterwards.
        let _env = ENV_LOCK.lock().unwrap();
        let saved = std::env::var("MUDOCK_THREADS").ok();
        std::env::set_var("MUDOCK_THREADS", "1");
        assert_eq!(default_threads(), 1);
        std::env::set_var("MUDOCK_THREADS", "1000000");
        let capped = default_threads();
        assert!(
            capped
                <= std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
        );
        std::env::set_var("MUDOCK_THREADS", "not-a-number");
        assert!(default_threads() >= 1);
        std::env::set_var("MUDOCK_THREADS", "0");
        assert!(default_threads() >= 1);
        match saved {
            Some(v) => std::env::set_var("MUDOCK_THREADS", v),
            None => std::env::remove_var("MUDOCK_THREADS"),
        }
    }

    #[test]
    fn ordering_preserved_under_forced_stealing() {
        // One pathologically slow task at index 0 pins a worker; the
        // remaining fast tasks get redistributed by stealing. Results
        // must still land in input order, and the shard breakdown must
        // account for every task exactly once.
        let items: Vec<u32> = (0..500).collect();
        let (out, stats) = parallel_map_stats(&items, 4, |i, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            (i, x.wrapping_mul(3))
        });
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx, i, "slot {i} holds task {idx}");
            assert_eq!(v, (i as u32).wrapping_mul(3));
        }
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.shards.iter().map(|s| s.executed).sum::<usize>(), 500);
        assert_eq!(stats.executed, 500);
        assert_eq!(
            stats.steals,
            stats.shards.iter().map(|s| s.steals).sum::<usize>()
        );
        // The slow worker cannot have run the whole batch.
        let (_, max) = stats.shard_spread();
        assert!(max < 500, "one shard executed everything: no parallelism");
    }

    #[test]
    fn shard_stats_cover_fast_paths() {
        let (_, empty) = parallel_map_stats(&[] as &[u8], 3, |_, &x| x);
        assert_eq!(empty.shards.len(), 3);
        assert_eq!(empty.executed, 0);

        let (_, single) = parallel_map_stats(&[7u8], 3, |_, &x| x);
        assert_eq!(single.shards.len(), 1);
        assert_eq!(single.shards[0].executed, 1);
    }

    #[test]
    fn results_not_copied_types() {
        // Works with non-Copy results (e.g. per-ligand docking reports).
        let items = vec!["a", "bb", "ccc"];
        let out = parallel_map(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:bb", "2:ccc"]);
    }
}
