//! Criterion: the pose transform (Algorithm 1) across backends.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mudock_core::transform::{apply_pose_reference, apply_pose_simd};
use mudock_core::{Genotype, LigandPrep};
use mudock_mol::{ConformSoA, Vec3};
use mudock_simd::SimdLevel;

fn bench_transform(c: &mut Criterion) {
    let lig = mudock_molio::synthetic_ligand(
        13,
        mudock_molio::LigandSpec {
            heavy_atoms: 35,
            torsions: 8,
        },
    );
    let prep = LigandPrep::new(lig).unwrap();
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    let g_pose = Genotype::random(&mut rng, prep.n_torsions(), Vec3::ZERO, 5.0);
    let mut out = ConformSoA::with_capacity(prep.base.n);
    let mut g = c.benchmark_group("transform");
    g.throughput(Throughput::Elements(prep.base.n as u64));
    g.bench_function("reference", |b| {
        b.iter(|| {
            apply_pose_reference(&prep.base, &prep.plans, &g_pose, &mut out);
            criterion::black_box(&mut out);
        })
    });
    for level in SimdLevel::available() {
        g.bench_with_input(
            BenchmarkId::new("simd", level.name()),
            &level,
            |b, &level| {
                b.iter(|| {
                    apply_pose_simd(level, &prep.base, &prep.plans, &g_pose, &mut out);
                    criterion::black_box(&mut out);
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(1200)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_transform
}
criterion_main!(benches);
