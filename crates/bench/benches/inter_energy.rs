//! Criterion: the memory-bound inter-energy kernel (grid lookups) across
//! backends.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mudock_bench::HostWorkload;
use mudock_core::scoring::{inter_energy_reference, inter_energy_simd};
use mudock_mol::ConformSoA;
use mudock_simd::SimdLevel;

fn bench_inter(c: &mut Criterion) {
    let wl = HostWorkload::standard(1);
    let conf = ConformSoA::from_molecule(&wl.prep.mol);
    let st = &wl.prep.statics;
    let mut g = c.benchmark_group("inter_energy");
    g.throughput(Throughput::Elements(conf.n as u64));
    g.bench_function("reference-trilinear", |b| {
        b.iter(|| criterion::black_box(inter_energy_reference(&wl.grids, &conf, st)))
    });
    for level in SimdLevel::available() {
        g.bench_with_input(
            BenchmarkId::new("simd", level.name()),
            &level,
            |b, &level| {
                b.iter(|| criterion::black_box(inter_energy_simd(level, &wl.grids, &conf, st)))
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(1200)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_inter
}
criterion_main!(benches);
