//! Criterion: a full GA generation (scoring a population) per backend —
//! the per-generation unit of Figure 2's execution times.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mudock_bench::HostWorkload;
use mudock_core::{Backend, DockingEngine};
use mudock_mol::ConformSoA;

fn bench_generation(c: &mut Criterion) {
    let wl = HostWorkload::standard(50);
    let engine = DockingEngine::new(&wl.grids).unwrap();
    let mut scratch = ConformSoA::with_capacity(wl.prep.base.n);
    let mut g = c.benchmark_group("ga_generation");
    g.throughput(Throughput::Elements(wl.poses.len() as u64));
    for backend in Backend::available() {
        g.bench_with_input(
            BenchmarkId::new("score_population", backend.name()),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let mut total = 0.0f32;
                    for pose in &wl.poses {
                        total += engine.score(&wl.prep, pose, &mut scratch, backend);
                    }
                    criterion::black_box(total)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_millis(1500)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_generation
}
criterion_main!(benches);
