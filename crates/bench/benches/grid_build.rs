//! Criterion: AutoGrid-style map precomputation, scalar vs SIMD builders.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mudock_ff::AtomType;
use mudock_grids::{GridBuilder, GridDims};
use mudock_mol::Vec3;
use mudock_simd::SimdLevel;

fn bench_build(c: &mut Criterion) {
    let receptor = mudock_molio::synthetic_receptor(3, 180, 8.5);
    let dims = GridDims::centered(Vec3::ZERO, 6.0, 0.75);
    let types = [AtomType::C, AtomType::OA, AtomType::HD, AtomType::N];
    let mut g = c.benchmark_group("grid_build");
    g.throughput(Throughput::Elements(dims.total() as u64));
    g.bench_function("scalar", |b| {
        b.iter(|| {
            let gs = GridBuilder::new(&receptor, dims)
                .with_types(&types)
                .build_scalar();
            criterion::black_box(gs.data.len())
        })
    });
    for level in SimdLevel::available() {
        g.bench_with_input(
            BenchmarkId::new("simd", level.name()),
            &level,
            |b, &level| {
                b.iter(|| {
                    let gs = GridBuilder::new(&receptor, dims)
                        .with_types(&types)
                        .build_simd(level);
                    criterion::black_box(gs.data.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(2000)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_build
}
criterion_main!(benches);
