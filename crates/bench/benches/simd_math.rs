//! Criterion: vector math kernels (exp, rsqrt) per SIMD level — the
//! "vectorized math library" microbenchmark.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mudock_simd::{ops, SimdLevel};

fn bench_exp(c: &mut Criterion) {
    let n = 4096usize;
    let xs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.013) % 18.0 - 9.0).collect();
    let mut out = vec![0.0f32; n];
    let mut g = c.benchmark_group("exp");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("libm", |b| {
        b.iter(|| {
            for (o, &x) in out.iter_mut().zip(&xs) {
                *o = x.exp();
            }
            criterion::black_box(&mut out);
        })
    });
    for level in SimdLevel::available() {
        g.bench_with_input(
            BenchmarkId::new("poly", level.name()),
            &level,
            |b, &level| {
                b.iter(|| {
                    ops::exp_slice(level, &xs, &mut out);
                    criterion::black_box(&mut out);
                })
            },
        );
    }
    g.finish();
}

fn bench_rsqrt(c: &mut Criterion) {
    let n = 4096usize;
    let xs: Vec<f32> = (1..=n).map(|i| i as f32 * 0.37).collect();
    let mut out = vec![0.0f32; n];
    let mut g = c.benchmark_group("rsqrt");
    g.throughput(Throughput::Elements(n as u64));
    for level in SimdLevel::available() {
        g.bench_with_input(BenchmarkId::new("nr", level.name()), &level, |b, &level| {
            b.iter(|| {
                ops::rsqrt_slice(level, &xs, &mut out);
                criterion::black_box(&mut out);
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(1200)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_exp, bench_rsqrt
}
criterion_main!(benches);
