//! Criterion: the compute-bound intra-energy kernel (Algorithm 2, lines
//! 10–16) across backends.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mudock_core::scoring::{intra_energy_reference, intra_energy_simd, PairsSoA};
use mudock_core::LigandPrep;
use mudock_ff::params::PairTable;
use mudock_mol::ConformSoA;
use mudock_simd::SimdLevel;

fn bench_intra(c: &mut Criterion) {
    let lig = mudock_molio::synthetic_ligand(
        11,
        mudock_molio::LigandSpec {
            heavy_atoms: 35,
            torsions: 7,
        },
    );
    let prep = LigandPrep::new(lig).unwrap();
    let conf = ConformSoA::from_molecule(&prep.mol);
    let pairs = PairsSoA::build(&prep.mol, &prep.topo, &PairTable::new());
    let mut g = c.benchmark_group("intra_energy");
    g.throughput(Throughput::Elements(pairs.n as u64));
    g.bench_function("reference-libm", |b| {
        b.iter(|| criterion::black_box(intra_energy_reference(&conf, &pairs)))
    });
    for level in SimdLevel::available() {
        g.bench_with_input(
            BenchmarkId::new("simd", level.name()),
            &level,
            |b, &level| b.iter(|| criterion::black_box(intra_energy_simd(level, &conf, &pairs))),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(1200)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_intra
}
criterion_main!(benches);
