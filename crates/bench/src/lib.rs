//! # mudock-bench — the paper's evaluation harness
//!
//! One binary per table and figure of the CLUSTER 2025 paper (run them
//! all via `paper_all`), plus Criterion microbenchmarks and ablation
//! studies. Binaries print the same rows/series the paper reports and
//! drop CSV files under `results/`.
//!
//! Two kinds of numbers appear:
//!
//! * **host-measured** — real wall-clock measurements of the Rust kernels
//!   on this machine, across [`mudock_core::Backend`]s (the
//!   scalar-libm / auto-vectorizable / explicit-SIMD axis);
//! * **modeled** — cross-architecture estimates from
//!   [`mudock_archsim::Study`] for the five CPUs and seven compilers the
//!   paper tests (see DESIGN.md §3.2).

use std::time::Instant;

use mudock_core::{Backend, DockingEngine, Genotype, LigandPrep};
use mudock_grids::{GridBuilder, GridDims, GridSet};
use mudock_mol::{ConformSoA, Vec3};
use mudock_simd::SimdLevel;

pub mod fmt {
    //! Plain-text table / CSV / bar-chart formatting for the harness
    //! binaries.

    /// Render an aligned text table.
    pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: Vec<String>, widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(
            headers.iter().map(|s| s.to_string()).collect(),
            &widths,
        ));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in rows {
            out.push_str(&fmt_row(row.clone(), &widths));
            out.push('\n');
        }
        out
    }

    /// A simple ASCII bar for figure-like output.
    pub fn bar(value: f64, max: f64, width: usize) -> String {
        if max <= 0.0 || !value.is_finite() {
            return String::new();
        }
        let n = ((value / max) * width as f64)
            .round()
            .clamp(0.0, width as f64) as usize;
        "#".repeat(n)
    }

    /// Write a CSV file under `results/` (created on demand), returning
    /// its path.
    pub fn write_csv(
        name: &str,
        headers: &[&str],
        rows: &[Vec<String>],
    ) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(name);
        let mut text = headers.join(",");
        text.push('\n');
        for row in rows {
            text.push_str(&row.join(","));
            text.push('\n');
        }
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

/// A prepared single-complex scoring workload for host measurements:
/// grids + ligand prep + a fixed set of poses.
pub struct HostWorkload {
    pub grids: GridSet,
    pub prep: LigandPrep,
    pub poses: Vec<Genotype>,
}

impl HostWorkload {
    /// The 1a30-like complex with `n_poses` deterministic random poses.
    pub fn standard(n_poses: usize) -> HostWorkload {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (receptor, ligand) = mudock_molio::complex_1a30_like();
        let mut types: Vec<mudock_ff::AtomType> = ligand.atoms.iter().map(|a| a.ty).collect();
        types.sort_unstable();
        types.dedup();
        let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.55);
        let grids = GridBuilder::new(&receptor, dims)
            .with_types(&types)
            .build_simd(SimdLevel::detect());
        let prep = LigandPrep::new(ligand).expect("valid ligand");
        let mut rng = StdRng::seed_from_u64(0xbe7c4);
        let poses = (0..n_poses)
            .map(|_| Genotype::random(&mut rng, prep.n_torsions(), Vec3::ZERO, 6.0))
            .collect();
        HostWorkload { grids, prep, poses }
    }

    /// Measure seconds per pose for one backend (scores every pose once).
    pub fn seconds_per_pose(&self, backend: Backend) -> f64 {
        let engine = DockingEngine::new(&self.grids).expect("grids fit");
        let mut scratch = ConformSoA::with_capacity(self.prep.base.n);
        let mut sink = 0.0f32;
        // Warm-up pass (the paper discards warm-up runs).
        for g in self.poses.iter().take(self.poses.len() / 4) {
            sink += engine.score(&self.prep, g, &mut scratch, backend);
        }
        let t0 = Instant::now();
        for g in &self.poses {
            sink += engine.score(&self.prep, g, &mut scratch, backend);
        }
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        dt / self.poses.len() as f64
    }

    /// Host ground truth across all runnable backends:
    /// `(backend name, seconds/pose, speedup vs Reference)`.
    /// One timed pass per backend; the Reference row itself is the
    /// speedup denominator, so the table is self-consistent.
    pub fn backend_comparison(&self) -> Vec<(String, f64, f64)> {
        let timed: Vec<(String, f64)> = Backend::available()
            .into_iter()
            .map(|b| (b.name(), self.seconds_per_pose(b)))
            .collect();
        let reference = timed
            .iter()
            .find(|(n, _)| n == "reference")
            .map(|(_, s)| *s)
            .unwrap_or(1.0);
        timed
            .into_iter()
            .map(|(n, s)| (n, s, reference / s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = fmt::table(
            &["a", "long-header"],
            &[vec!["x".into(), "1".into()], vec!["yy".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
    }

    #[test]
    fn bars_scale() {
        assert_eq!(fmt::bar(5.0, 10.0, 10), "#####");
        assert_eq!(fmt::bar(10.0, 10.0, 10), "##########");
        assert_eq!(fmt::bar(0.0, 10.0, 10), "");
    }

    #[test]
    fn host_workload_scores_all_backends() {
        let wl = HostWorkload::standard(8);
        for b in Backend::available() {
            let s = wl.seconds_per_pose(b);
            assert!(s > 0.0 && s < 1.0, "{b}: {s} s/pose");
        }
    }
}

pub mod report;
