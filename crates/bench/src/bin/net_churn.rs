//! Connection-churn smoke for the reactor frontend: a herd of idle
//! keep-alive connections plus a slow-loris writer must not disturb a
//! real job cycle — and the misbehaving peer, not the polite ones, must
//! be the one evicted.
//!
//! ```text
//! cargo run --release -p mudock-bench --bin net_churn \
//!     [--conns N] [--header-s S] [--event-loops N]
//! ```
//!
//! The smoke self-hosts a loopback server (header deadline shortened to
//! `--header-s`, default 2 s; `--event-loops` sizes the frontend pool,
//! default 0 = auto like the server's own default), then concurrently:
//!
//! 1. opens `--conns` (default 200) keep-alive connections, each
//!    verified with one served request, and leaves them idle;
//! 2. starts a slow-loris client: a partial request head, then silence;
//! 3. runs a full job lifecycle on a fresh connection — submit, poll to
//!    completion, fetch results, plus a second submit that is cancelled
//!    mid-flight.
//!
//! It exits non-zero unless: the slow client is deadlined (EOF within
//! the header deadline plus slack) while the cycle runs, every idle
//! connection still answers afterwards, the server's gauges show zero
//! shed connections (no spurious 503s) for the whole run, and the
//! per-loop `{loop="i"}` connection/request series in `/metrics` sum
//! exactly to their unlabelled totals.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mudock_core::{Campaign, ChunkPolicy};
use mudock_grids::GridDims;
use mudock_mol::Vec3;
use mudock_serve::net::client;
use mudock_serve::{
    JobState, LigandSource, NetConfig, NetServer, Priority, ReceptorSource, ScreenService,
    ServeConfig,
};

/// Sum every `name{loop="i"}` sample and read the unlabelled `name`
/// total from a Prometheus render.
fn loop_sum_and_total(metrics: &str, name: &str) -> (i64, i64) {
    let mut sum = 0i64;
    let mut total = 0i64;
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(value) = rest.strip_prefix(' ') {
                total = value.trim().parse::<f64>().expect("total sample") as i64;
            } else if rest.starts_with("{loop=") {
                let value = rest.rsplit(' ').next().unwrap();
                sum += value.trim().parse::<f64>().expect("loop sample") as i64;
            }
        }
    }
    (sum, total)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut conns = 200usize;
    let mut header_s = 2u64;
    let mut event_loops = 0usize; // 0 = auto, same as NetConfig::default()
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--conns" => {
                conns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--conns needs a count");
            }
            "--header-s" => {
                header_s = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--header-s needs seconds");
            }
            "--event-loops" => {
                event_loops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--event-loops needs a loop count");
            }
            flag => {
                eprintln!(
                    "net_churn: unknown argument '{flag}'\n\
                     usage: net_churn [--conns N] [--header-s S] [--event-loops N]"
                );
                std::process::exit(2);
            }
        }
    }

    let threads = mudock_pool::default_threads();
    let service = Arc::new(ScreenService::start(ServeConfig {
        total_threads: threads,
        job_slots: 2,
        ..ServeConfig::default()
    }));
    let results_dir = std::env::temp_dir().join(format!("mudock-net-churn-{}", std::process::id()));
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig {
            results_dir: results_dir.clone(),
            max_connections: conns + 64,
            header_timeout: Duration::from_secs(header_s),
            // The herd must sit idle for the whole smoke — at 10k
            // connections the serial setup alone can outlive the
            // default 60 s idle deadline.
            idle_timeout: Duration::from_secs(600),
            event_loops,
            ..NetConfig::default()
        },
    )
    .expect("loopback bind");
    let addr = server.local_addr().to_string();
    eprintln!(
        "net_churn: server on {addr}, {conns} idle conns, {header_s} s header deadline, \
         {} event loop(s)",
        if event_loops == 0 {
            mudock_serve::default_event_loops()
        } else {
            event_loops
        }
    );

    // 1. The idle herd: each connection proves itself with one request,
    // then sits silent for the rest of the smoke.
    let mut idle: Vec<client::Client> = Vec::with_capacity(conns);
    for i in 0..conns {
        let mut c = client::Client::new(&addr);
        assert!(c.healthy(), "idle connection {i} failed its first request");
        idle.push(c);
    }
    eprintln!("net_churn: idle herd connected ({conns})");

    // 2. The slow loris: a partial head, then silence. Reading from a
    // thread so the deadline is measured while the job cycle runs.
    let mut loris = TcpStream::connect(&addr).expect("loris connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(header_s + 30)))
        .unwrap();
    loris
        .write_all(b"GET /healthz HTTP/1.1\r\nX-Drip: sl")
        .expect("loris partial head");
    let loris_deadline = Duration::from_secs(header_s + 10);
    let loris_thread = std::thread::spawn(move || {
        let t0 = Instant::now();
        let mut buf = [0u8; 64];
        let n = loris.read(&mut buf).unwrap_or(0);
        (n, t0.elapsed())
    });

    // 3. The job lifecycle, on its own keep-alive connection, while the
    // herd idles and the loris stalls.
    let campaign = Campaign::builder()
        .name("churn")
        .population(25)
        .generations(30)
        .seed(0xc4c4)
        .search_radius(5.0)
        .top_k(5)
        .chunk(ChunkPolicy::Fixed(4))
        .grid_dims(GridDims::centered(Vec3::ZERO, 11.0, 0.6))
        .build()
        .expect("valid churn campaign");
    let receptor = ReceptorSource::Synth {
        seed: 0xc4c4,
        atoms: 300,
        radius: 9.0,
    };
    let mut active = client::Client::new(&addr);
    let id = active
        .submit(
            &campaign,
            &receptor,
            &LigandSource::synth(1, 32),
            Priority::Normal,
        )
        .expect("submit through the churn");
    let status = active
        .wait(id, Duration::from_millis(20))
        .expect("poll through the churn");
    assert_eq!(status.state, JobState::Completed, "churn job failed");
    assert_eq!(status.ligands_done, 32);
    let results = active.results(id).expect("results through the churn");
    assert_eq!(
        results.lines().count(),
        32,
        "results JSONL must carry every ligand"
    );
    // Submit-then-cancel: the DELETE must land and drive the job
    // terminal.
    let id2 = active
        .submit(
            &campaign,
            &receptor,
            &LigandSource::synth(2, 512),
            Priority::Normal,
        )
        .expect("second submit");
    active.cancel(id2).expect("cancel through the churn");
    let status2 = active
        .wait(id2, Duration::from_millis(20))
        .expect("wait cancelled");
    assert!(
        status2.is_terminal(),
        "cancelled job never reached a terminal state"
    );
    eprintln!(
        "net_churn: job cycle done (job {id} completed, job {id2} {})",
        mudock_serve::wire::state_name(status2.state)
    );

    // The loris must have been deadlined by now — EOF, within bounds.
    let (loris_read, loris_elapsed) = loris_thread.join().expect("loris thread");
    assert_eq!(
        loris_read, 0,
        "slow-loris got a response from half a request head"
    );
    assert!(
        loris_elapsed <= loris_deadline,
        "slow-loris survived {loris_elapsed:?} (deadline {:?})",
        Duration::from_secs(header_s)
    );
    eprintln!("net_churn: slow-loris deadlined after {loris_elapsed:.1?}");

    // 4. Every idle connection must still be serviceable, and nothing
    // may have been shed along the way.
    for (i, c) in idle.iter_mut().enumerate() {
        assert!(c.healthy(), "idle connection {i} died during the churn");
    }
    let stats = server.connection_stats();
    assert_eq!(stats.shed, 0, "spurious 503 load-shedding: {stats:?}");
    assert!(
        stats.open as usize >= conns,
        "open gauge lost the herd: {} < {conns}",
        stats.open
    );

    // 5. The /metrics surface must reflect the churn it just survived
    // (the smoke shuts the server down, so CI asserts it here rather
    // than with a post-run curl).
    let metrics = client::request(&addr, "GET", "/metrics", None)
        .expect("/metrics through the churn")
        .ok()
        .expect("/metrics 200")
        .body;
    for needle in [
        "mudock_requests_total ",
        "mudock_job_stage_seconds_count{stage=\"total\"} 2",
        "mudock_jobs_total{event=\"completed\"} 1",
        "mudock_connections_shed_total 0",
        "mudock_request_seconds_count ",
    ] {
        assert!(
            metrics.contains(needle),
            "/metrics missing series {needle:?}"
        );
    }
    // The per-loop labelled series must account for every connection
    // and request the unlabelled totals claim — a loop whose counters
    // leak (or double-count) shows up here as a sum/total mismatch.
    for name in [
        "mudock_connections_open",
        "mudock_connections_accepted_total",
        "mudock_requests_total",
    ] {
        let (sum, total) = loop_sum_and_total(&metrics, name);
        assert_eq!(
            sum, total,
            "{name}: per-loop series sum to {sum} but the total reads {total}"
        );
    }
    eprintln!(
        "net_churn: PASS — herd of {conns} survived, {} requests served, 0 shed, \
         /metrics consistent (per-loop series sum to totals)",
        stats.requests
    );

    drop(idle);
    drop(active);
    server.shutdown();
    service.shutdown();
    std::fs::remove_dir_all(&results_dir).ok();
}
