//! Regenerates the paper's Table II (out-of-order resources).
fn main() {
    mudock_bench::report::table2();
}
