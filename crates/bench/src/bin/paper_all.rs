//! Regenerates every table and figure of the paper in one run
//! (CSV copies land under `results/`).
use mudock_archsim::Study;
use mudock_bench::report;

fn main() {
    println!("=== mudock-rs: reproducing every table & figure (CLUSTER 2025) ===\n");
    report::table1();
    report::table2();
    report::table3();
    println!("Building the cross-architecture study (runs real docking on this host)…\n");
    let study = Study::new();
    assert_eq!(
        report::coverage(&study),
        19,
        "19 (arch, compiler) pairs as in the paper"
    );
    report::table4(&study);
    report::table5(&study);
    report::fig2a(&study);
    report::fig2b(&study);
    report::fig3(&study);
    report::fig4(&study);
    report::fig5(&study);
    report::fig6(&study);
    report::fig7(&study);
    report::host_backends(400);
    println!("CSV outputs written under results/.");
}
