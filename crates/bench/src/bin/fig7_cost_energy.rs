//! Regenerates Figure 7 (cost and energy per evaluated ligand).
use mudock_archsim::Study;
fn main() {
    let study = Study::new();
    mudock_bench::report::fig7(&study);
}
