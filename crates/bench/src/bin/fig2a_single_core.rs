//! Regenerates Figure 2a (single-core execution time, reduced dataset)
//! and prints the real host backend measurements alongside the model.
use mudock_archsim::Study;
fn main() {
    let study = Study::new();
    mudock_bench::report::fig2a(&study);
    mudock_bench::report::host_backends(400);
}
