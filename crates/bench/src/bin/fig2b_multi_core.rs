//! Regenerates Figure 2b (full-node execution time, MEDIATE-like set).
use mudock_archsim::Study;
fn main() {
    let study = Study::new();
    mudock_bench::report::fig2b(&study);
}
