//! Offline grid-cache policy lab: replay a recorded `*.trace` file
//! against alternative replacement policies and compare hit rates.
//!
//! ```text
//! cargo run --release -p mudock-bench --bin cache_replay -- TRACE \
//!     [--capacity N] [--spill-cap N] [--policies lru,slru,...] \
//!     [--live HITS,MISSES,SPILLS,RELOADS] [--assert-default] [--json]
//! ```
//!
//! `TRACE` is a file recorded by a serve node started with
//! `--cache-trace` (every admission, hit, eviction, spill, reload, and
//! router hint, with timestamps and per-acquisition wall-clock). The
//! replayer drives the recorded access/hint stream through each policy
//! model in `mudock_serve`'s `cache::policy` module and prints one
//! comparison row per policy — so "would SLRU have helped this
//! campaign?" is answered from production evidence, not intuition.
//!
//! Swept by default: `lru`, `slru`, `tinylfu`, `lru+prefetch`,
//! `slru+prefetch`. Capacities default to what the trace header
//! recorded (the live node's configuration); `--capacity`/`--spill-cap`
//! ask "what if the node were sized differently" against the same
//! workload.
//!
//! Two assertions make the tool CI-able:
//!
//! * `--live H,M,SP,RL` — the model matching the trace header's policy
//!   must reproduce the live node's hits/misses/spills/reloads
//!   *exactly* (the models mirror the live bookkeeping; any drift is a
//!   bug in one of them). Exits 1 on mismatch.
//! * `--assert-default` — the shipped default policy's hit rate must be
//!   at least plain LRU's on this trace. Exits 1 if the default ever
//!   regresses the workload it ships for.

use std::process::ExitCode;

use mudock_serve::{read_trace, CachePolicy, ModelConfig, ModelStats};

const DEFAULT_POLICIES: &[&str] = &["lru", "slru", "tinylfu", "lru+prefetch", "slru+prefetch"];

fn usage() -> ! {
    eprintln!(
        "usage: cache_replay TRACE [--capacity N] [--spill-cap N] \
         [--policies a,b,...] [--live HITS,MISSES,SPILLS,RELOADS] \
         [--assert-default] [--json]"
    );
    std::process::exit(2);
}

struct Row {
    label: String,
    stats: ModelStats,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut capacity: Option<usize> = None;
    let mut spill_cap: Option<usize> = None;
    let mut policies: Vec<String> = DEFAULT_POLICIES.iter().map(|s| s.to_string()).collect();
    let mut live: Option<[u64; 4]> = None;
    let mut assert_default = false;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--capacity" => capacity = it.next().and_then(|v| v.parse().ok()).or_else(|| usage()),
            "--spill-cap" => spill_cap = it.next().and_then(|v| v.parse().ok()).or_else(|| usage()),
            "--policies" => {
                policies = match it.next() {
                    Some(v) => v.split(',').map(|s| s.trim().to_string()).collect(),
                    None => usage(),
                }
            }
            "--live" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let nums: Vec<u64> = spec
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                match <[u64; 4]>::try_from(nums) {
                    Ok(n) => live = Some(n),
                    Err(_) => usage(),
                }
            }
            "--assert-default" => assert_default = true,
            "--json" => json = true,
            _ if trace_path.is_none() && !a.starts_with("--") => trace_path = Some(a),
            _ => usage(),
        }
    }
    let trace_path = trace_path.unwrap_or_else(|| usage());
    let trace = match read_trace(std::path::Path::new(&trace_path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cache_replay: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let header = trace.header;
    let capacity = capacity
        .or(header.as_ref().map(|h| h.capacity))
        .unwrap_or(4);
    let spill_cap = spill_cap
        .or(header.as_ref().map(|h| h.spill_capacity))
        .unwrap_or(0);

    let mut rows: Vec<Row> = Vec::new();
    for name in &policies {
        let cfg = match ModelConfig::for_policy(name, capacity, spill_cap) {
            Some(cfg) => cfg,
            None => {
                eprintln!("cache_replay: unknown policy {name:?} (lru, slru, tinylfu, +prefetch)");
                return ExitCode::FAILURE;
            }
        };
        rows.push(Row {
            label: name.clone(),
            stats: mudock_serve::cache::policy::replay(&trace.events, cfg),
        });
    }

    if json {
        print_json(&trace_path, capacity, spill_cap, &rows);
    } else {
        print_table(&trace_path, capacity, spill_cap, header.as_ref(), &rows);
    }

    let mut failed = false;
    if let Some([hits, misses, spills, reloads]) = live {
        // The live node ran one concrete policy; compare against the
        // model replaying that same policy at the recorded sizes. Only
        // meaningful at the trace's own capacities.
        let live_policy = header
            .as_ref()
            .map(|h| h.policy.clone())
            .unwrap_or_else(|| CachePolicy::default().name().to_string());
        let cfg = ModelConfig::for_policy(
            &live_policy,
            header.as_ref().map(|h| h.capacity).unwrap_or(capacity),
            header
                .as_ref()
                .map(|h| h.spill_capacity)
                .unwrap_or(spill_cap),
        )
        .expect("trace header names a live policy");
        let m = mudock_serve::cache::policy::replay(&trace.events, cfg);
        let model = [m.hits, m.misses, m.spills, m.reloads];
        if model == [hits, misses, spills, reloads] {
            println!("live parity: model[{live_policy}] == live ({hits} hits, {misses} misses, {spills} spills, {reloads} reloads)");
        } else {
            eprintln!(
                "live parity FAILED: model[{live_policy}] {model:?} != live [{hits}, {misses}, {spills}, {reloads}] (hits, misses, spills, reloads)"
            );
            failed = true;
        }
    }
    if assert_default {
        let default_name = CachePolicy::default().name();
        let find = |name: &str| rows.iter().find(|r| r.label == name).map(|r| &r.stats);
        match (find(default_name), find("lru")) {
            (Some(d), Some(l)) => {
                if d.hit_rate() + 1e-12 >= l.hit_rate() {
                    println!(
                        "default policy {default_name}: hit rate {:.4} >= lru {:.4}",
                        d.hit_rate(),
                        l.hit_rate()
                    );
                } else {
                    eprintln!(
                        "default policy {default_name} REGRESSES lru on this trace: {:.4} < {:.4}",
                        d.hit_rate(),
                        l.hit_rate()
                    );
                    failed = true;
                }
            }
            _ => {
                eprintln!("--assert-default needs both {default_name:?} and \"lru\" in --policies");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_table(
    path: &str,
    capacity: usize,
    spill_cap: usize,
    header: Option<&mudock_serve::TraceHeader>,
    rows: &[Row],
) {
    match header {
        Some(h) => println!(
            "trace {path}: recorded by policy={} capacity={} spill={} prefetch={}",
            h.policy, h.capacity, h.spill_capacity, h.prefetch
        ),
        None => println!("trace {path}: headerless (partial trace?)"),
    }
    println!("replaying at capacity={capacity} spill-cap={spill_cap}");
    println!(
        "{:<14} {:>9} {:>7} {:>7} {:>7} {:>8} {:>7} {:>10} {:>12}",
        "policy",
        "accesses",
        "hits",
        "hit%",
        "builds",
        "reloads",
        "spills",
        "prefetches",
        "est-stall-ms"
    );
    for r in rows {
        let s = &r.stats;
        println!(
            "{:<14} {:>9} {:>7} {:>6.1}% {:>7} {:>8} {:>7} {:>10} {:>12.2}",
            r.label,
            s.accesses,
            s.hits,
            s.hit_rate() * 100.0,
            s.builds,
            s.reloads,
            s.spills,
            s.prefetches,
            s.stall_ns as f64 / 1e6
        );
    }
}

fn print_json(path: &str, capacity: usize, spill_cap: usize, rows: &[Row]) {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"trace\":\"{}\",\"capacity\":{capacity},\"spill_capacity\":{spill_cap},\"policies\":[",
        path.replace('\\', "\\\\").replace('"', "\\\"")
    ));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = &r.stats;
        out.push_str(&format!(
            "{{\"policy\":\"{}\",\"accesses\":{},\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\"builds\":{},\"reloads\":{},\"spills\":{},\"evictions\":{},\"spill_drops\":{},\"prefetches\":{},\"stall_ns\":{}}}",
            r.label,
            s.accesses,
            s.hits,
            s.misses,
            s.hit_rate(),
            s.builds,
            s.reloads,
            s.spills,
            s.evictions,
            s.spill_drops,
            s.prefetches,
            s.stall_ns
        ));
    }
    out.push_str("]}");
    println!("{out}");
}
