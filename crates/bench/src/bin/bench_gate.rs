//! The CI bench-regression gate: compare a fresh `BENCH_serve.json`
//! against the committed baseline and fail on regression.
//!
//! ```text
//! cargo run --release -p mudock-bench --bin bench_gate \
//!     <current.json> <baseline.json> [tolerance]
//! ```
//!
//! Gated metrics are discovered, not hardcoded: every numeric leaf
//! whose dotted path ends in `ligands_per_sec` (throughput, higher is
//! better) or `p50_ms`/`p99_ms` (latency, lower is better) is gated when both
//! files carry it. Exits non-zero when a throughput metric falls more
//! than `tolerance` (default 0.25, i.e. ±25 %) *below* its baseline, or
//! a latency metric rises more than `tolerance` *above* it — speedups
//! never fail the gate, they are reported so the baseline can be
//! ratcheted. A metric present in only one file is reported and
//! skipped, so adding a new datapoint (or retiring an old one) does not
//! break the gate on the commit that changes it.
//!
//! The JSON is read with `mudock_serve::wire::parse` — the same
//! dependency-free parser the network frontend trusts with socket
//! bytes.

use std::collections::BTreeSet;
use std::process::ExitCode;

use mudock_serve::wire::{self, Json};

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    wire::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Fetch a dotted metric path (e.g. `net.ligands_per_sec`).
fn metric(v: &Json, path: &str) -> Option<f64> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    match cur {
        Json::Num(n) => n.as_f64(),
        _ => None,
    }
}

/// Collect the dotted paths of every numeric leaf named one of
/// [`GATED_LEAVES`], depth-first.
fn gated_paths(v: &Json, prefix: &str, out: &mut BTreeSet<String>) {
    if let Json::Obj(members) = v {
        for (key, val) in members {
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            match val {
                Json::Num(_) if GATED_LEAVES.contains(&key.as_str()) => {
                    out.insert(path);
                }
                Json::Obj(_) => gated_paths(val, &path, out),
                _ => {}
            }
        }
    }
}

/// Leaf names that put a datapoint under the gate, with the direction
/// a regression moves in.
const GATED_LEAVES: [&str; 3] = ["ligands_per_sec", "p50_ms", "p99_ms"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_path, baseline_path) = match (args.first(), args.get(1)) {
        (Some(c), Some(b)) => (c.as_str(), b.as_str()),
        _ => {
            eprintln!("usage: bench_gate <current.json> <baseline.json> [tolerance]");
            return ExitCode::from(2);
        }
    };
    let tolerance: f64 = match args.get(2).map(|t| t.parse()) {
        None => 0.25,
        Some(Ok(t)) if (0.0..1.0).contains(&t) => t,
        Some(_) => {
            eprintln!("tolerance must be a fraction in [0, 1), e.g. 0.25");
            return ExitCode::from(2);
        }
    };

    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    // Throughput only compares like with like: a current run on a
    // different worker count than the baseline would make the floor
    // meaningless (half the threads ≈ half the ligands/sec), silently
    // neutering the gate. That is a harness misconfiguration (exit 2),
    // not a regression (exit 1) — pin MUDOCK_THREADS to the baseline's
    // `threads` value or re-record the baseline.
    match (metric(&current, "threads"), metric(&baseline, "threads")) {
        (Some(c), Some(b)) if c != b => {
            eprintln!(
                "bench_gate: current ran on {c} thread(s) but the baseline on {b}; \
                 the comparison would be meaningless (set MUDOCK_THREADS={b} or \
                 re-record the baseline)"
            );
            return ExitCode::from(2);
        }
        _ => {}
    }
    // Same refusal for the frontend's event-loop count: the
    // `net_concurrency` throughput and tail latency scale with how many
    // loops share the listen port, so a 4-loop run gated against a
    // 1-loop baseline compares nothing. Absent on either side (older
    // baseline) skips the check, same as any missing metric.
    match (
        metric(&current, "event_loops"),
        metric(&baseline, "event_loops"),
    ) {
        (Some(c), Some(b)) if c != b => {
            eprintln!(
                "bench_gate: current ran with {c} event loop(s) but the baseline with {b}; \
                 the comparison would be meaningless (pass --event-loops {b} or \
                 re-record the baseline)"
            );
            return ExitCode::from(2);
        }
        _ => {}
    }

    // The union of gated paths across both files: both-present compares,
    // one-sided warns.
    let mut paths = BTreeSet::new();
    gated_paths(&current, "", &mut paths);
    gated_paths(&baseline, "", &mut paths);
    if paths.is_empty() {
        eprintln!("bench_gate: neither file carries a gated metric");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        // Latency regresses upward; throughput regresses downward.
        let lower_is_better = path.ends_with("p50_ms") || path.ends_with("p99_ms");
        match (metric(&current, path), metric(&baseline, path)) {
            (Some(cur), Some(base)) => {
                let delta = 100.0 * (cur - base) / base.max(1e-9);
                let (bound, breached) = if lower_is_better {
                    let ceiling = base * (1.0 + tolerance);
                    (ceiling, cur > ceiling)
                } else {
                    let floor = base * (1.0 - tolerance);
                    (floor, cur < floor)
                };
                if breached {
                    eprintln!(
                        "FAIL {path}: {cur:.2} is {delta:+.1} % vs baseline {base:.2} \
                         ({} {bound:.2} at ±{:.0} % tolerance)",
                        if lower_is_better { "ceiling" } else { "floor" },
                        100.0 * tolerance
                    );
                    failed = true;
                } else {
                    eprintln!("ok   {path}: {cur:.2} vs baseline {base:.2} ({delta:+.1} %)");
                }
            }
            (Some(cur), None) => {
                eprintln!("new  {path}: {cur:.2} (no baseline yet; skipped)");
            }
            (None, Some(base)) => {
                eprintln!("gone {path}: baseline {base:.2} has no current value (skipped)");
            }
            (None, None) => {}
        }
    }
    if failed {
        eprintln!("bench_gate: a gated metric regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
