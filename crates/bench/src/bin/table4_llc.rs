//! Regenerates the paper's Table IV (LLC miss rates single vs multi-core).
use mudock_archsim::Study;
fn main() {
    let study = Study::new();
    mudock_bench::report::table4(&study);
}
