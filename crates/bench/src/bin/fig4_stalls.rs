//! Regenerates Figure 4 (pipeline stalls vs useful work).
use mudock_archsim::Study;
fn main() {
    let study = Study::new();
    mudock_bench::report::fig4(&study);
}
