//! Regenerates Figure 3 (vectorization ratio and speedup).
use mudock_archsim::Study;
fn main() {
    let study = Study::new();
    mudock_bench::report::fig3(&study);
}
