//! Regenerates the paper's Table III (compiler versions and flags).
fn main() {
    mudock_bench::report::table3();
}
