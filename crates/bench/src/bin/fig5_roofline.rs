//! Regenerates Figure 5 (per-architecture rooflines with kernel points).
use mudock_archsim::Study;
fn main() {
    let study = Study::new();
    mudock_bench::report::fig5(&study);
}
