//! Ablation: the vectorized-math-library effect (paper Sections VII-c,
//! VIII-a).
//!
//! The single biggest portability cliff in the paper is whether `expf`
//! vectorizes. This binary isolates it: a batch of exponentials through
//! (a) scalar libm (`f32::exp` — what GCC emits on ARM without a
//! vectorized GLIBC), (b) the inlinable polynomial at one lane (what the
//! compiler can auto-vectorize), and (c) the explicit vector polynomial at
//! every width (libmvec/ArmPL/Highway's role).

use std::time::Instant;

use mudock_simd::{ops, SimdLevel};

fn main() {
    let n = 16 * 1024;
    let xs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01) % 20.0 - 10.0).collect();
    let mut out = vec![0.0f32; n];
    let reps = 2000;

    let time = |f: &mut dyn FnMut()| {
        for _ in 0..50 {
            f(); // warm-up
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_secs_f64() / (reps as f64 * n as f64)
    };

    println!("ABLATION: exponential implementations ({n} elements per eval)\n");

    let t_libm = time(&mut || {
        for (o, &x) in out.iter_mut().zip(&xs) {
            *o = x.exp();
        }
        std::hint::black_box(&mut out);
    });
    println!(
        "{:24} {:8.3} ns/exp  (baseline: scalar libm call)",
        "libm f32::exp",
        t_libm * 1e9
    );

    for level in SimdLevel::available() {
        let t = time(&mut || {
            ops::exp_slice(level, &xs, &mut out);
            std::hint::black_box(&mut out);
        });
        println!(
            "{:24} {:8.3} ns/exp  ({:5.2}x)",
            format!("polynomial @ {level}"),
            t * 1e9,
            t_libm / t
        );
    }

    println!("\nExpected shape: at one lane the polynomial roughly matches the libm");
    println!("call, but unlike libm it vectorizes: each doubling of width");
    println!("multiplies throughput — the portability cliff the paper pins on");
    println!("missing vector math libraries. (A64FX's FEXPA would shrink the");
    println!("polynomial to ~2 ops; modeled in mudock-archsim.)");
}
