//! Service-layer throughput benchmark: push a synthetic screening
//! campaign through `mudock-serve` and record ligands/sec plus the grid
//! cache hit rate in `BENCH_serve.json` — the baseline every future
//! serve-layer optimization is measured against.
//!
//! ```text
//! cargo run --release -p mudock-bench --bin serve_throughput \
//!     [ligands_per_job] [jobs] [--net] [--receptors N] [--concurrency C] \
//!     [--event-loops N] [--cluster N]
//! ```
//!
//! Every gated datapoint is sampled the same way: one untimed warmup
//! batch (JIT-warm caches, built grids, established connections), then
//! timed batches accumulated until at least [`MIN_SAMPLE_S`] seconds of
//! wall-clock — so the ±25 % CI gate compares multi-second runs, not
//! timer noise.
//!
//! With `--net`, the same campaigns are additionally submitted over a
//! loopback TCP socket through the HTTP frontend (`serve::net`) on one
//! keep-alive connection and polled to completion, adding a
//! `"net": {...}` datapoint so the network path's overhead is tracked
//! by the same baseline file (and the same CI regression gate).
//!
//! With `--receptors N`, a multi-receptor leg runs the same ligand
//! budget across N *distinct* receptors through a deliberately tiny
//! (capacity 1) grid cache with the disk spill tier enabled — the
//! worst-case target churn the sharding + spill work exists for. The
//! `"multi": {...}` datapoint records throughput plus the spill/reload
//! counters, so both the scheduling path and the spill I/O sit under
//! the same regression gate.
//!
//! With `--concurrency C`, a `net_concurrency` leg holds C open,
//! mostly-idle keep-alive connections against the reactor while the
//! same socket workload runs on an active connection — recording
//! sustained ligands/sec *and* the p99 per-request latency. This is the
//! datapoint that guards the readiness-driven event loop: a frontend
//! that degrades with open sockets (or stalls requests behind idle
//! peers) fails here long before production traffic would find it.
//! `--event-loops N` sizes the frontend's event-loop pool for that leg
//! (default 1 — single-loop, so old baselines stay comparable); the
//! count is recorded as a top-level `"event_loops"` field and
//! `bench_gate` refuses to compare runs that disagree on it. Herds of
//! ≥[`HERD_CHILD_CHUNK`] connections are held by spawned child
//! processes (`--herd`, internal) so a 10k-connection run fits in one
//! process's file-descriptor budget: the bench process keeps only the
//! server-side sockets, each child owns a slice of the client ends and
//! exits when the parent closes its stdin.
//!
//! With `--cluster N`, a federation leg runs the same socket workload
//! against a coordinator fronting N loopback member nodes: every job is
//! scattered into per-member ligand windows, screened in parallel, and
//! gathered back through the deterministic top-k merge. The
//! `"cluster": {...}` datapoint records `ligands_per_sec` through the
//! whole scatter/gather path, so coordinator overhead (double HTTP hop,
//! window planning, partial-ranking merge) sits under the same ±25 %
//! regression gate as the single-node paths.
//!
//! Thread count follows `MUDOCK_THREADS` (see `mudock_pool`), so CI runs
//! are reproducible.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mudock_cluster::{ClusterConfig, Coordinator};
use mudock_core::{Campaign, CampaignSpec, ChunkPolicy};
use mudock_grids::GridDims;
use mudock_mol::Vec3;
use mudock_serve::net::client;
use mudock_serve::{
    JobSpec, JobState, LigandSource, NetConfig, NetServer, Priority, ReceptorSource, ScreenService,
    ServeConfig, SpillConfig,
};

/// Minimum accumulated wall-clock per gated datapoint.
const MIN_SAMPLE_S: f64 = 2.0;

/// Idle-herd connections per child process. Herds at or above this size
/// are split across children — two fds per connection (client end in
/// the child, server end in the bench process) would otherwise put a
/// 10k-connection herd over a typical 20k-fd rlimit in one process.
const HERD_CHILD_CHUNK: usize = 2000;

/// The idle keep-alive herd for the concurrency leg: held in-process
/// when small, sliced across `--herd` child processes when large.
/// Either way every connection has proven itself with one served
/// request before `open` returns.
struct Herd {
    children: Vec<std::process::Child>,
    local: Vec<client::Client>,
}

impl Herd {
    fn open(addr: &str, conns: usize) -> Herd {
        if conns < HERD_CHILD_CHUNK {
            let mut local = Vec::with_capacity(conns);
            for i in 0..conns {
                let mut c = client::Client::new(addr);
                assert!(c.healthy(), "idle connection {i} failed its first request");
                local.push(c);
            }
            return Herd {
                children: Vec::new(),
                local,
            };
        }
        let exe = std::env::current_exe().expect("current_exe for herd children");
        let mut children = Vec::new();
        let mut remaining = conns;
        while remaining > 0 {
            let slice = remaining.min(HERD_CHILD_CHUNK);
            remaining -= slice;
            let child = std::process::Command::new(&exe)
                .arg("--herd")
                .arg(addr)
                .arg(slice.to_string())
                .stdin(std::process::Stdio::piped())
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("spawn herd child");
            children.push(child);
        }
        // Each child prints `ready` once its whole slice is connected
        // and healthy; only then is the herd fully registered with the
        // reactor and the measurement allowed to start.
        for (i, child) in children.iter_mut().enumerate() {
            use std::io::BufRead;
            let stdout = child.stdout.take().expect("herd child stdout");
            let mut line = String::new();
            std::io::BufReader::new(stdout)
                .read_line(&mut line)
                .expect("read herd child readiness");
            assert_eq!(line.trim(), "ready", "herd child {i} failed to connect");
        }
        Herd {
            children,
            local: Vec::new(),
        }
    }

    /// Release every connection: closing a child's stdin is its signal
    /// to drop its slice and exit.
    fn close(mut self) {
        for child in &mut self.children {
            drop(child.stdin.take());
        }
        for mut child in self.children {
            let _ = child.wait();
        }
        drop(self.local);
    }
}

/// Child-process mode (internal): hold `n` proven-healthy keep-alive
/// connections against `addr` until stdin reaches EOF.
fn herd_child(addr: &str, n: usize) -> ! {
    let mut conns = Vec::with_capacity(n);
    for i in 0..n {
        let mut c = client::Client::new(addr);
        assert!(c.healthy(), "herd connection {i} failed its first request");
        conns.push(c);
    }
    println!("ready");
    let mut sink = Vec::new();
    let _ = std::io::Read::read_to_end(&mut std::io::stdin(), &mut sink);
    drop(conns);
    std::process::exit(0);
}

fn bench_campaign(j: usize, dims: GridDims) -> CampaignSpec {
    Campaign::builder()
        .name(format!("bench-{j}"))
        .population(25)
        .generations(30)
        .seed(0xbe2c)
        .search_radius(5.0)
        .top_k(10)
        .chunk(ChunkPolicy::Fixed(8))
        .grid_dims(dims)
        .build()
        .expect("the bench campaign is valid")
}

/// One untimed warmup batch, then timed batches accumulated until
/// [`MIN_SAMPLE_S`]. Returns `(elapsed_s, batches_timed)`.
fn sample(mut batch: impl FnMut()) -> (f64, usize) {
    batch(); // warmup: grid builds, socket setup, page cache
    let mut elapsed = 0.0;
    let mut batches = 0;
    while elapsed < MIN_SAMPLE_S {
        let t0 = Instant::now();
        batch();
        elapsed += t0.elapsed().as_secs_f64();
        batches += 1;
    }
    (elapsed, batches)
}

/// The loopback-socket leg: same jobs, but submitted and polled through
/// the HTTP frontend over one keep-alive connection. Returns
/// `(elapsed_s, ligands_per_sec)`.
fn net_leg(n_ligands: usize, jobs: usize, threads: usize, dims: GridDims) -> (f64, f64) {
    let service = Arc::new(ScreenService::start(ServeConfig {
        total_threads: threads,
        job_slots: 2,
        ..ServeConfig::default()
    }));
    let results_dir = std::env::temp_dir().join(format!("mudock-bench-net-{}", std::process::id()));
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig {
            results_dir: results_dir.clone(),
            ..NetConfig::default()
        },
    )
    .expect("loopback bind");
    let addr = server.local_addr().to_string();
    let receptor = ReceptorSource::Synth {
        seed: 0xbe2c,
        atoms: 300,
        radius: 9.0,
    };

    let mut conn = client::Client::new(&addr);
    let (elapsed, batches) = sample(|| {
        let ids: Vec<u64> = (0..jobs)
            .map(|j| {
                conn.submit(
                    &bench_campaign(j, dims),
                    &receptor,
                    &LigandSource::synth(j as u64, n_ligands),
                    Priority::Normal,
                )
                .expect("bench submission over loopback")
            })
            .collect();
        for id in ids {
            let status = conn
                .wait(id, Duration::from_millis(5))
                .expect("poll to terminal");
            assert_eq!(status.state, JobState::Completed, "net bench job failed");
            assert_eq!(status.ligands_done, n_ligands);
        }
    });
    drop(conn);
    server.shutdown();
    service.shutdown();
    std::fs::remove_dir_all(&results_dir).ok();
    let total = (batches * jobs * n_ligands) as f64;
    (elapsed, total / elapsed.max(1e-9))
}

/// The reactor-under-load leg: `conns` open keep-alive connections sit
/// mostly idle while the socket workload runs on an active one, every
/// request's latency recorded into a `mudock_obs::Histogram` — the same
/// instrument the server's own `mudock_request_seconds` series uses, so
/// the bench and production quantiles share bucket semantics. Returns
/// `(elapsed_s, ligands_per_sec, p50_ms, p99_ms)`.
fn concurrency_leg(
    n_ligands: usize,
    jobs: usize,
    threads: usize,
    dims: GridDims,
    conns: usize,
    event_loops: usize,
) -> (f64, f64, f64, f64) {
    let service = Arc::new(ScreenService::start(ServeConfig {
        total_threads: threads,
        job_slots: 2,
        ..ServeConfig::default()
    }));
    let results_dir =
        std::env::temp_dir().join(format!("mudock-bench-conc-{}", std::process::id()));
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig {
            results_dir: results_dir.clone(),
            max_connections: conns + 64,
            // The idle herd must survive the whole leg.
            idle_timeout: Duration::from_secs(600),
            event_loops,
            ..NetConfig::default()
        },
    )
    .expect("loopback bind");
    let addr = server.local_addr().to_string();

    // Open the idle herd (child processes above HERD_CHILD_CHUNK). One
    // served request each guarantees the connection is fully registered
    // with the reactor (not just sitting in the accept backlog) before
    // the measurement starts.
    let idle = Herd::open(&addr, conns);
    let shed = server.connection_stats().shed;
    assert_eq!(shed, 0, "idle herd of {conns} was load-shed ({shed})");

    let receptor = ReceptorSource::Synth {
        seed: 0xbe2c,
        atoms: 300,
        radius: 9.0,
    };
    let mut conn = client::Client::new(&addr);
    let latencies = mudock_obs::Histogram::new();
    let mut warm = true; // first (warmup) batch's latencies are discarded
    let (elapsed, batches) = sample(|| {
        let ids: Vec<u64> = (0..jobs)
            .map(|j| {
                let t0 = Instant::now();
                let id = conn
                    .submit(
                        &bench_campaign(j, dims),
                        &receptor,
                        &LigandSource::synth(j as u64, n_ligands),
                        Priority::Normal,
                    )
                    .expect("bench submission under concurrency");
                if !warm {
                    latencies.record(t0.elapsed());
                }
                id
            })
            .collect();
        for id in ids {
            loop {
                let t0 = Instant::now();
                let status = conn.poll(id).expect("poll under concurrency");
                if !warm {
                    latencies.record(t0.elapsed());
                }
                if status.is_terminal() {
                    assert_eq!(status.state, JobState::Completed, "concurrency job failed");
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        warm = false;
    });
    // The gauges must show the herd stayed connected throughout.
    let stats = server.connection_stats();
    assert_eq!(stats.shed, 0, "requests were shed during the leg");
    assert!(
        stats.open as usize >= conns,
        "idle herd shrank: {} open < {conns}",
        stats.open
    );
    idle.close();
    drop(conn);
    server.shutdown();
    service.shutdown();
    std::fs::remove_dir_all(&results_dir).ok();

    let snap = latencies.snapshot();
    let p50 = snap.p50_ns() as f64 / 1e6;
    let p99 = snap.p99_ns() as f64 / 1e6;
    let total = (batches * jobs * n_ligands) as f64;
    (elapsed, total / elapsed.max(1e-9), p50, p99)
}

/// The federation leg: N loopback member nodes under one coordinator,
/// the same jobs submitted against the coordinator and scattered into
/// per-member ligand windows. Each member gets the full thread budget —
/// the point is coordinator overhead, not oversubscription accounting.
/// Returns `(elapsed_s, ligands_per_sec)`.
fn cluster_leg(
    n_ligands: usize,
    jobs: usize,
    threads: usize,
    dims: GridDims,
    nodes: usize,
) -> (f64, f64) {
    let mut members = Vec::with_capacity(nodes);
    let mut addrs = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let service = Arc::new(ScreenService::start(ServeConfig {
            total_threads: threads,
            job_slots: 2 * jobs,
            ..ServeConfig::default()
        }));
        let results_dir =
            std::env::temp_dir().join(format!("mudock-bench-cluster-{}-{i}", std::process::id()));
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                results_dir: results_dir.clone(),
                ..NetConfig::default()
            },
        )
        .expect("member loopback bind");
        addrs.push(server.local_addr().to_string());
        members.push((service, server, results_dir));
    }
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ClusterConfig {
            nodes: addrs,
            health_interval: Duration::from_millis(100),
            scatter_min_ligands: 2,
            poll_interval: Duration::from_millis(5),
            ..ClusterConfig::default()
        },
    )
    .expect("coordinator loopback bind");
    let addr = coordinator.local_addr().to_string();
    let receptor = ReceptorSource::Synth {
        seed: 0xbe2c,
        atoms: 300,
        radius: 9.0,
    };

    let mut conn = client::Client::new(&addr);
    let (elapsed, batches) = sample(|| {
        let ids: Vec<u64> = (0..jobs)
            .map(|j| {
                conn.submit(
                    &bench_campaign(j, dims),
                    &receptor,
                    &LigandSource::synth(j as u64, n_ligands),
                    Priority::Normal,
                )
                .expect("bench submission against the coordinator")
            })
            .collect();
        for id in ids {
            let status = conn
                .wait(id, Duration::from_millis(5))
                .expect("poll the coordinator to terminal");
            assert_eq!(
                status.state,
                JobState::Completed,
                "cluster bench job failed"
            );
            assert_eq!(status.ligands_done, n_ligands);
        }
    });
    drop(conn);
    coordinator.shutdown();
    for (service, mut server, results_dir) in members {
        server.shutdown();
        service.shutdown();
        std::fs::remove_dir_all(&results_dir).ok();
    }
    let total = (batches * jobs * n_ligands) as f64;
    (elapsed, total / elapsed.max(1e-9))
}

/// The multi-receptor leg: the same per-job ligand budget, but every
/// job targets a *different* receptor, the resident cache holds one
/// grid set, and evictions spill to disk. Round-robin across receptors
/// twice per batch, so round two exercises the reload path. Returns
/// `(elapsed_s, ligands_per_sec, spills, reloads)`.
fn multi_leg(n_ligands: usize, receptors: usize, threads: usize) -> (f64, f64, u64, u64) {
    let spill_dir = std::env::temp_dir().join(format!("mudock-bench-spill-{}", std::process::id()));
    std::fs::remove_dir_all(&spill_dir).ok();
    let service = ScreenService::try_start(ServeConfig {
        total_threads: threads,
        job_slots: 2,
        cache_capacity: 1,
        shards: receptors,
        spill: Some(SpillConfig::new(&spill_dir)),
        ..ServeConfig::default()
    })
    .expect("spill dir under temp_dir is creatable");

    let targets: Vec<Arc<mudock_mol::Molecule>> = (0..receptors)
        .map(|r| {
            Arc::new(mudock_molio::synthetic_receptor(
                0xbe2c + r as u64,
                300,
                9.0,
            ))
        })
        .collect();
    let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.6);

    let (elapsed, batches) = sample(|| {
        let handles: Vec<_> = (0..2 * receptors)
            .map(|j| {
                let r = j % receptors;
                service
                    .submit(JobSpec {
                        receptor: Arc::clone(&targets[r]),
                        ligands: LigandSource::synth(j as u64, n_ligands),
                        ..JobSpec::from(bench_campaign(j, dims))
                    })
                    .expect("bench jobs fit the queue")
            })
            .collect();
        for h in handles {
            assert_eq!(
                h.wait().state,
                JobState::Completed,
                "multi bench job failed"
            );
        }
    });
    let stats = service.stats();
    assert_eq!(
        stats.shards.len(),
        receptors,
        "every receptor must get its own shard"
    );
    service.shutdown();
    std::fs::remove_dir_all(&spill_dir).ok();
    let total = (batches * 2 * receptors * n_ligands) as f64;
    (
        elapsed,
        total / elapsed.max(1e-9),
        stats.cache.spills,
        stats.cache.reloads,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut with_net = false;
    let mut receptors = 0usize;
    let mut concurrency = 0usize;
    let mut event_loops = 1usize;
    let mut cluster = 0usize;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--net" => with_net = true,
            "--receptors" => {
                receptors = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--receptors needs a count");
            }
            "--concurrency" => {
                concurrency = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--concurrency needs a connection count");
            }
            "--event-loops" => {
                event_loops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--event-loops needs a loop count");
            }
            "--cluster" => {
                cluster = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cluster needs a member node count");
            }
            "--herd" => {
                // Internal child mode: hold a slice of the idle herd.
                let addr = it.next().expect("--herd needs an address");
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--herd needs a connection count");
                herd_child(&addr, n);
            }
            // An unrecognized flag must fail loudly: silently treating
            // it as a positional would run (and baseline) a different
            // configuration than the caller asked for.
            flag if flag.starts_with("--") => {
                eprintln!(
                    "serve_throughput: unknown flag '{flag}'\n\
                     usage: serve_throughput [ligands_per_job] [jobs] [--net] \
                     [--receptors N] [--concurrency C] [--event-loops N] [--cluster N]"
                );
                std::process::exit(2);
            }
            _ => positional.push(a),
        }
    }
    let n_ligands: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    let jobs: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let threads = mudock_pool::default_threads();

    let service = ScreenService::start(ServeConfig {
        total_threads: threads,
        job_slots: 2,
        ..ServeConfig::default()
    });
    // Every job screens the same target — the virtual-screening shape —
    // so all builds after the first are cache hits.
    let receptor = Arc::new(mudock_molio::synthetic_receptor(0xbe2c, 300, 9.0));
    let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.6);

    eprintln!(
        "serve_throughput: {jobs} jobs × {n_ligands} ligands on {threads} threads \
         (≥{MIN_SAMPLE_S} s per datapoint)"
    );
    let (elapsed, batches) = sample(|| {
        let handles: Vec<_> = (0..jobs)
            .map(|j| {
                service
                    .submit(JobSpec {
                        receptor: Arc::clone(&receptor),
                        ligands: LigandSource::synth(j as u64, n_ligands),
                        ..JobSpec::from(bench_campaign(j, dims))
                    })
                    .expect("bench jobs fit the queue")
            })
            .collect();
        for h in handles {
            assert_eq!(h.wait().state, JobState::Completed, "bench job failed");
        }
    });
    let stats = service.stats();
    service.shutdown();

    let total = (batches * jobs * n_ligands) as f64;
    let ligands_per_sec = total / elapsed.max(1e-9);

    // The loopback-socket datapoint: identical work, plus HTTP framing,
    // JSON codec, and polling. The gap between the two numbers *is* the
    // frontend overhead.
    let net = with_net.then(|| net_leg(n_ligands, jobs, threads, dims));
    // The reactor-under-load datapoint: throughput + p99 latency with a
    // herd of open keep-alive connections.
    let conc = (concurrency > 0)
        .then(|| concurrency_leg(n_ligands, jobs, threads, dims, concurrency, event_loops));
    // The multi-receptor datapoint: target churn through a capacity-1
    // cache with the spill tier on.
    let multi = (receptors > 0).then(|| multi_leg(n_ligands, receptors, threads));
    // The federation datapoint: the same jobs scattered across N member
    // nodes under a coordinator and gathered through the top-k merge.
    let clus = (cluster > 0).then(|| cluster_leg(n_ligands, jobs, threads, dims, cluster));

    let mut json = format!(
        concat!(
            "{{\"bench\":\"serve_throughput\",\"jobs\":{},\"ligands_per_job\":{},",
            "\"threads\":{},\"event_loops\":{},\"elapsed_s\":{:.4},\"ligands_per_sec\":{:.2},",
            "\"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4}}}"
        ),
        jobs,
        n_ligands,
        threads,
        event_loops,
        elapsed,
        ligands_per_sec,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate(),
    );
    if let Some((net_elapsed, net_lps)) = net {
        json.push_str(&format!(
            ",\"net\":{{\"elapsed_s\":{net_elapsed:.4},\"ligands_per_sec\":{net_lps:.2}}}"
        ));
        eprintln!(
            "network path: {net_lps:.1} ligands/s ({:.1} % of in-process)",
            100.0 * net_lps / ligands_per_sec.max(1e-9)
        );
    }
    if let Some((conc_elapsed, conc_lps, p50_ms, p99_ms)) = conc {
        json.push_str(&format!(
            concat!(
                ",\"net_concurrency\":{{\"connections\":{},\"elapsed_s\":{:.4},",
                "\"ligands_per_sec\":{:.2},\"p50_ms\":{:.3},\"p99_ms\":{:.3}}}"
            ),
            concurrency, conc_elapsed, conc_lps, p50_ms, p99_ms,
        ));
        eprintln!(
            "concurrency path ({concurrency} open conns, {event_loops} event loop(s)): \
             {conc_lps:.1} ligands/s, p50 {p50_ms:.2} ms, p99 {p99_ms:.2} ms"
        );
    }
    if let Some((multi_elapsed, multi_lps, spills, reloads)) = multi {
        json.push_str(&format!(
            concat!(
                ",\"multi\":{{\"receptors\":{},\"elapsed_s\":{:.4},",
                "\"ligands_per_sec\":{:.2},\"spills\":{},\"reloads\":{}}}"
            ),
            receptors, multi_elapsed, multi_lps, spills, reloads,
        ));
        eprintln!(
            "multi-receptor path ({receptors} targets): {multi_lps:.1} ligands/s, \
             {spills} spills / {reloads} reloads"
        );
    }
    if let Some((clus_elapsed, clus_lps)) = clus {
        json.push_str(&format!(
            concat!(
                ",\"cluster\":{{\"nodes\":{},\"elapsed_s\":{:.4},",
                "\"ligands_per_sec\":{:.2}}}"
            ),
            cluster, clus_elapsed, clus_lps,
        ));
        eprintln!(
            "cluster path ({cluster} member nodes): {clus_lps:.1} ligands/s \
             ({:.1} % of in-process)",
            100.0 * clus_lps / ligands_per_sec.max(1e-9)
        );
    }
    json.push_str("}\n");
    print!("{json}");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!(
        "{:.1} ligands/s, cache hit rate {:.0} % → BENCH_serve.json",
        ligands_per_sec,
        100.0 * stats.cache.hit_rate()
    );
}
