//! Service-layer throughput benchmark: push a synthetic screening
//! campaign through `mudock-serve` and record ligands/sec plus the grid
//! cache hit rate in `BENCH_serve.json` — the baseline every future
//! serve-layer optimization is measured against.
//!
//! ```text
//! cargo run --release -p mudock-bench --bin serve_throughput [ligands_per_job] [jobs]
//! ```
//!
//! Thread count follows `MUDOCK_THREADS` (see `mudock_pool`), so CI runs
//! are reproducible.

use std::sync::Arc;

use mudock_core::{Campaign, ChunkPolicy};
use mudock_grids::GridDims;
use mudock_mol::Vec3;
use mudock_serve::{JobSpec, JobState, LigandSource, ScreenService, ServeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_ligands: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let jobs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let threads = mudock_pool::default_threads();

    let service = ScreenService::start(ServeConfig {
        total_threads: threads,
        job_slots: 2,
        ..ServeConfig::default()
    });
    // Every job screens the same target — the virtual-screening shape —
    // so all builds after the first are cache hits.
    let receptor = Arc::new(mudock_molio::synthetic_receptor(0xbe2c, 300, 9.0));
    let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.6);

    eprintln!("serve_throughput: {jobs} jobs × {n_ligands} ligands on {threads} threads");
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|j| {
            let campaign = Campaign::builder()
                .name(format!("bench-{j}"))
                .population(25)
                .generations(30)
                .seed(0xbe2c)
                .search_radius(5.0)
                .top_k(10)
                .chunk(ChunkPolicy::Fixed(8))
                .grid_dims(dims)
                .build()
                .expect("the bench campaign is valid");
            service
                .submit(JobSpec {
                    receptor: Arc::clone(&receptor),
                    ligands: LigandSource::synth(j as u64, n_ligands),
                    ..JobSpec::from(campaign)
                })
                .expect("bench jobs fit the queue")
        })
        .collect();
    for h in handles {
        assert_eq!(h.wait().state, JobState::Completed, "bench job failed");
    }
    let elapsed = t0.elapsed();
    let stats = service.stats();
    service.shutdown();

    let total = (jobs * n_ligands) as f64;
    let ligands_per_sec = total / elapsed.as_secs_f64().max(1e-9);
    let json = format!(
        concat!(
            "{{\"bench\":\"serve_throughput\",\"jobs\":{},\"ligands_per_job\":{},",
            "\"threads\":{},\"elapsed_s\":{:.4},\"ligands_per_sec\":{:.2},",
            "\"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4}}}}}\n"
        ),
        jobs,
        n_ligands,
        threads,
        elapsed.as_secs_f64(),
        ligands_per_sec,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate(),
    );
    print!("{json}");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!(
        "{:.1} ligands/s, cache hit rate {:.0} % → BENCH_serve.json",
        ligands_per_sec,
        100.0 * stats.cache.hit_rate()
    );
}
