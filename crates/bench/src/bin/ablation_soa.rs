//! Ablation: AoS vs SoA ligand layout for the intra-energy kernel.
//!
//! The paper lists data-layout restructuring among the code
//! transformations needed for portable vectorization (Section IX). This
//! binary scores the same pair list with (a) an array-of-structs layout
//! with per-pair force-field lookups — the "natural" OOP layout — and
//! (b) the SoA layout with premultiplied coefficients the engine uses,
//! at every SIMD level.

use std::time::Instant;

use mudock_core::scoring::{intra_energy_simd, PairsSoA};
use mudock_core::LigandPrep;
use mudock_ff::params::{PairTable, NB_CUTOFF};
use mudock_ff::terms;
use mudock_mol::{ConformSoA, Vec3};
use mudock_simd::SimdLevel;

/// AoS atom record, as a straightforward implementation would hold it.
#[derive(Clone, Copy)]
struct AtomRec {
    pos: Vec3,
    ty: mudock_ff::AtomType,
    charge: f32,
}

/// AoS intra energy: per pair, look up force-field parameters by type and
/// evaluate with libm math — not vectorizable (pointer-chasing + calls).
fn intra_aos(atoms: &[AtomRec], pairs: &[(u32, u32)], table: &PairTable) -> f32 {
    let mut total = 0.0;
    for &(i, j) in pairs {
        let a = &atoms[i as usize];
        let b = &atoms[j as usize];
        let r = a.pos.distance(b.pos);
        if r * r > NB_CUTOFF * NB_CUTOFF {
            continue;
        }
        total += terms::pair_energy(table, a.ty, a.charge, b.ty, b.charge, r).total();
    }
    total
}

fn main() {
    let ligand = mudock_molio::synthetic_ligand(
        7,
        mudock_molio::LigandSpec {
            heavy_atoms: 40,
            torsions: 8,
        },
    );
    let prep = LigandPrep::new(ligand).expect("valid ligand");
    let conf = ConformSoA::from_molecule(&prep.mol);
    let table = PairTable::new();
    let pairs_soa = PairsSoA::build(&prep.mol, &prep.topo, &table);

    let atoms: Vec<AtomRec> = prep
        .mol
        .atoms
        .iter()
        .map(|a| AtomRec {
            pos: a.pos,
            ty: a.ty,
            charge: a.charge,
        })
        .collect();
    let reps = 2000;

    let time = |f: &mut dyn FnMut() -> f32| {
        let mut sink = 0.0;
        for _ in 0..reps / 10 {
            sink += f(); // warm-up
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            sink += f();
        }
        std::hint::black_box(sink);
        t0.elapsed().as_secs_f64() / reps as f64
    };

    println!("ABLATION: AoS + per-pair FF lookups vs SoA + premultiplied coefficients");
    println!(
        "ligand: {} atoms, {} scored pairs\n",
        prep.base.n, prep.pairs.n
    );
    let t_aos = time(&mut || intra_aos(&atoms, &prep.topo.pairs, &table));
    println!(
        "{:22} {:10.2} µs/eval  (baseline)",
        "aos+lookup+libm",
        t_aos * 1e6
    );
    for level in SimdLevel::available() {
        let t = time(&mut || intra_energy_simd(level, &conf, &pairs_soa));
        println!(
            "{:22} {:10.2} µs/eval  ({:.2}x)",
            format!("soa {level}"),
            t * 1e6,
            t_aos / t
        );
    }
    println!("\nExpected shape: at one lane the branchless SoA kernel can even lose");
    println!("(it evaluates every term for every pair, no early cutoff exit) — the");
    println!("layout pays off only through the vector widths it unlocks, which is");
    println!("precisely the paper's point about restructuring for vectorization.");
}
