//! Regenerates Figure 6 (performance-portability matrix + harmonic mean).
use mudock_archsim::Study;
fn main() {
    let study = Study::new();
    mudock_bench::report::fig6(&study);
}
