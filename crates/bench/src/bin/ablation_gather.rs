//! Ablation: the memory-lookup pattern in isolation (paper Section V).
//!
//! The inter-energy kernel is "frequent lookups into large constant data
//! structures". This binary sweeps the lookup-table size across the cache
//! hierarchy and measures gather throughput per SIMD level — the
//! transition from L1-resident to DRAM-resident tables is exactly the
//! memory-bound behaviour Tables IV/V quantify on the real machines.

use std::time::Instant;

use mudock_simd::{ops, SimdLevel};

fn main() {
    let n_idx = 8 * 1024;
    println!("ABLATION: gather throughput vs table size ({n_idx} gathers/eval)\n");
    println!(
        "{:>12} {}",
        "table",
        SimdLevel::available()
            .iter()
            .map(|l| format!("{:>12}", l.name()))
            .collect::<String>()
    );

    // 16 KiB (L1) → 64 MiB (DRAM-ish).
    for size_kib in [16usize, 128, 1024, 8 * 1024, 64 * 1024] {
        let table_len = size_kib * 1024 / 4;
        let table: Vec<f32> = (0..table_len).map(|i| (i % 97) as f32).collect();
        // Pseudo-random full-range index pattern (defeats prefetch).
        let idx: Vec<i32> = (0..n_idx)
            .map(|i| ((i as u64).wrapping_mul(0x9e37_79b9) % table_len as u64) as i32)
            .collect();
        let mut row = format!("{:>9} KiB", size_kib);
        for level in SimdLevel::available() {
            let reps = 400;
            let mut sink = 0.0f32;
            for _ in 0..20 {
                sink += ops::gather_sum(level, &table, &idx);
            }
            let t0 = Instant::now();
            for _ in 0..reps {
                sink += ops::gather_sum(level, &table, &idx);
            }
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(sink);
            let ns = dt / (reps as f64 * n_idx as f64) * 1e9;
            row.push_str(&format!("{:>9.2} ns", ns));
        }
        println!("{row}");
    }

    println!("\nExpected shape: SIMD width helps while the table is cache-resident");
    println!("(compute-bound gathers), then all levels converge to memory latency —");
    println!("the same crossover the paper's inter-energy kernel hits when the grid");
    println!("maps outgrow the LLC (Tables IV/V, Genoa multi-core).");
}
