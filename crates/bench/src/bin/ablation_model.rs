//! Ablation: sensitivity of the architecture model to the design
//! parameters DESIGN.md calls out — ROB size (the A64FX stall mechanism),
//! vector width (the SPR cost-model story), and LLC capacity (the
//! Table IV working-set story). Each sweep perturbs one parameter of a
//! real architecture config and re-runs the pipeline model on the same
//! workload trace.

use mudock_archsim::{arch, codegen, compiler, estimate, reduced_workload, workload};

fn main() {
    println!("building workload trace (runs real docking)…\n");
    let wl = reduced_workload();

    // ---- Sweep 1: ROB size on an A64FX-like core -----------------------
    println!("SWEEP 1: reorder-buffer size on A64FX (Clang codegen)");
    println!("{:>8} {:>12} {:>12}", "ROB", "time (s)", "stall frac");
    for rob in [64usize, 128, 192, 256, 320, 512] {
        let mut a = arch::a64fx();
        a.rob = rob;
        let cache = workload::replay(&a, &wl, 1);
        let cg = codegen(&compiler::CLANG, &a).unwrap();
        let est = estimate(&a, &cg, &wl, &cache);
        println!(
            "{:>8} {:>12.3} {:>12.2}",
            rob,
            est.seconds_per_ligand * wl.ligands as f64,
            est.stall_frac
        );
    }
    println!("expected: stalls collapse once the ROB covers the FP chains (~256) —");
    println!("the paper's Table II explanation for A64FX's 70 % stall fraction.\n");

    // ---- Sweep 2: emitted vector width on SPR ---------------------------
    println!("SWEEP 2: emitted vector width on SPR (the cost-model cap)");
    println!("{:>8} {:>12}", "bits", "time (s)");
    let spr = arch::spr();
    let cache = workload::replay(&spr, &wl, 1);
    let base = codegen(&compiler::CLANG, &spr).unwrap();
    for bits in [32usize, 128, 256, 512] {
        let mut cg = base;
        cg.vec_bits = bits;
        let est = estimate(&spr, &cg, &wl, &cache);
        println!(
            "{:>8} {:>12.3}",
            bits,
            est.seconds_per_ligand * wl.ligands as f64
        );
    }
    println!("expected: 256→512 still pays (HWY's win over Clang/GCC on SPR),");
    println!("with diminishing returns as gathers become the bottleneck.\n");

    // ---- Sweep 3: LLC capacity under the docking working set ------------
    println!("SWEEP 3: LLC capacity (A64FX CMG geometry, multi-core replay)");
    println!(
        "{:>10} {:>14} {:>14}",
        "LLC (MiB)", "llc miss rate", "dram MB/core"
    );
    for mib in [4usize, 8, 16, 32, 64] {
        let mut a = arch::a64fx();
        let last = a.caches.len() - 1;
        a.caches[last].size_kib = mib * 1024;
        let cores = a.llc().shared_by;
        let out = workload::replay(&a, &wl, cores);
        println!(
            "{:>10} {:>14.3e} {:>14.2}",
            mib,
            out.llc_miss_rate(),
            out.dram_bytes as f64 / cores as f64 / 1e6
        );
    }
    println!("expected: the miss rate falls off a cliff once the shared maps fit —");
    println!("the capacity knee behind Table IV's architecture ordering.");
}
