//! Regenerates the paper's Table I (CPU feature comparison).
fn main() {
    mudock_bench::report::table1();
}
