//! Regenerates the paper's Table V (arithmetic intensity single vs multi-core).
use mudock_archsim::Study;
fn main() {
    let study = Study::new();
    mudock_bench::report::table5(&study);
}
