//! Report generators: each function formats one table/figure of the paper
//! from a shared [`Study`], prints it, and writes a CSV under `results/`.
//! The harness binaries are thin wrappers over these.

use mudock_archsim::{all_archs, all_compilers, compiler, Study};

use crate::fmt;

fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Table I: CPU feature comparison.
pub fn table1() {
    let rows: Vec<Vec<String>> = all_archs()
        .iter()
        .map(|a| {
            vec![
                a.vendor.to_string(),
                a.name.to_string(),
                a.codename.to_string(),
                f(a.max_clock_ghz as f64, 1),
                a.cores_per_socket.to_string(),
                (a.cores_per_socket * a.threads_per_core).to_string(),
                a.vec_ext.to_string(),
                f(a.tdp_w as f64, 0),
                f(a.cost_per_node_hour as f64, 2),
                a.year.to_string(),
            ]
        })
        .collect();
    let headers = [
        "Vendor",
        "CPU",
        "Architecture",
        "Clock(GHz)",
        "Cores*",
        "Threads*",
        "VecExt",
        "TDP(W)",
        "$/NH",
        "Year",
    ];
    println!("TABLE I: Comparison of CPU Features (* per socket)\n");
    println!("{}", fmt::table(&headers, &rows));
    let _ = fmt::write_csv("table1_cpus.csv", &headers, &rows);
}

/// Table II: out-of-order resources.
pub fn table2() {
    let rows: Vec<Vec<String>> = all_archs()
        .iter()
        .map(|a| {
            vec![
                a.codename.to_string(),
                format!("{:?}", a.isa),
                a.scalar_regs.to_string(),
                a.vector_regs.to_string(),
                a.vec_exec_bits.to_string(),
                a.vec_pipes.to_string(),
                a.rob.to_string(),
            ]
        })
        .collect();
    let headers = [
        "Microarch",
        "ISA",
        "ScalarReg",
        "VectorReg",
        "VectorALU",
        "VectorPipes",
        "ROB",
    ];
    println!("TABLE II: Comparison of CPUs out-of-order resources\n");
    println!("{}", fmt::table(&headers, &rows));
    let _ = fmt::write_csv("table2_ooo.csv", &headers, &rows);
}

/// Table III: compiler versions and flags.
pub fn table3() {
    let rows: Vec<Vec<String>> = all_compilers()
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.version.to_string(),
                c.flags_x86.unwrap_or("N/A").to_string(),
                c.flags_arm.unwrap_or("N/A").to_string(),
            ]
        })
        .collect();
    let headers = ["Compiler", "Version", "Flags (x86)", "Flags (ARM)"];
    println!("TABLE III: Compiler versions and flags\n");
    println!("{}", fmt::table(&headers, &rows));
    let _ = fmt::write_csv("table3_flags.csv", &headers, &rows);
}

/// Table IV: LLC miss rates, single vs multi-core (Clang).
pub fn table4(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .tables45()
        .iter()
        .map(|r| {
            vec![
                r.arch.clone(),
                format!("{:.2e}", r.llc_miss_single),
                format!("{:.2e}", r.llc_miss_multi),
            ]
        })
        .collect();
    let headers = ["Arch", "Single-core", "Multi-core"];
    println!("TABLE IV (modeled): LLC miss-rate for Clang\n");
    println!("{}", fmt::table(&headers, &rows));
    println!(
        "paper: Grace 1.0e-4→3.4e-4, SPR 2.0e-7→1.0e-5, Genoa 8.7e-5→2.1e-2, A64FX 6.9e-6→7.2e-4\n"
    );
    let _ = fmt::write_csv("table4_llc.csv", &headers, &rows);
}

/// Table V: arithmetic intensity, single vs multi-core (Clang).
pub fn table5(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .tables45()
        .iter()
        .map(|r| vec![r.arch.clone(), f(r.ai_single, 0), f(r.ai_multi, 0)])
        .collect();
    let headers = ["Arch", "AI single", "AI multi"];
    println!("TABLE V (modeled): Arithmetic intensity for Clang\n");
    println!("{}", fmt::table(&headers, &rows));
    println!("paper: Grace 21→9313, SPR 133→12762, Genoa 184→96, A64FX 3700→34\n");
    let _ = fmt::write_csv("table5_ai.csv", &headers, &rows);
}

fn figure_bars(title: &str, csv: &str, points: &[(String, String, f64)], unit: &str) {
    let max = points.iter().map(|p| p.2).fold(0.0f64, f64::max);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(a, c, v)| vec![a.clone(), c.clone(), f(*v, 3), fmt::bar(*v, max, 44)])
        .collect();
    let headers = ["Arch", "Compiler", unit, ""];
    println!("{title}\n");
    println!("{}", fmt::table(&headers, &rows));
    let _ = fmt::write_csv(
        csv,
        &["arch", "compiler", unit],
        &rows.iter().map(|r| r[..3].to_vec()).collect::<Vec<_>>(),
    );
}

/// Figure 2a: single-core execution time, reduced dataset.
pub fn fig2a(study: &Study) {
    let pts: Vec<(String, String, f64)> = study
        .fig2a()
        .into_iter()
        .map(|p| (p.arch, p.compiler, p.value))
        .collect();
    figure_bars(
        "FIGURE 2a (modeled): single-core execution time, reduced dataset",
        "fig2a_single_core.csv",
        &pts,
        "seconds",
    );
    println!("paper shape: HWY fastest on SPR; FCC fastest on A64FX; GCC off-scale on A64FX (444 s); Clang best on Grace/Graviton\n");
}

/// Figure 2b: full-node execution time, MEDIATE-like dataset.
pub fn fig2b(study: &Study) {
    let pts: Vec<(String, String, f64)> = study
        .fig2b()
        .into_iter()
        .map(|p| (p.arch, p.compiler, p.value))
        .collect();
    figure_bars(
        "FIGURE 2b (modeled): full-node execution time, MEDIATE-like dataset",
        "fig2b_multi_core.csv",
        &pts,
        "seconds",
    );
    println!("paper shape: x86 nodes fastest; Graviton comparable to Genoa; A64FX & Grace slower; GCC-on-ARM off-scale\n");
}

/// Figure 3: vectorization ratio + speedup over the no-vec baseline.
pub fn fig3(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .fig3()
        .iter()
        .map(|p| {
            vec![
                p.arch.clone(),
                p.compiler.clone(),
                f(p.vec_ratio, 2),
                f(p.speedup, 2),
                fmt::bar(p.speedup, 8.0, 32),
            ]
        })
        .collect();
    let headers = ["Arch", "Compiler", "Vect-Ratio", "Speedup", ""];
    println!("FIGURE 3 (modeled): vectorization ratio and speedup vs no-vec\n");
    println!("{}", fmt::table(&headers, &rows));
    println!("paper shape: ratio ≈ 1 when vectorization succeeds; ≈ 0 for GCC/NVCC on ARM; largest speedups on 512-bit machines, smallest on Genoa\n");
    let _ = fmt::write_csv(
        "fig3_vectorization.csv",
        &["arch", "compiler", "vect_ratio", "speedup"],
        &rows.iter().map(|r| r[..4].to_vec()).collect::<Vec<_>>(),
    );
}

/// Figure 4: pipeline stall fraction.
pub fn fig4(study: &Study) {
    let pts: Vec<(String, String, f64)> = study
        .fig4()
        .into_iter()
        .map(|p| (p.arch, p.compiler, p.value))
        .collect();
    figure_bars(
        "FIGURE 4 (modeled): stall fraction of the execution pipeline",
        "fig4_stalls.csv",
        &pts,
        "stall-frac",
    );
    println!("paper shape: ≈70 % of A64FX cycles are stalls (small ROB); far less elsewhere\n");
}

/// Figure 5: rooflines per architecture with kernel points.
pub fn fig5(study: &Study) {
    println!("FIGURE 5 (modeled): rooflines (log-log; series in CSV)\n");
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for plot in study.fig5() {
        println!(
            "{}: peak {:.0} GFLOP/s, bw {:.0} GB/s, ridge AI {:.2}",
            plot.arch,
            plot.roofline.peak_gflops(),
            plot.roofline.ridge_ai(),
            plot.roofline.ridge_ai()
        );
        for c in &plot.roofline.ceilings {
            println!("  ceiling {:<16} {:>10.1} GFLOP/s", c.name, c.gflops);
        }
        for (comp, ai, gflops) in &plot.points {
            println!(
                "  kernel  {:<8} AI {:>9.1} FLOP/B  attained {:>8.2} GFLOP/s ({:.0}% of roof)",
                comp,
                ai,
                gflops,
                100.0 * gflops / plot.roofline.attainable(*ai)
            );
            csv_rows.push(vec![
                plot.arch.clone(),
                comp.clone(),
                f(*ai, 2),
                f(*gflops, 3),
            ]);
        }
        println!();
    }
    println!(
        "paper shape: all kernel points sit right of the ridge (compute-bound), Section VIII-b\n"
    );
    let _ = fmt::write_csv(
        "fig5_roofline.csv",
        &["arch", "compiler", "ai_flop_per_byte", "gflops"],
        &csv_rows,
    );
}

/// Figure 6: performance-portability matrix + harmonic means.
pub fn fig6(study: &Study) {
    let m = study.fig6();
    println!("FIGURE 6 (modeled): application performance portability\n");
    let mut rows = Vec::new();
    for (r, arch) in m.archs.iter().enumerate() {
        let mut row = vec![arch.clone()];
        for c in 0..m.compilers.len() {
            row.push(match m.eff[r][c] {
                Some(e) => f(e, 2),
                None => "-".into(),
            });
        }
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["Arch"];
    for c in &m.compilers {
        headers.push(c);
    }
    println!("{}", fmt::table(&headers, &rows));
    let h = m.harmonic_means();
    print!("HarmonicMean  ");
    for (c, v) in m.compilers.iter().zip(&h) {
        print!("{c}={v:.2}  ");
    }
    println!("\npaper: GCC=0.33 Clang=0.86 HWY=0.83, vendor compilers 0.00\n");
    let _ = fmt::write_csv(
        "fig6_portability.csv",
        &headers.iter().map(|s| &**s).collect::<Vec<_>>(),
        &rows,
    );
}

/// Figure 7: cost and energy per ligand.
pub fn fig7(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .fig7()
        .iter()
        .map(|p| {
            vec![
                p.arch.clone(),
                p.compiler.clone(),
                format!("{:.3}", p.cost_per_ligand * 1e4),
                f(p.energy_per_ligand, 3),
            ]
        })
        .collect();
    let headers = ["Arch", "Compiler", "Cost (1e-4 $)", "Energy (J)"];
    println!("FIGURE 7 (modeled): cost and energy per evaluated ligand\n");
    println!("{}", fmt::table(&headers, &rows));
    println!("paper shape: ARM cheapest per ligand (A64FX best value, SPR close); GCC-on-ARM spikes energy; Grace expensive (GPU-inclusive node pricing)\n");
    let _ = fmt::write_csv(
        "fig7_cost_energy.csv",
        &["arch", "compiler", "cost_usd", "energy_j"],
        &rows,
    );
}

/// Host ground truth: real measurements of the Rust backends on this
/// machine (the experimental axis the model's compiler profiles rest on).
pub fn host_backends(n_poses: usize) {
    let wl = crate::HostWorkload::standard(n_poses);
    let rows: Vec<Vec<String>> = wl
        .backend_comparison()
        .into_iter()
        .map(|(name, secs, speedup)| {
            vec![
                name,
                format!("{:.2}", secs * 1e6),
                f(speedup, 2),
                fmt::bar(speedup, 8.0, 32),
            ]
        })
        .collect();
    let headers = ["Backend", "µs/pose", "Speedup vs reference", ""];
    println!("HOST GROUND TRUTH: pose-scoring backends on this machine\n");
    println!("{}", fmt::table(&headers, &rows));
    let _ = fmt::write_csv(
        "host_backends.csv",
        &["backend", "us_per_pose", "speedup"],
        &rows.iter().map(|r| r[..3].to_vec()).collect::<Vec<_>>(),
    );
}

/// Sanity: make sure every compiler/arch pair the paper evaluates is
/// covered by the study (used by `paper_all`).
pub fn coverage(study: &Study) -> usize {
    let mut n = 0;
    for a in &study.archs {
        for c in &study.compilers {
            if compiler::codegen(c, a).is_some() {
                n += 1;
            }
        }
    }
    n
}
