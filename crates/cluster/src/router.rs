//! Routing: which member gets a (sub-)job.
//!
//! This is `shard::ShardRouter`'s receptor-affinity idea lifted one
//! level: instead of arbitrating executor slots between per-receptor
//! queues inside a node, the coordinator steers a submission to the
//! *node* whose shard table already holds that receptor's grid
//! fingerprint — in memory or in the spill tier, either way the grids
//! exist there and the dominant fixed cost (an AutoGrid build) is
//! already paid.
//!
//! Decision order:
//!
//! 1. **Affinity** — among alive members whose cached shard table
//!    (see [`Membership`](crate::membership::Membership)) contains the
//!    receptor fingerprint, pick the least-loaded. Applies to
//!    whole-job placement only; see [`Router::route`] for why
//!    scattered windows opt out.
//! 2. **Occupancy fallback** — no member known to hold the receptor:
//!    pick the least-loaded alive member, where load is
//!    locally-tracked in-flight sub-jobs plus the member's
//!    remotely-reported `queued + active`.
//!
//! Ties break by round-robin position, so a burst of fresh receptors
//! against an idle cluster spreads across members instead of piling on
//! member zero — which is also what makes the CI smoke's
//! distinct-member assertion deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::membership::Member;

/// Why a member was chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteReason {
    /// The member's shard table already holds the receptor.
    Affinity,
    /// Fallback: the least-occupied alive member.
    Occupancy,
}

/// Round-robin cursor shared across decisions (one per coordinator).
#[derive(Default)]
pub struct Router {
    cursor: AtomicUsize,
}

impl Router {
    pub fn new() -> Router {
        Router::default()
    }

    /// Pick a member among `candidates` (the alive set, possibly minus
    /// members being failed over from). Returns `None` when no
    /// candidate is left.
    ///
    /// `fingerprint` is `Some` only for **whole-job** placement: a
    /// scattered job's windows all share one receptor fingerprint, so
    /// honoring affinity there would pile every window onto the first
    /// member whose shard table lists the receptor — the probe round
    /// races the dispatch loop and can flip `has_shard` mid-fan-out,
    /// collapsing the scatter onto one node. Scattered windows pass
    /// `None` and spread by occupancy instead: the fan-out needs K
    /// members either way, and each pays its grid build exactly once.
    pub fn route(
        &self,
        candidates: &[Arc<Member>],
        fingerprint: Option<u64>,
    ) -> Option<(Arc<Member>, RouteReason)> {
        if candidates.is_empty() {
            return None;
        }
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % candidates.len();
        if let Some(fp) = fingerprint {
            let with_affinity: Vec<&Arc<Member>> =
                candidates.iter().filter(|m| m.has_shard(fp)).collect();
            if !with_affinity.is_empty() {
                let m = Self::least_loaded(&with_affinity, start);
                return Some((Arc::clone(m), RouteReason::Affinity));
            }
        }
        let all: Vec<&Arc<Member>> = candidates.iter().collect();
        let m = Self::least_loaded(&all, start);
        Some((Arc::clone(m), RouteReason::Occupancy))
    }

    /// Minimal `(load, round-robin distance)` over the pool. Load mixes
    /// the coordinator's own in-flight count (fresh) with the member's
    /// last-reported queue depth (laggy but covers foreign clients).
    fn least_loaded<'a>(pool: &[&'a Arc<Member>], start: usize) -> &'a Arc<Member> {
        pool.iter()
            .enumerate()
            .min_by_key(|(i, m)| {
                let load = m.inflight() as u64 + m.remote_load();
                let rr_distance = (i + pool.len() - start % pool.len()) % pool.len();
                (load, rr_distance)
            })
            .map(|(_, m)| *m)
            .expect("pool is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::Membership;
    use crate::metrics::ClusterMetrics;
    use mudock_obs::Registry;
    use std::time::Duration;

    fn members(n: usize) -> Vec<Arc<Member>> {
        let addrs: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 4000 + i)).collect();
        let metrics = Arc::new(ClusterMetrics::register(&Registry::new()));
        Membership::new(&addrs, 3, Duration::from_millis(10), metrics)
            .members()
            .to_vec()
    }

    #[test]
    fn empty_candidate_set_routes_nowhere() {
        let r = Router::new();
        assert!(r.route(&[], Some(1)).is_none());
    }

    #[test]
    fn round_robin_spreads_equal_load() {
        let ms = members(2);
        let r = Router::new();
        let (first, reason) = r.route(&ms, Some(0xf00)).expect("two candidates");
        assert_eq!(reason, RouteReason::Occupancy);
        // The chosen member now carries an in-flight sub-job; the next
        // equal-affinity decision must land on the other one.
        first.begin_subjob();
        let (second, _) = r.route(&ms, Some(0xbaa)).expect("two candidates");
        assert_ne!(first.addr, second.addr, "load must spread");
    }

    #[test]
    fn affinity_beats_an_idle_stranger() {
        let ms = members(3);
        let r = Router::new();
        crate::membership::set_shards_for_test(&ms[2], &[0xf00d]);
        // The affinity holder is busier than the idle members — it
        // still wins: a queued job there beats an AutoGrid rebuild
        // elsewhere.
        ms[2].begin_subjob();
        for _ in 0..4 {
            let (m, reason) = r.route(&ms, Some(0xf00d)).expect("candidates");
            assert_eq!(reason, RouteReason::Affinity);
            assert_eq!(m.addr, ms[2].addr);
        }
        // A receptor nobody holds falls back to occupancy.
        let (_, reason) = r.route(&ms, Some(0xbeef)).expect("candidates");
        assert_eq!(reason, RouteReason::Occupancy);
    }

    #[test]
    fn scattered_windows_ignore_affinity_and_spread() {
        // One member holds the shard; a scattered fan-out (fingerprint
        // None) must still spread across members instead of piling onto
        // the holder.
        let ms = members(2);
        let r = Router::new();
        crate::membership::set_shards_for_test(&ms[0], &[0xf00d]);
        let (first, reason) = r.route(&ms, None).expect("candidates");
        assert_eq!(reason, RouteReason::Occupancy);
        first.begin_subjob();
        let (second, reason) = r.route(&ms, None).expect("candidates");
        assert_eq!(reason, RouteReason::Occupancy);
        assert_ne!(
            first.addr, second.addr,
            "windows must land on distinct members"
        );
    }

    #[test]
    fn inflight_load_beats_round_robin() {
        let ms = members(2);
        let r = Router::new();
        ms[0].begin_subjob();
        ms[0].begin_subjob();
        for _ in 0..4 {
            let (m, _) = r.route(&ms, Some(7)).expect("candidates");
            assert_eq!(m.addr, ms[1].addr, "idle member wins regardless of cursor");
        }
    }
}
