//! Member tracking: liveness, restart detection, and the cached view of
//! each node's receptor-shard table.
//!
//! The health thread probes `GET /healthz` on every member at a fixed
//! interval, with per-member exponential backoff once a member starts
//! failing (a dead node must not stall the probe round that everyone
//! else shares). A member is marked [`MemberState::Dead`] after
//! `dead_after` *consecutive* failures — one lost packet does not
//! trigger re-dispatch — and revives on the first successful probe.
//!
//! Two more signals ride on the probe round:
//!
//! * **restart detection** — `/healthz` carries the node's boot-random
//!   id; a changed id behind the same address means the process
//!   restarted (grid cache cold, in-flight sub-jobs gone), so the
//!   cached shard table is dropped even though the socket kept
//!   answering;
//! * **shard-table refresh** — alive members also serve `GET /stats`;
//!   the body is fingerprinted (FNV, ETag-style) and only a *changed*
//!   body is re-parsed and bumps the member's `stats_generation`. The
//!   router reads this cache; it never blocks on a network round-trip.
//!
//! Dispatch-path failures (`report_failure`) feed the same consecutive
//! counter, so a member that refuses connections mid-campaign goes dead
//! without waiting for the next probe round.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mudock_grids::Fnv64;
use mudock_serve::net::client::{self, ClientError};
use mudock_serve::wire::{self, Json};

use crate::metrics::ClusterMetrics;

/// Liveness of one member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    Alive,
    Dead,
}

impl MemberState {
    pub fn name(self) -> &'static str {
        match self {
            MemberState::Alive => "alive",
            MemberState::Dead => "dead",
        }
    }
}

/// The cached parse of one member's `GET /stats` body.
#[derive(Clone, Debug, Default)]
pub struct MemberStats {
    /// Receptor-shard fingerprints the node has seen (grid cache or
    /// spill tier) — the affinity signal.
    pub shard_keys: Vec<u64>,
    /// Jobs queued across all shards.
    pub queued: u64,
    /// Jobs actively executing across all shards.
    pub active: u64,
}

/// Mutable per-member tracking, behind the member's lock.
#[derive(Debug)]
struct MemberInner {
    state: MemberState,
    /// Boot-random id from `/healthz`; `None` until first contact.
    node: Option<u64>,
    consecutive_failures: u32,
    /// Times the node id changed behind this address.
    restarts: u64,
    /// Cached shard table, refreshed by the probe round.
    stats: MemberStats,
    /// FNV of the last `/stats` body (the ETag).
    stats_hash: u64,
    /// Bumped every time the body actually changed.
    stats_generation: u64,
    /// Probe backoff: skip probing until this instant.
    next_probe: Option<Instant>,
}

/// One member node: its address plus tracked state. Sub-job dispatch
/// counts ride in an atomic so the router can read occupancy without
/// the lock.
pub struct Member {
    pub addr: String,
    inner: Mutex<MemberInner>,
    /// Sub-jobs dispatched by *this* coordinator and not yet terminal —
    /// the freshest occupancy signal we have (remote stats lag).
    inflight: AtomicUsize,
}

/// Point-in-time view of one member, for `/stats`.
#[derive(Clone, Debug)]
pub struct MemberSnapshot {
    pub addr: String,
    pub state: MemberState,
    pub node: Option<u64>,
    pub consecutive_failures: u32,
    pub restarts: u64,
    pub inflight: usize,
    pub stats_generation: u64,
    pub shard_count: usize,
}

impl Member {
    fn new(addr: String) -> Member {
        Member {
            addr,
            inner: Mutex::new(MemberInner {
                // Optimistic until proven otherwise: jobs submitted
                // before the first probe round should dispatch.
                state: MemberState::Alive,
                node: None,
                consecutive_failures: 0,
                restarts: 0,
                stats: MemberStats::default(),
                stats_hash: 0,
                stats_generation: 0,
                next_probe: None,
            }),
            inflight: AtomicUsize::new(0),
        }
    }

    pub fn state(&self) -> MemberState {
        self.inner.lock().unwrap().state
    }

    /// Locally-tracked in-flight sub-jobs.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    pub fn begin_subjob(&self) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
    }

    pub fn end_subjob(&self) {
        // Saturating: a double-end is a bug upstream, but must not wrap
        // the occupancy signal into "infinitely busy".
        let _ = self
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Does the cached shard table hold this receptor fingerprint?
    pub fn has_shard(&self, fingerprint: u64) -> bool {
        self.inner
            .lock()
            .unwrap()
            .stats
            .shard_keys
            .contains(&fingerprint)
    }

    /// Remote occupancy (queued + active) from the cached stats.
    pub fn remote_load(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.stats.queued + inner.stats.active
    }

    pub fn snapshot(&self) -> MemberSnapshot {
        let inner = self.inner.lock().unwrap();
        MemberSnapshot {
            addr: self.addr.clone(),
            state: inner.state,
            node: inner.node,
            consecutive_failures: inner.consecutive_failures,
            restarts: inner.restarts,
            inflight: self.inflight(),
            stats_generation: inner.stats_generation,
            shard_count: inner.stats.shard_keys.len(),
        }
    }
}

/// The member set plus the probe/backoff policy.
pub struct Membership {
    members: Vec<Arc<Member>>,
    /// Consecutive failures before a member is marked dead.
    dead_after: u32,
    /// Base probe spacing; failures back off exponentially from here.
    probe_interval: Duration,
    metrics: Arc<ClusterMetrics>,
}

impl Membership {
    pub fn new(
        addrs: &[String],
        dead_after: u32,
        probe_interval: Duration,
        metrics: Arc<ClusterMetrics>,
    ) -> Membership {
        let members: Vec<Arc<Member>> = addrs
            .iter()
            .map(|a| Arc::new(Member::new(a.clone())))
            .collect();
        metrics.members_alive.set(members.len() as i64);
        metrics.members_dead.set(0);
        Membership {
            members,
            dead_after: dead_after.max(1),
            probe_interval,
            metrics,
        }
    }

    pub fn members(&self) -> &[Arc<Member>] {
        &self.members
    }

    pub fn alive(&self) -> Vec<Arc<Member>> {
        self.members
            .iter()
            .filter(|m| m.state() == MemberState::Alive)
            .cloned()
            .collect()
    }

    pub fn snapshot(&self) -> Vec<MemberSnapshot> {
        self.members.iter().map(|m| m.snapshot()).collect()
    }

    /// One probe round: health-check every member whose backoff has
    /// elapsed, refresh alive members' shard tables. Runs on the health
    /// thread; dispatch never waits on this.
    pub fn probe_all(&self) {
        for member in &self.members {
            {
                let inner = member.inner.lock().unwrap();
                if let Some(next) = inner.next_probe {
                    if Instant::now() < next {
                        continue;
                    }
                }
            }
            self.probe(member);
        }
        self.publish_gauges();
    }

    /// Probe one member: `/healthz` for liveness + identity, then (on
    /// success) `/stats` for the shard table.
    fn probe(&self, member: &Arc<Member>) {
        let mut conn = client::Client::new(&member.addr);
        match conn.health() {
            Ok(health) => {
                self.record_success(member, health.node);
                self.refresh_stats(member, &mut conn);
            }
            Err(_) => self.record_failure(member),
        }
    }

    /// A dispatch-path error against this member. Connect-refused and
    /// timeouts count toward death (the node is unreachable or wedged);
    /// HTTP/decode errors do not — the node answered, the request was
    /// just bad.
    pub fn report_failure(&self, member: &Arc<Member>, err: &ClientError) {
        match err {
            ClientError::ConnectRefused(_) | ClientError::Timeout(_) | ClientError::Io(_) => {
                self.record_failure(member);
                self.publish_gauges();
            }
            ClientError::Http { .. } | ClientError::Wire(_) => {}
        }
    }

    fn record_success(&self, member: &Arc<Member>, node: Option<u64>) {
        let mut inner = member.inner.lock().unwrap();
        inner.state = MemberState::Alive;
        inner.consecutive_failures = 0;
        inner.next_probe = None;
        if let (Some(old), Some(new)) = (inner.node, node) {
            if old != new {
                // Same address, new boot: the node restarted. Its grid
                // cache is cold and its job table empty — drop the
                // cached shard view so affinity re-learns from scratch.
                inner.restarts += 1;
                inner.stats = MemberStats::default();
                inner.stats_hash = 0;
                inner.stats_generation += 1;
                self.metrics.member_restarts.inc();
            }
        }
        if node.is_some() {
            inner.node = node;
        }
    }

    fn record_failure(&self, member: &Arc<Member>) {
        let mut inner = member.inner.lock().unwrap();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        self.metrics.probe_failures.inc();
        if inner.consecutive_failures >= self.dead_after {
            inner.state = MemberState::Dead;
        }
        // Exponential backoff, capped at 32× the base interval: a dead
        // member keeps being probed (it may come back) but cheaply.
        let shift = inner.consecutive_failures.min(5);
        inner.next_probe = Some(Instant::now() + self.probe_interval * (1u32 << shift));
    }

    /// Refresh the cached shard table, ETag-style: hash the body first
    /// and re-parse only when it changed.
    fn refresh_stats(&self, member: &Arc<Member>, conn: &mut client::Client) {
        let body = match conn.request("GET", "/stats", None).and_then(|r| r.ok()) {
            Ok(resp) => resp.body,
            // Stats failing while healthz succeeds is odd but not
            // fatal; keep the stale cache and let liveness stand.
            Err(_) => return,
        };
        let hash = Fnv64::new().write(body.as_bytes()).finish();
        let mut inner = member.inner.lock().unwrap();
        if inner.stats_hash == hash {
            return; // unchanged body — cached parse stays valid
        }
        if let Some(stats) = parse_member_stats(&body) {
            inner.stats = stats;
            inner.stats_hash = hash;
            inner.stats_generation += 1;
        }
    }

    fn publish_gauges(&self) {
        let alive = self
            .members
            .iter()
            .filter(|m| m.state() == MemberState::Alive)
            .count();
        self.metrics.members_alive.set(alive as i64);
        self.metrics
            .members_dead
            .set((self.members.len() - alive) as i64);
    }
}

/// Unit-test hook: plant a shard table without a network round.
#[cfg(test)]
pub(crate) fn set_shards_for_test(member: &Member, keys: &[u64]) {
    member.inner.lock().unwrap().stats.shard_keys = keys.to_vec();
}

/// Pull the affinity + occupancy signals out of a node's `GET /stats`
/// body: the shard table's `%016x` keys and the summed queue depths.
fn parse_member_stats(body: &str) -> Option<MemberStats> {
    let v = wire::parse(body).ok()?;
    let mut stats = MemberStats::default();
    if let Some(Json::Arr(shards)) = v.get("shards") {
        for shard in shards {
            if let Some(Json::Str(key)) = shard.get("key") {
                if let Ok(k) = u64::from_str_radix(key, 16) {
                    stats.shard_keys.push(k);
                }
            }
            let num = |field: &str| match shard.get(field) {
                Some(Json::Num(n)) => n.as_u64().unwrap_or(0),
                _ => 0,
            };
            stats.queued += num("queued");
            stats.active += num("active");
        }
    }
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_obs::Registry;

    fn membership(addrs: &[&str]) -> Membership {
        let metrics = Arc::new(ClusterMetrics::register(&Registry::new()));
        Membership::new(
            &addrs.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            3,
            Duration::from_millis(10),
            metrics,
        )
    }

    #[test]
    fn members_start_alive_and_die_after_consecutive_failures() {
        let ms = membership(&["127.0.0.1:1", "127.0.0.1:2"]);
        let m = &ms.members()[0];
        assert_eq!(m.state(), MemberState::Alive);
        ms.record_failure(m);
        ms.record_failure(m);
        assert_eq!(m.state(), MemberState::Alive, "two failures is not dead");
        ms.record_failure(m);
        assert_eq!(m.state(), MemberState::Dead);
        assert_eq!(ms.alive().len(), 1);
        // A successful probe revives it and resets the counter.
        ms.record_success(m, Some(7));
        assert_eq!(m.state(), MemberState::Alive);
        assert_eq!(m.snapshot().consecutive_failures, 0);
    }

    #[test]
    fn node_id_change_counts_a_restart_and_drops_the_shard_cache() {
        let ms = membership(&["127.0.0.1:1"]);
        let m = &ms.members()[0];
        ms.record_success(m, Some(1));
        {
            let mut inner = m.inner.lock().unwrap();
            inner.stats.shard_keys.push(0xabc);
            inner.stats_hash = 99;
        }
        assert!(m.has_shard(0xabc));
        ms.record_success(m, Some(2));
        assert!(!m.has_shard(0xabc), "restart must invalidate the cache");
        assert_eq!(m.snapshot().restarts, 1);
        // Same id again: no further restart counted.
        ms.record_success(m, Some(2));
        assert_eq!(m.snapshot().restarts, 1);
    }

    #[test]
    fn stats_parse_reads_shard_keys_and_occupancy() {
        let body = r#"{"shards":[
            {"key":"00000000000000ff","queued":2,"active":1,"weight":1.0,"submitted":3},
            {"key":"0000000000000a00","queued":0,"active":1,"weight":1.0,"submitted":1}
        ],"shard_count":2}"#;
        let stats = parse_member_stats(body).expect("parses");
        assert_eq!(stats.shard_keys, vec![0xff, 0xa00]);
        assert_eq!(stats.queued, 2);
        assert_eq!(stats.active, 2);
    }

    #[test]
    fn inflight_never_wraps() {
        let ms = membership(&["127.0.0.1:1"]);
        let m = &ms.members()[0];
        m.end_subjob();
        assert_eq!(m.inflight(), 0);
        m.begin_subjob();
        assert_eq!(m.inflight(), 1);
    }
}
