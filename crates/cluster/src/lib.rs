//! # mudock-cluster — receptor-affinity federation
//!
//! Turns N `mudock serve` nodes into one screening cluster. A
//! [`Coordinator`] listens on the exact HTTP/1.1 + wire-JSON dialect a
//! node speaks and federates both directions of it: submissions route
//! to members by **receptor affinity** (the node whose shard table
//! already holds the receptor's grid fingerprint — the AutoGrid build
//! is the dominant fixed cost, and it is already paid there), large
//! ligand libraries **scatter** across members as contiguous
//! [`LigandSlice`](mudock_serve::LigandSlice) windows, and partial
//! rankings **gather** back through
//! [`mudock_core::merge_ranked_partials`] into a result that is
//! bit-identical to a single-node run — same score bits, same tie
//! order.
//!
//! The moving parts, one module each:
//!
//! * [`membership`] — `/healthz` probing with per-member backoff,
//!   dead-after-N-consecutive-failures, boot-id restart detection, and
//!   the ETag-cached view of each member's `/stats` shard table;
//! * [`router`] — affinity first, lowest-occupancy fallback,
//!   round-robin tiebreak;
//! * [`scatter`] — per-job gather loop: dispatch, poll, re-dispatch
//!   unfinished windows off dead members, merge;
//! * `http` (private) — the coordinator's routes, mounted on
//!   `serve::net`'s multi-loop readiness frontend (same event-loop
//!   pool, connection pinning, and `--event-loops` knob as a node);
//! * [`metrics`] — the `mudock_cluster_*` instrument families served
//!   at `GET /metrics`.
//!
//! No new dependencies, no new wire formats: members need nothing but
//! an up-to-date `mudock serve`, and anything that can talk to a node
//! can talk to the cluster.
//!
//! ```no_run
//! use mudock_cluster::{ClusterConfig, Coordinator};
//!
//! let coordinator = Coordinator::bind(
//!     "127.0.0.1:0",
//!     ClusterConfig {
//!         nodes: vec!["10.0.0.1:7000".into(), "10.0.0.2:7000".into()],
//!         ..ClusterConfig::default()
//!     },
//! )
//! .expect("bind");
//! println!("coordinating at {}", coordinator.local_addr());
//! ```

pub mod membership;
pub mod metrics;
pub mod router;
pub mod scatter;

mod http;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mudock_obs::Registry;
use mudock_serve::net::{FrontendBuilder, HttpFrontend, NetConfig};

pub use membership::{Member, MemberSnapshot, MemberState, Membership};
pub use metrics::ClusterMetrics;
pub use router::{RouteReason, Router};
pub use scatter::{ClusterJob, ClusterJobStatus};

/// Coordinator policy. The defaults suit a LAN of a few nodes; every
/// knob exists because a test or an operator needs to turn it.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Member node addresses (`host:port`, the `mudock serve` socket).
    pub nodes: Vec<String>,
    /// Base spacing between health-probe rounds.
    pub health_interval: Duration,
    /// Consecutive failures before a member is marked dead.
    pub dead_after: u32,
    /// Libraries below this many ligands are not worth fanning out —
    /// dispatch whole to one member.
    pub scatter_min_ligands: usize,
    /// Upper bound on scatter fan-out (actual lanes = min(alive, this)).
    pub max_parts: usize,
    /// How often the gather loop polls member sub-jobs.
    pub poll_interval: Duration,
    /// Dispatch attempts per window before the cluster job fails.
    pub max_attempts: u32,
    /// Forward submissions naming server-side file paths (same trust
    /// posture as `NetConfig::allow_path_sources`).
    pub allow_path_sources: bool,
    /// Terminal cluster jobs retained for late status/results reads.
    pub max_retained_jobs: usize,
    /// Event-loop threads for the frontend, exactly as
    /// [`mudock_serve::NetConfig::event_loops`]: `0` means
    /// auto (one per core, capped at 4).
    pub event_loops: usize,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            nodes: Vec::new(),
            health_interval: Duration::from_millis(500),
            dead_after: 3,
            scatter_min_ligands: 8,
            max_parts: 16,
            poll_interval: Duration::from_millis(20),
            max_attempts: 4,
            allow_path_sources: false,
            max_retained_jobs: 64,
            event_loops: 0,
        }
    }
}

/// A running coordinator: frontend listener + health thread + per-job
/// gather threads. Dropping it does *not* stop it; call
/// [`Coordinator::shutdown`].
pub struct Coordinator {
    addr: std::net::SocketAddr,
    state: Arc<http::CoordinatorState>,
    frontend: HttpFrontend,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Coordinator {
    /// Bind the frontend and start probing members. `listen` may use
    /// port 0; see [`Coordinator::local_addr`] for the resolved socket.
    pub fn bind(listen: &str, cfg: ClusterConfig) -> std::io::Result<Coordinator> {
        // The node's multi-loop readiness frontend, with
        // coordinator-shaped limits: bodies are generous (inline ligand
        // libraries ride through on their way to members), idle
        // keep-alive connections are bounded tighter than a node's.
        let builder = FrontendBuilder::bind(
            listen,
            NetConfig {
                max_body_bytes: 64 << 20,
                idle_timeout: Duration::from_secs(30),
                event_loops: cfg.event_loops,
                ..NetConfig::default()
            },
        )?;
        let addr = builder.local_addr();

        let registry = Registry::new();
        let metrics = Arc::new(ClusterMetrics::register(&registry));
        let membership = Arc::new(Membership::new(
            &cfg.nodes,
            cfg.dead_after,
            cfg.health_interval,
            Arc::clone(&metrics),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(http::CoordinatorState {
            membership: Arc::clone(&membership),
            router: Arc::new(Router::new()),
            metrics,
            cfg: cfg.clone(),
            jobs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            node_id: http::boot_node_id(addr),
            stop: Arc::clone(&stop),
        });
        let frontend = builder.start(
            Arc::new(http::CoordinatorRoutes(Arc::clone(&state))),
            &registry,
        )?;

        let mut threads = Vec::new();
        {
            let stop = Arc::clone(&stop);
            let interval = cfg.health_interval;
            threads.push(
                std::thread::Builder::new()
                    .name("cluster-health".into())
                    .spawn(move || {
                        // First round immediately: warm the shard-table
                        // cache before the first submission arrives.
                        while !stop.load(Ordering::SeqCst) {
                            membership.probe_all();
                            // Sleep in short slices so shutdown is
                            // prompt even with long probe intervals.
                            let mut remaining = interval;
                            while !stop.load(Ordering::SeqCst) && remaining > Duration::ZERO {
                                let step = remaining.min(Duration::from_millis(20));
                                std::thread::sleep(step);
                                remaining = remaining.saturating_sub(step);
                            }
                        }
                    })?,
            );
        }
        Ok(Coordinator {
            addr,
            state,
            frontend,
            stop,
            threads,
        })
    }

    /// The bound frontend socket (resolved, if `listen` used port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// This coordinator's boot-random identity (as served by
    /// `/healthz`).
    pub fn node_id(&self) -> u64 {
        self.state.node_id
    }

    /// The membership view, for tests and embedding callers.
    pub fn membership(&self) -> &Membership {
        &self.state.membership
    }

    /// Stop the frontend, the health thread, and every gather loop.
    /// In-flight sub-jobs on members are left to finish or be evicted
    /// there; the coordinator stops tracking them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.frontend.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
