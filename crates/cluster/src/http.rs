//! The coordinator's HTTP frontend.
//!
//! Speaks the same HTTP/1.1 + wire-JSON dialect as a member node, on
//! purpose: a client pointed at a coordinator cannot tell it is not
//! talking to a single `mudock serve` — `POST /jobs`, `GET /jobs/{id}`,
//! `GET /jobs/{id}/results`, `DELETE /jobs/{id}`, `/healthz`, `/stats`
//! and `/metrics` all answer with the node frontend's shapes (status
//! bodies go through `wire::status_to_json` itself). The differences
//! are additive only: `/healthz` carries `"role":"coordinator"`, and
//! `/stats` describes members instead of shards.
//!
//! Unlike the node's epoll reactor (`serve::net`), this frontend is a
//! plain blocking thread-per-connection server. The coordinator's
//! request rate is human-scale — submissions and polls, not dock
//! chunks — so the readiness machinery would buy nothing here; what
//! matters is that the *dialect* matches, and the simple server is
//! easy to audit. Keep-alive with `Content-Length` framing is
//! supported; idle connections are bounded by a read timeout.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mudock_grids::grid_cache_key;
use mudock_serve::wire::{self, Json, WireError};
use mudock_serve::{JobState, StageTimings};

use crate::membership::Membership;
use crate::metrics::ClusterMetrics;
use crate::router::Router;
use crate::scatter::{self, ClusterJob, GatherConfig};
use crate::ClusterConfig;

/// Largest accepted request body. Generous: inline ligand libraries
/// ride through the coordinator on their way to members.
const MAX_BODY: usize = 64 * 1024 * 1024;

/// How long an idle keep-alive connection may sit before we close it.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything a request handler can reach.
pub(crate) struct CoordinatorState {
    pub membership: Arc<Membership>,
    pub router: Arc<Router>,
    pub metrics: Arc<ClusterMetrics>,
    pub cfg: ClusterConfig,
    pub jobs: Mutex<Vec<Arc<ClusterJob>>>,
    pub next_id: AtomicU64,
    /// Boot-random coordinator identity (same scheme as a node's).
    pub node_id: u64,
    /// Set at shutdown; gather loops and the accept loop watch it.
    pub stop: Arc<AtomicBool>,
}

impl CoordinatorState {
    fn job(&self, id: u64) -> Option<Arc<ClusterJob>> {
        self.jobs
            .lock()
            .unwrap()
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }
}

/// Accept loop: one OS thread per connection. Returns when `stop` is
/// raised. `listener` must already be non-blocking.
pub(crate) fn serve(listener: TcpListener, state: Arc<CoordinatorState>) {
    loop {
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name("cluster-conn".into())
                    .spawn(move || handle_conn(stream, state))
                    .ok();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_conn(stream: TcpStream, state: Arc<CoordinatorState>) {
    if stream.set_nonblocking(false).is_err() {
        return; // inherited the listener's non-blocking flag
    }
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IDLE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut request_line = String::new();
        match reader.read_line(&mut request_line) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(_) => return, // idle timeout or broken pipe
        }
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
            return;
        };
        let (method, path) = (method.to_string(), path.to_string());

        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut header = String::new();
            let n = match reader.read_line(&mut header) {
                Ok(n) => n,
                Err(_) => return,
            };
            let header = header.trim_end();
            if n == 0 || header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value.trim().eq_ignore_ascii_case("close");
                }
            }
        }
        if content_length > MAX_BODY {
            let _ = write_response(
                reader.get_mut(),
                413,
                "application/json",
                &error_body(format!("body exceeds {MAX_BODY} bytes")),
                true,
            );
            return;
        }
        let body = if content_length > 0 {
            let mut buf = vec![0u8; content_length];
            if reader.read_exact(&mut buf).is_err() {
                return;
            }
            Some(String::from_utf8_lossy(&buf).into_owned())
        } else {
            None
        };

        let (status, ctype, body) = route(&method, &path, body.as_deref(), &state);
        if write_response(reader.get_mut(), status, ctype, &body, close).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    ctype: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn error_body(message: impl Into<String>) -> String {
    Json::Obj(vec![("error".into(), Json::str(message.into()))]).encode()
}

type Response = (u16, &'static str, String);

fn json(status: u16, v: &Json) -> Response {
    (status, "application/json", v.encode())
}

fn error(status: u16, message: impl Into<String>) -> Response {
    (status, "application/json", error_body(message))
}

fn wire_error(e: &WireError) -> Response {
    error(e.http_status(), e.to_string())
}

fn route(
    method: &str,
    raw_path: &str,
    body: Option<&str>,
    state: &Arc<CoordinatorState>,
) -> Response {
    let path = raw_path.split('?').next().unwrap_or(raw_path);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => json(
            200,
            &Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("role".into(), Json::str("coordinator")),
                ("node".into(), Json::str(format!("{:016x}", state.node_id))),
                ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
            ]),
        ),
        ("GET", ["stats"]) => json(200, &stats_json(state)),
        ("GET", ["metrics"]) => (
            200,
            "text/plain; version=0.0.4",
            state.metrics.registry.render_prometheus(),
        ),
        ("POST", ["jobs"]) => submit(body, state),
        ("GET", ["jobs", id]) => with_job(state, id, |job| json(200, &status_json(job))),
        ("GET", ["jobs", id, "results"]) => {
            with_job(state, id, |job| (200, "application/jsonl", job.results()))
        }
        ("DELETE", ["jobs", id]) => with_job(state, id, |job| {
            job.cancel();
            json(200, &status_json(job))
        }),
        (_, ["jobs", ..]) | (_, ["healthz"]) | (_, ["stats"]) | (_, ["metrics"]) => {
            error(405, format!("method {method} not allowed on {path}"))
        }
        _ => error(404, format!("no route for {path}")),
    }
}

fn with_job(
    state: &Arc<CoordinatorState>,
    id: &str,
    f: impl FnOnce(&ClusterJob) -> Response,
) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return error(400, "job id must be an integer");
    };
    match state.job(id) {
        Some(job) => f(&job),
        None => error(404, format!("no such job {id}")),
    }
}

/// A cluster job's status in the node frontend's exact shape, so node
/// clients (`client::Client::wait`) work against the coordinator
/// unchanged. Stage timings are a node-level concept — per-part timings
/// live on the members — so the coordinator reports them empty.
fn status_json(job: &ClusterJob) -> Json {
    let s = job.status();
    wire::status_to_json(
        job.id,
        &job.name,
        s.state,
        s.ligands_done,
        s.chunks_done,
        &StageTimings::default(),
        s.outcome.as_ref(),
    )
}

fn stats_json(state: &Arc<CoordinatorState>) -> Json {
    let members: Vec<Json> = state
        .membership
        .snapshot()
        .into_iter()
        .map(|m| {
            Json::Obj(vec![
                ("addr".into(), Json::str(m.addr)),
                ("state".into(), Json::str(m.state.name())),
                (
                    "node".into(),
                    match m.node {
                        Some(id) => Json::str(format!("{id:016x}")),
                        None => Json::Null,
                    },
                ),
                (
                    "consecutive_failures".into(),
                    Json::u64(m.consecutive_failures as u64),
                ),
                ("restarts".into(), Json::u64(m.restarts)),
                ("inflight".into(), Json::usize(m.inflight)),
                ("stats_generation".into(), Json::u64(m.stats_generation)),
                ("shard_count".into(), Json::usize(m.shard_count)),
            ])
        })
        .collect();
    let (active, terminal) = {
        let jobs = state.jobs.lock().unwrap();
        let active = jobs
            .iter()
            .filter(|j| matches!(j.status().state, JobState::Queued | JobState::Running))
            .count();
        (active, jobs.len() - active)
    };
    Json::Obj(vec![
        ("role".into(), Json::str("coordinator")),
        ("node".into(), Json::str(format!("{:016x}", state.node_id))),
        ("members".into(), Json::Arr(members)),
        (
            "jobs".into(),
            Json::Obj(vec![
                ("active".into(), Json::usize(active)),
                ("terminal".into(), Json::usize(terminal)),
            ]),
        ),
    ])
}

fn submit(body: Option<&str>, state: &Arc<CoordinatorState>) -> Response {
    let Some(body) = body else {
        return error(400, "POST /jobs requires a JSON body");
    };
    let parsed = match wire::parse(body) {
        Ok(v) => v,
        Err(e) => return wire_error(&e),
    };
    let sub = match wire::submission_from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return wire_error(&e),
    };
    // Same trust posture as a node: a path source would make *members*
    // read coordinator-named files; forward only when opted in.
    if !state.cfg.allow_path_sources && sub.uses_path_sources() {
        return error(
            403,
            "server-side 'path' sources are disabled on this coordinator; \
             ship the PDBQT text inline instead",
        );
    }
    // Load the receptor once, coordinator-side, purely to compute the
    // same grid fingerprint members publish in their shard tables —
    // that key is what affinity routing matches on. The receptor
    // *source* (not the parsed molecule) is what gets forwarded.
    let receptor = match sub.load_receptor() {
        Ok(r) => r,
        Err(e) => return wire_error(&e),
    };
    let fingerprint = grid_cache_key(&receptor, &sub.campaign.dims_for(&receptor));
    drop(receptor);

    let alive = state.membership.alive();
    if alive.is_empty() {
        return error(503, "no cluster members are alive");
    }
    // Scatter only whole-stream submissions with a known length; a
    // pre-sliced submission (another coordinator upstream?) passes
    // through as a single part.
    let slices = match sub.slice {
        Some(s) => vec![Some(s)],
        None => scatter::plan_slices(
            sub.ligands.len_hint(),
            alive.len().min(state.cfg.max_parts.max(1)),
            state.cfg.scatter_min_ligands,
        ),
    };

    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(ClusterJob::new(
        id,
        sub.campaign.name.clone(),
        sub.campaign.top_k,
        slices,
    ));
    {
        let mut jobs = state.jobs.lock().unwrap();
        jobs.push(Arc::clone(&job));
        // Bound coordinator memory like the node bounds its retained
        // jobs: drop the oldest terminal entries beyond the cap.
        let cap = state.cfg.max_retained_jobs.max(1);
        while jobs.len() > cap {
            if let Some(pos) = jobs
                .iter()
                .position(|j| !matches!(j.status().state, JobState::Queued | JobState::Running))
            {
                jobs.remove(pos);
            } else {
                break;
            }
        }
    }
    state.metrics.jobs_submitted.inc();

    let gather = GatherConfig {
        poll_interval: state.cfg.poll_interval,
        max_attempts: state.cfg.max_attempts,
    };
    let runner_job = Arc::clone(&job);
    let membership = Arc::clone(&state.membership);
    let router = Arc::clone(&state.router);
    let metrics = Arc::clone(&state.metrics);
    let stop = Arc::clone(&state.stop);
    std::thread::Builder::new()
        .name(format!("cluster-job-{id}"))
        .spawn(move || {
            scatter::run(
                runner_job,
                sub,
                fingerprint,
                membership,
                router,
                metrics,
                gather,
                stop,
            )
        })
        .ok();

    json(
        201,
        &Json::Obj(vec![
            ("id".into(), Json::u64(id)),
            (
                "state".into(),
                Json::str(wire::state_name(JobState::Queued)),
            ),
            ("results".into(), Json::str(format!("/jobs/{id}/results"))),
        ]),
    )
}

/// Boot-random coordinator identity, same recipe as the node frontend.
pub(crate) fn boot_node_id(addr: SocketAddr) -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    mudock_grids::Fnv64::new()
        .write_u64(nanos)
        .write_u64(std::process::id() as u64)
        .write(addr.to_string().as_bytes())
        .finish()
}
