//! The coordinator's HTTP frontend.
//!
//! Speaks the same HTTP/1.1 + wire-JSON dialect as a member node, on
//! purpose: a client pointed at a coordinator cannot tell it is not
//! talking to a single `mudock serve` — `POST /jobs`, `GET /jobs/{id}`,
//! `GET /jobs/{id}/results`, `DELETE /jobs/{id}`, `/healthz`, `/stats`
//! and `/metrics` all answer with the node frontend's shapes (status
//! bodies go through `wire::status_to_json` itself). The differences
//! are additive only: `/healthz` carries `"role":"coordinator"`, and
//! `/stats` describes members instead of shards.
//!
//! The transport *is* the node's: [`CoordinatorRoutes`] implements
//! `serve::net`'s [`HttpRoutes`] and mounts on the same multi-loop
//! readiness frontend ([`mudock_serve::FrontendBuilder`]) — event-loop
//! pool, connection pinning, keep-alive, per-state and per-request
//! deadlines, graceful `503` shedding, and the `mudock_connections_*`
//! metric families all come along for free. Route handlers here never
//! block the loops: submission fans out on a per-job gather thread, and
//! status/results reads are lock-scoped lookups.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mudock_grids::grid_cache_key;
use mudock_serve::wire::{self, Json, WireError};
use mudock_serve::{HttpRoutes, JobState, Response, StageTimings};

use crate::membership::Membership;
use crate::metrics::ClusterMetrics;
use crate::router::Router;
use crate::scatter::{self, ClusterJob, GatherConfig};
use crate::ClusterConfig;

/// Everything a request handler can reach.
pub(crate) struct CoordinatorState {
    pub membership: Arc<Membership>,
    pub router: Arc<Router>,
    pub metrics: Arc<ClusterMetrics>,
    pub cfg: ClusterConfig,
    pub jobs: Mutex<Vec<Arc<ClusterJob>>>,
    pub next_id: AtomicU64,
    /// Boot-random coordinator identity (same scheme as a node's).
    pub node_id: u64,
    /// Set at shutdown; gather loops watch it.
    pub stop: Arc<AtomicBool>,
}

impl CoordinatorState {
    fn job(&self, id: u64) -> Option<Arc<ClusterJob>> {
        self.jobs
            .lock()
            .unwrap()
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }
}

/// The coordinator's [`HttpRoutes`] mount.
pub(crate) struct CoordinatorRoutes(pub Arc<CoordinatorState>);

impl HttpRoutes for CoordinatorRoutes {
    fn wants_body(&self, method: &str, path: &str) -> bool {
        let path = path.split('?').next().unwrap_or("");
        method == "POST" && path.split('/').filter(|s| !s.is_empty()).eq(["jobs"])
    }

    fn route(
        &self,
        method: &str,
        raw_path: &str,
        body: Option<Result<Json, WireError>>,
    ) -> Response {
        let state = &self.0;
        let path = raw_path.split('?').next().unwrap_or(raw_path);
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (method, segments.as_slice()) {
            ("GET", ["healthz"]) => Response::json(
                200,
                &Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("role".into(), Json::str("coordinator")),
                    ("node".into(), Json::str(format!("{:016x}", state.node_id))),
                    ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
                ]),
            ),
            ("GET", ["stats"]) => Response::json(200, &stats_json(state)),
            ("GET", ["metrics"]) => Response::text(
                200,
                "text/plain; version=0.0.4",
                state.metrics.registry.render_prometheus(),
            ),
            ("POST", ["jobs"]) => submit(body, state),
            ("GET", ["jobs", id]) => {
                with_job(state, id, |job| Response::json(200, &status_json(job)))
            }
            ("GET", ["jobs", id, "results"]) => with_job(state, id, |job| {
                Response::text(200, "application/jsonl", job.results())
            }),
            // Historical dialect quirk kept on purpose: the coordinator
            // answers DELETE with 200 (the node answers 202).
            ("DELETE", ["jobs", id]) => with_job(state, id, |job| {
                job.cancel();
                Response::json(200, &status_json(job))
            }),
            (_, ["jobs", ..]) | (_, ["healthz"]) | (_, ["stats"]) | (_, ["metrics"]) => {
                Response::error(405, format!("method {method} not allowed on {path}"))
            }
            _ => Response::error(404, format!("no route for {path}")),
        }
    }
}

fn with_job(
    state: &Arc<CoordinatorState>,
    id: &str,
    f: impl FnOnce(&ClusterJob) -> Response,
) -> Response {
    // Another kept quirk: a non-integer id is a 400 here, a 404 on the
    // node.
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(400, "job id must be an integer");
    };
    match state.job(id) {
        Some(job) => f(&job),
        None => Response::error(404, format!("no such job {id}")),
    }
}

/// A cluster job's status in the node frontend's exact shape, so node
/// clients (`client::Client::wait`) work against the coordinator
/// unchanged. Stage timings are a node-level concept — per-part timings
/// live on the members — so the coordinator reports them empty.
fn status_json(job: &ClusterJob) -> Json {
    let s = job.status();
    wire::status_to_json(
        job.id,
        &job.name,
        s.state,
        s.ligands_done,
        s.chunks_done,
        &StageTimings::default(),
        s.outcome.as_ref(),
    )
}

fn stats_json(state: &Arc<CoordinatorState>) -> Json {
    let members: Vec<Json> = state
        .membership
        .snapshot()
        .into_iter()
        .map(|m| {
            Json::Obj(vec![
                ("addr".into(), Json::str(m.addr)),
                ("state".into(), Json::str(m.state.name())),
                (
                    "node".into(),
                    match m.node {
                        Some(id) => Json::str(format!("{id:016x}")),
                        None => Json::Null,
                    },
                ),
                (
                    "consecutive_failures".into(),
                    Json::u64(m.consecutive_failures as u64),
                ),
                ("restarts".into(), Json::u64(m.restarts)),
                ("inflight".into(), Json::usize(m.inflight)),
                ("stats_generation".into(), Json::u64(m.stats_generation)),
                ("shard_count".into(), Json::usize(m.shard_count)),
            ])
        })
        .collect();
    let (active, terminal) = {
        let jobs = state.jobs.lock().unwrap();
        let active = jobs
            .iter()
            .filter(|j| matches!(j.status().state, JobState::Queued | JobState::Running))
            .count();
        (active, jobs.len() - active)
    };
    Json::Obj(vec![
        ("role".into(), Json::str("coordinator")),
        ("node".into(), Json::str(format!("{:016x}", state.node_id))),
        ("members".into(), Json::Arr(members)),
        (
            "jobs".into(),
            Json::Obj(vec![
                ("active".into(), Json::usize(active)),
                ("terminal".into(), Json::usize(terminal)),
            ]),
        ),
    ])
}

fn submit(body: Option<Result<Json, WireError>>, state: &Arc<CoordinatorState>) -> Response {
    let parsed = match body {
        Some(Ok(v)) => v,
        Some(Err(e)) => return Response::wire_error(&e),
        None => return Response::error(400, "POST /jobs requires a JSON body"),
    };
    let sub = match wire::submission_from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return Response::wire_error(&e),
    };
    // Same trust posture as a node: a path source would make *members*
    // read coordinator-named files; forward only when opted in.
    if !state.cfg.allow_path_sources && sub.uses_path_sources() {
        return Response::error(
            403,
            "server-side 'path' sources are disabled on this coordinator; \
             ship the PDBQT text inline instead",
        );
    }
    // Load the receptor once, coordinator-side, purely to compute the
    // same grid fingerprint members publish in their shard tables —
    // that key is what affinity routing matches on. The receptor
    // *source* (not the parsed molecule) is what gets forwarded.
    let receptor = match sub.load_receptor() {
        Ok(r) => r,
        Err(e) => return Response::wire_error(&e),
    };
    let fingerprint = grid_cache_key(&receptor, &sub.campaign.dims_for(&receptor));
    drop(receptor);

    let alive = state.membership.alive();
    if alive.is_empty() {
        return Response::error(503, "no cluster members are alive");
    }
    // Scatter only whole-stream submissions with a known length; a
    // pre-sliced submission (another coordinator upstream?) passes
    // through as a single part.
    let slices = match sub.slice {
        Some(s) => vec![Some(s)],
        None => scatter::plan_slices(
            sub.ligands.len_hint(),
            alive.len().min(state.cfg.max_parts.max(1)),
            state.cfg.scatter_min_ligands,
        ),
    };

    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(ClusterJob::new(
        id,
        sub.campaign.name.clone(),
        sub.campaign.top_k,
        slices,
    ));
    {
        let mut jobs = state.jobs.lock().unwrap();
        jobs.push(Arc::clone(&job));
        // Bound coordinator memory like the node bounds its retained
        // jobs: drop the oldest terminal entries beyond the cap.
        let cap = state.cfg.max_retained_jobs.max(1);
        while jobs.len() > cap {
            if let Some(pos) = jobs
                .iter()
                .position(|j| !matches!(j.status().state, JobState::Queued | JobState::Running))
            {
                jobs.remove(pos);
            } else {
                break;
            }
        }
    }
    state.metrics.jobs_submitted.inc();

    let gather = GatherConfig {
        poll_interval: state.cfg.poll_interval,
        max_attempts: state.cfg.max_attempts,
    };
    let runner_job = Arc::clone(&job);
    let membership = Arc::clone(&state.membership);
    let router = Arc::clone(&state.router);
    let metrics = Arc::clone(&state.metrics);
    let stop = Arc::clone(&state.stop);
    std::thread::Builder::new()
        .name(format!("cluster-job-{id}"))
        .spawn(move || {
            scatter::run(
                runner_job,
                sub,
                fingerprint,
                membership,
                router,
                metrics,
                gather,
                stop,
            )
        })
        .ok();

    Response::json(
        201,
        &Json::Obj(vec![
            ("id".into(), Json::u64(id)),
            (
                "state".into(),
                Json::str(wire::state_name(JobState::Queued)),
            ),
            ("results".into(), Json::str(format!("/jobs/{id}/results"))),
        ]),
    )
}

/// Boot-random coordinator identity, same recipe as the node frontend.
pub(crate) fn boot_node_id(addr: std::net::SocketAddr) -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    mudock_grids::Fnv64::new()
        .write_u64(nanos)
        .write_u64(std::process::id() as u64)
        .write(addr.to_string().as_bytes())
        .finish()
}
