//! Scatter/gather job tracking: one cluster job fanned out as sliced
//! sub-jobs, polled to completion, failed over on member death, and
//! merged back into a single bit-identical ranking.
//!
//! ## Why the result is bit-identical
//!
//! Scatter ships the **whole** ligand source to every member plus a
//! [`LigandSlice`] window; the node seeds each ligand by its *global*
//! stream index (`serve::server::run_job` starts its offset at
//! `slice.skip`), so a sub-job scores its window with exactly the bits
//! a single node would. Gather re-folds the per-window rankings in
//! window order through [`mudock_core::merge_ranked_partials`], whose
//! partition-invariance is proptest-pinned in `mudock-core`. Failover
//! preserves this for free: a re-dispatched part carries the same
//! slice, so whichever member reruns it computes the same bits.
//!
//! ## Failover
//!
//! Any transport error while dispatching or polling a part counts a
//! failure against that member (feeding the membership's dead-node
//! accounting) and immediately re-dispatches the part to another alive
//! member — bounded by `max_attempts` per part, after which the cluster
//! job reports `failed`. A part whose *remote* outcome is `failed` is
//! terminal without retry: node-side failures (invalid grid, unreadable
//! input) are deterministic and would fail anywhere.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mudock_core::merge_ranked_partials;
use mudock_serve::net::client;
use mudock_serve::wire::{JobStatus, Submission};
use mudock_serve::{JobId, JobOutcome, JobState, LigandSlice, RankedLigand};

use crate::membership::{Member, Membership};
use crate::metrics::ClusterMetrics;
use crate::router::{RouteReason, Router};

/// Gather-loop tuning, carried from `ClusterConfig`.
#[derive(Clone, Debug)]
pub(crate) struct GatherConfig {
    pub poll_interval: Duration,
    /// Dispatch attempts per part before the job fails.
    pub max_attempts: u32,
}

/// One sub-job: a slice of the stream plus where it currently runs.
struct Part {
    /// `None` = the whole stream (single-part job, or a pre-sliced
    /// submission passed through).
    slice: Option<LigandSlice>,
    /// Current assignee, while dispatched.
    member: Option<Arc<Member>>,
    /// Member to avoid on the next dispatch (it just failed us).
    exclude: Option<String>,
    remote_id: Option<JobId>,
    attempts: u32,
    /// Last polled status (progress reporting while running).
    last: Option<JobStatus>,
    /// Terminal remote outcome.
    outcome: Option<JobOutcome>,
    /// The part's JSONL results, fetched at completion.
    results: Option<String>,
    /// Permanent failure, after retries were exhausted.
    failed: Option<String>,
}

struct JobInner {
    parts: Vec<Part>,
    state: JobState,
    /// Merged terminal outcome.
    outcome: Option<JobOutcome>,
}

/// One cluster job as the coordinator tracks it.
pub struct ClusterJob {
    pub id: u64,
    pub name: String,
    top_k: usize,
    cancel: AtomicBool,
    inner: Mutex<JobInner>,
}

/// Point-in-time aggregated view, shaped for `wire::status_to_json`.
pub struct ClusterJobStatus {
    pub state: JobState,
    pub ligands_done: usize,
    pub chunks_done: usize,
    pub outcome: Option<JobOutcome>,
}

impl ClusterJob {
    pub(crate) fn new(
        id: u64,
        name: String,
        top_k: usize,
        slices: Vec<Option<LigandSlice>>,
    ) -> ClusterJob {
        let parts = slices
            .into_iter()
            .map(|slice| Part {
                slice,
                member: None,
                exclude: None,
                remote_id: None,
                attempts: 0,
                last: None,
                outcome: None,
                results: None,
                failed: None,
            })
            .collect();
        ClusterJob {
            id,
            name,
            top_k,
            cancel: AtomicBool::new(false),
            inner: Mutex::new(JobInner {
                parts,
                state: JobState::Queued,
                outcome: None,
            }),
        }
    }

    /// Request cancellation; the gather loop propagates it to members.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    pub fn status(&self) -> ClusterJobStatus {
        let inner = self.inner.lock().unwrap();
        let mut ligands = 0;
        let mut chunks = 0;
        for p in &inner.parts {
            let s = p
                .outcome
                .as_ref()
                .map(|o| (o.ligands_done, o.chunks_done))
                .or_else(|| p.last.as_ref().map(|s| (s.ligands_done, s.chunks_done)));
            if let Some((l, c)) = s {
                ligands += l;
                chunks += c;
            }
        }
        ClusterJobStatus {
            state: inner.state,
            ligands_done: ligands,
            chunks_done: chunks,
            outcome: inner.outcome.clone(),
        }
    }

    /// The job's JSONL results: completed parts' files concatenated in
    /// window order. While parts are still running, this is the longest
    /// *prefix* of fetched windows — never an out-of-order subset — so
    /// the stream a client tails only ever grows like a single node's
    /// file would.
    pub fn results(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for p in &inner.parts {
            match &p.results {
                Some(r) => out.push_str(r),
                None => break,
            }
        }
        out
    }
}

/// The gather loop: dispatch every part, poll to terminal, fail over on
/// member errors, merge. Runs on its own thread, one per cluster job.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    job: Arc<ClusterJob>,
    submission: Submission,
    fingerprint: u64,
    membership: Arc<Membership>,
    router: Arc<Router>,
    metrics: Arc<ClusterMetrics>,
    cfg: GatherConfig,
    stop: Arc<AtomicBool>,
) {
    let t0 = Instant::now();
    let n_parts = job.inner.lock().unwrap().parts.len();
    // Affinity steers whole jobs only. A scattered job's windows all
    // share one fingerprint, so affinity would pile the fan-out onto
    // whichever member registers the shard first (the probe round races
    // the dispatch loop); windows spread by occupancy instead.
    let route_fp = if n_parts == 1 {
        Some(fingerprint)
    } else {
        None
    };
    // Per-part keep-alive connections, keyed to the current assignee.
    let mut conns: Vec<Option<client::Client>> = (0..n_parts).map(|_| None).collect();

    loop {
        if stop.load(Ordering::SeqCst) {
            return; // coordinator shutting down; abandon tracking
        }
        if job.cancel.load(Ordering::SeqCst) {
            cancel_parts(&job, &mut conns);
            finish(&job, &metrics, JobState::Cancelled, None, t0);
            return;
        }

        // Dispatch every part that needs a (re-)home.
        for (i, conn_slot) in conns.iter_mut().enumerate() {
            let todo = {
                let inner = job.inner.lock().unwrap();
                let p = &inner.parts[i];
                if p.outcome.is_some() || p.failed.is_some() || p.remote_id.is_some() {
                    None
                } else {
                    Some((p.slice, p.exclude.clone(), p.attempts))
                }
            };
            let Some((slice, exclude, attempts)) = todo else {
                continue;
            };
            if attempts >= cfg.max_attempts {
                let mut inner = job.inner.lock().unwrap();
                inner.parts[i].failed = Some(format!(
                    "part {i}: no member accepted it after {attempts} attempts"
                ));
                continue;
            }
            // Prefer not to land on the member that just failed this
            // part — unless it is the only one left alive.
            let alive = membership.alive();
            let mut candidates: Vec<Arc<Member>> = alive
                .iter()
                .filter(|m| Some(&m.addr) != exclude.as_ref())
                .cloned()
                .collect();
            if candidates.is_empty() {
                candidates = alive;
            }
            let Some((member, reason)) = router.route(&candidates, route_fp) else {
                // Nobody alive. Count the attempt so a permanently
                // empty cluster terminates instead of spinning.
                let mut inner = job.inner.lock().unwrap();
                inner.parts[i].attempts += 1;
                continue;
            };
            match reason {
                RouteReason::Affinity => metrics.routed_affinity.inc(),
                RouteReason::Occupancy => metrics.routed_occupancy.inc(),
            }
            let mut conn = client::Client::new(&member.addr);
            let submitted = conn.submit_sliced(
                &submission.campaign,
                &submission.receptor,
                &submission.ligands,
                slice,
                submission.priority,
            );
            let mut inner = job.inner.lock().unwrap();
            let p = &mut inner.parts[i];
            p.attempts += 1;
            match submitted {
                Ok(remote_id) => {
                    member.begin_subjob();
                    metrics.subjobs_dispatched.inc();
                    if p.attempts > 1 {
                        metrics.redispatches.inc();
                    }
                    p.member = Some(Arc::clone(&member));
                    p.remote_id = Some(remote_id);
                    p.exclude = None;
                    *conn_slot = Some(conn);
                    if inner.state == JobState::Queued {
                        inner.state = JobState::Running;
                    }
                }
                Err(e) => {
                    p.exclude = Some(member.addr.clone());
                    drop(inner);
                    membership.report_failure(&member, &e);
                }
            }
        }

        // Poll every dispatched, non-terminal part.
        for (i, conn_slot) in conns.iter_mut().enumerate() {
            let target = {
                let inner = job.inner.lock().unwrap();
                let p = &inner.parts[i];
                match (&p.member, p.remote_id, &p.outcome) {
                    (Some(m), Some(id), None) => Some((Arc::clone(m), id)),
                    _ => None,
                }
            };
            let Some((member, remote_id)) = target else {
                continue;
            };
            let conn = conn_slot.get_or_insert_with(|| client::Client::new(&member.addr));
            match conn.poll(remote_id) {
                Ok(status) if status.is_terminal() => {
                    member.end_subjob();
                    match status.state {
                        JobState::Completed => {
                            // Fetch the window's JSONL before marking
                            // done, so `results()` never serves a
                            // completed part without its lines.
                            let results = conn.results(remote_id).unwrap_or_default();
                            let mut inner = job.inner.lock().unwrap();
                            let p = &mut inner.parts[i];
                            p.results = Some(results);
                            p.outcome = status.outcome.clone();
                            p.last = Some(status);
                        }
                        _ => {
                            // Remote failed/cancelled: deterministic —
                            // re-running the same slice would do the
                            // same — so it is a permanent part failure.
                            let mut inner = job.inner.lock().unwrap();
                            let p = &mut inner.parts[i];
                            let msg = status
                                .outcome
                                .as_ref()
                                .and_then(|o| o.error.clone())
                                .unwrap_or_else(|| {
                                    format!("member {} reported {:?}", member.addr, status.state)
                                });
                            p.failed = Some(msg);
                            p.last = Some(status);
                        }
                    }
                }
                Ok(status) => {
                    let mut inner = job.inner.lock().unwrap();
                    inner.parts[i].last = Some(status);
                }
                Err(e) => {
                    // Transport failure: the member (or its network) is
                    // gone. Re-dispatch the slice elsewhere; the same
                    // window recomputes the same bits wherever it runs.
                    member.end_subjob();
                    *conn_slot = None;
                    {
                        let mut inner = job.inner.lock().unwrap();
                        let p = &mut inner.parts[i];
                        p.member = None;
                        p.remote_id = None;
                        p.last = None;
                        p.exclude = Some(member.addr.clone());
                    }
                    membership.report_failure(&member, &e);
                }
            }
        }

        // Aggregate.
        {
            let inner = job.inner.lock().unwrap();
            if inner.parts.iter().any(|p| p.failed.is_some()) {
                let error = inner
                    .parts
                    .iter()
                    .filter_map(|p| p.failed.clone())
                    .next()
                    .unwrap_or_else(|| "sub-job failed".into());
                drop(inner);
                cancel_parts(&job, &mut conns);
                finish(&job, &metrics, JobState::Failed, Some(error), t0);
                return;
            }
            if inner.parts.iter().all(|p| p.outcome.is_some()) {
                drop(inner);
                finish(&job, &metrics, JobState::Completed, None, t0);
                return;
            }
        }
        std::thread::sleep(cfg.poll_interval);
    }
}

/// Best-effort remote cancellation of every in-flight part.
fn cancel_parts(job: &Arc<ClusterJob>, conns: &mut [Option<client::Client>]) {
    let targets: Vec<(usize, String, JobId)> = {
        let inner = job.inner.lock().unwrap();
        inner
            .parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match (&p.member, p.remote_id, &p.outcome) {
                (Some(m), Some(id), None) => Some((i, m.addr.clone(), id)),
                _ => None,
            })
            .collect()
    };
    for (i, addr, id) in targets {
        let conn = conns[i].get_or_insert_with(|| client::Client::new(&addr));
        let _ = conn.cancel(id);
    }
}

/// Publish the merged terminal outcome.
fn finish(
    job: &Arc<ClusterJob>,
    metrics: &ClusterMetrics,
    state: JobState,
    error: Option<String>,
    t0: Instant,
) {
    let mut inner = job.inner.lock().unwrap();
    let mut ligands_done = 0;
    let mut chunks_done = 0;
    let mut replayed = 0;
    let mut cache_hit = false;
    let mut stopped_early = false;
    let partials: Vec<Vec<(f32, (usize, String))>> = inner
        .parts
        .iter()
        .map(|p| match &p.outcome {
            Some(o) => {
                ligands_done += o.ligands_done;
                chunks_done += o.chunks_done;
                replayed += o.replayed_chunks;
                cache_hit |= o.grid_cache_hit;
                stopped_early |= o.stopped_early;
                o.top
                    .iter()
                    .map(|r| (r.score, (r.index, r.name.clone())))
                    .collect()
            }
            None => Vec::new(),
        })
        .collect();
    // Parts were planned in window order, so folding them in `parts`
    // order satisfies merge_ranked_partials' stream-order contract.
    let top: Vec<RankedLigand> = merge_ranked_partials(job.top_k, partials)
        .into_iter()
        .map(|(score, (index, name))| RankedLigand { index, name, score })
        .collect();
    inner.state = state;
    inner.outcome = Some(JobOutcome {
        id: job.id,
        name: job.name.clone(),
        state,
        ligands_done,
        chunks_done,
        replayed_chunks: replayed,
        grid_cache_hit: cache_hit,
        stopped_early,
        top,
        elapsed: t0.elapsed(),
        error,
    });
    match state {
        JobState::Completed => {
            metrics.jobs_completed.inc();
            metrics.gather_seconds.record(t0.elapsed());
        }
        JobState::Failed => metrics.jobs_failed.inc(),
        _ => {}
    }
}

/// Split `total` ligands into contiguous windows, one per scatter lane.
///
/// Returns `[None]` (a single whole-stream part) when the library is
/// too small to be worth fanning out, when only one lane exists, or
/// when the stream length is unknown (PDBQT files are not
/// pre-counted). Windows are balanced to within one ligand, in stream
/// order, covering the stream exactly.
pub(crate) fn plan_slices(
    total: Option<usize>,
    lanes: usize,
    scatter_min_ligands: usize,
) -> Vec<Option<LigandSlice>> {
    let Some(n) = total else {
        return vec![None];
    };
    if lanes < 2 || n < scatter_min_ligands.max(2) || n < lanes {
        return vec![None];
    }
    let base = n / lanes;
    let rem = n % lanes;
    let mut out = Vec::with_capacity(lanes);
    let mut skip = 0;
    for i in 0..lanes {
        let take = base + usize::from(i < rem);
        out.push(Some(LigandSlice { skip, take }));
        skip += take;
    }
    debug_assert_eq!(skip, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_the_stream_in_order() {
        let slices = plan_slices(Some(10), 3, 2);
        let got: Vec<LigandSlice> = slices.into_iter().map(|s| s.unwrap()).collect();
        assert_eq!(
            got,
            vec![
                LigandSlice { skip: 0, take: 4 },
                LigandSlice { skip: 4, take: 3 },
                LigandSlice { skip: 7, take: 3 },
            ]
        );
    }

    #[test]
    fn small_unknown_or_single_lane_stays_whole() {
        assert_eq!(plan_slices(None, 4, 2), vec![None]);
        assert_eq!(plan_slices(Some(100), 1, 2), vec![None]);
        assert_eq!(
            plan_slices(Some(3), 2, 8),
            vec![None],
            "below the scatter floor"
        );
        assert_eq!(
            plan_slices(Some(1), 2, 0),
            vec![None],
            "fewer ligands than lanes"
        );
    }

    #[test]
    fn merged_status_sums_part_progress() {
        let job = ClusterJob::new(
            1,
            "j".into(),
            3,
            vec![
                Some(LigandSlice { skip: 0, take: 5 }),
                Some(LigandSlice { skip: 5, take: 5 }),
            ],
        );
        assert_eq!(job.status().state, JobState::Queued);
        assert_eq!(job.status().ligands_done, 0);
        assert_eq!(job.results(), "", "no window fetched yet");
    }
}
