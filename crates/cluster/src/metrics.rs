//! The coordinator's `mudock_cluster_*` instrument families, registered
//! through the same [`mudock_obs::Registry`] the node frontend uses —
//! `GET /metrics` on the coordinator renders this registry, and
//! `/stats` reads the same atomics, so the two views can never
//! disagree.

use std::sync::Arc;

use mudock_obs::{Counter, Gauge, Histogram, Registry};

/// Every cluster-level instrument, registered once at bind.
pub struct ClusterMetrics {
    /// The registry `GET /metrics` renders.
    pub registry: Registry,
    /// Members currently considered alive.
    pub members_alive: Arc<Gauge>,
    /// Members currently considered dead.
    pub members_dead: Arc<Gauge>,
    /// Health probes that failed (per-attempt, not per-transition).
    pub probe_failures: Arc<Counter>,
    /// Node-id changes observed behind a stable member address.
    pub member_restarts: Arc<Counter>,
    /// Cluster jobs accepted.
    pub jobs_submitted: Arc<Counter>,
    /// Cluster jobs that reached `completed`.
    pub jobs_completed: Arc<Counter>,
    /// Cluster jobs that reached `failed`.
    pub jobs_failed: Arc<Counter>,
    /// Sub-jobs dispatched to members (re-dispatches included).
    pub subjobs_dispatched: Arc<Counter>,
    /// Sub-jobs re-dispatched after a member failure.
    pub redispatches: Arc<Counter>,
    /// Routing decisions that hit receptor affinity.
    pub routed_affinity: Arc<Counter>,
    /// Routing decisions that fell back to lowest occupancy.
    pub routed_occupancy: Arc<Counter>,
    /// Submission-to-merged wall clock of completed cluster jobs.
    pub gather_seconds: Arc<Histogram>,
}

impl ClusterMetrics {
    pub fn register(registry: &Registry) -> ClusterMetrics {
        ClusterMetrics {
            members_alive: registry.gauge(
                "mudock_cluster_members",
                &[("state", "alive")],
                "Member nodes by liveness state",
            ),
            members_dead: registry.gauge(
                "mudock_cluster_members",
                &[("state", "dead")],
                "Member nodes by liveness state",
            ),
            probe_failures: registry.counter(
                "mudock_cluster_probe_failures_total",
                &[],
                "Failed member health probes",
            ),
            member_restarts: registry.counter(
                "mudock_cluster_member_restarts_total",
                &[],
                "Node-id changes observed behind a stable member address",
            ),
            jobs_submitted: registry.counter(
                "mudock_cluster_jobs_total",
                &[("outcome", "submitted")],
                "Cluster jobs by outcome",
            ),
            jobs_completed: registry.counter(
                "mudock_cluster_jobs_total",
                &[("outcome", "completed")],
                "Cluster jobs by outcome",
            ),
            jobs_failed: registry.counter(
                "mudock_cluster_jobs_total",
                &[("outcome", "failed")],
                "Cluster jobs by outcome",
            ),
            subjobs_dispatched: registry.counter(
                "mudock_cluster_subjobs_total",
                &[],
                "Sub-jobs dispatched to members, re-dispatches included",
            ),
            redispatches: registry.counter(
                "mudock_cluster_redispatches_total",
                &[],
                "Sub-jobs re-dispatched after a member failure",
            ),
            routed_affinity: registry.counter(
                "mudock_cluster_routed_total",
                &[("reason", "affinity")],
                "Routing decisions by reason",
            ),
            routed_occupancy: registry.counter(
                "mudock_cluster_routed_total",
                &[("reason", "occupancy")],
                "Routing decisions by reason",
            ),
            gather_seconds: registry.histogram(
                "mudock_cluster_gather_seconds",
                &[],
                "Submission-to-merged wall clock of completed cluster jobs",
            ),
            registry: registry.clone(),
        }
    }
}
