//! Cluster end-to-end: real loopback members under a real coordinator.
//!
//! The load-bearing claims, each pinned here against a live TCP
//! topology:
//!
//! * a 2-node scattered campaign's merged ranking is **bit-identical**
//!   to the in-process single-stream reference (same indices, names,
//!   and f32 score bits);
//! * killing a member mid-campaign re-dispatches its unfinished window
//!   and the final ranking is *still* bit-identical;
//! * a second submission of an already-screened receptor routes by
//!   affinity once the probe round has refreshed the shard tables.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mudock_cluster::{ClusterConfig, Coordinator};
use mudock_core::{screen_campaign, Campaign, CampaignSpec, ChunkPolicy, StopPolicy};
use mudock_grids::{GridBuilder, GridDims};
use mudock_mol::Vec3;
use mudock_molio::mediate_like_set;
use mudock_serve::net::client;
use mudock_serve::{
    JobState, LigandSource, NetConfig, NetServer, Priority, ReceptorSource, ScreenService,
    ServeConfig,
};

const SEED: u64 = 42;
const RECEPTOR_SEED: u64 = 7;
const RECEPTOR_ATOMS: usize = 120;
const RECEPTOR_RADIUS: f32 = 8.0;

fn dims() -> GridDims {
    GridDims::centered(Vec3::ZERO, 10.0, 0.7)
}

fn campaign(name: &str, top_k: usize) -> CampaignSpec {
    Campaign::builder()
        .name(name)
        .population(10)
        .generations(5)
        .seed(SEED)
        .search_radius(3.5)
        .top_k(top_k)
        .chunk(ChunkPolicy::Fixed(6))
        .grid_dims(dims())
        .build()
        .expect("the test campaign is valid")
}

fn receptor_source() -> ReceptorSource {
    ReceptorSource::Synth {
        seed: RECEPTOR_SEED,
        atoms: RECEPTOR_ATOMS,
        radius: RECEPTOR_RADIUS,
    }
}

/// `(index, name, score)` of the single-stream reference ranking — the
/// same in-process `core::screen_campaign` oracle the node e2e uses.
fn reference_top_for(spec: &CampaignSpec, n_ligands: usize) -> Vec<(usize, String, f32)> {
    let rec = mudock_molio::synthetic_receptor(RECEPTOR_SEED, RECEPTOR_ATOMS, RECEPTOR_RADIUS);
    let grids = GridBuilder::new(&rec, dims()).build_simd(spec.grid_level());
    let ligands = mediate_like_set(SEED, n_ligands);
    let full = CampaignSpec {
        stop: StopPolicy::Complete,
        ..spec.clone()
    };
    let summary = screen_campaign(&grids, &ligands, &full, 1);
    summary
        .top_k(spec.top_k)
        .into_iter()
        .map(|i| {
            (
                i,
                summary.results[i].name.clone(),
                summary.results[i].best_score.unwrap(),
            )
        })
        .collect()
}

fn assert_bit_identical(
    got: &[mudock_serve::RankedLigand],
    reference: &[(usize, String, f32)],
    context: &str,
) {
    assert_eq!(got.len(), reference.len(), "{context}: ranking length");
    for (g, (index, name, score)) in got.iter().zip(reference) {
        assert_eq!(g.index, *index, "{context}: tie order drifted");
        assert_eq!(&g.name, name, "{context}");
        assert_eq!(
            g.score.to_bits(),
            score.to_bits(),
            "{context}: score bits for {name} drifted through scatter/gather"
        );
    }
}

/// One loopback member node: service + network frontend.
struct MemberNode {
    service: Arc<ScreenService>,
    server: NetServer,
    results_dir: std::path::PathBuf,
}

impl MemberNode {
    fn start(name: &str) -> MemberNode {
        let results_dir =
            std::env::temp_dir().join(format!("mudock-cluster-e2e-{}-{name}", std::process::id()));
        let service = Arc::new(ScreenService::start(ServeConfig {
            total_threads: 1,
            job_slots: 2,
            ..ServeConfig::default()
        }));
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                results_dir: results_dir.clone(),
                ..NetConfig::default()
            },
        )
        .expect("loopback bind");
        MemberNode {
            service,
            server,
            results_dir,
        }
    }

    fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }

    fn jobs_submitted(&self) -> u64 {
        self.service.stats().jobs_submitted
    }
}

impl Drop for MemberNode {
    fn drop(&mut self) {
        self.server.shutdown();
        self.service.shutdown();
        std::fs::remove_dir_all(&self.results_dir).ok();
    }
}

fn coordinator_over(nodes: Vec<String>) -> Coordinator {
    Coordinator::bind(
        "127.0.0.1:0",
        ClusterConfig {
            nodes,
            health_interval: Duration::from_millis(50),
            dead_after: 2,
            scatter_min_ligands: 4,
            poll_interval: Duration::from_millis(10),
            ..ClusterConfig::default()
        },
    )
    .expect("coordinator bind")
}

#[test]
fn two_node_scatter_is_bit_identical_to_a_single_stream() {
    const N_LIGANDS: usize = 24;
    const TOP_K: usize = 5;
    let m1 = MemberNode::start("scatter-1");
    let m2 = MemberNode::start("scatter-2");
    let coordinator = coordinator_over(vec![m1.addr(), m2.addr()]);
    let addr = coordinator.local_addr().to_string();

    let spec = campaign("cluster-parity", TOP_K);
    let mut conn = client::Client::new(&addr);
    let id = conn
        .submit(
            &spec,
            &receptor_source(),
            &LigandSource::synth(SEED, N_LIGANDS),
            Priority::Normal,
        )
        .expect("submit to the coordinator");
    let status = conn
        .wait(id, Duration::from_millis(20))
        .expect("poll the coordinator to terminal");
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.ligands_done, N_LIGANDS);
    let outcome = status.outcome.expect("terminal outcome");
    assert_bit_identical(
        &outcome.top,
        &reference_top_for(&spec, N_LIGANDS),
        "2-node scatter",
    );

    // The fan-out was real: each member screened one window.
    assert_eq!(m1.jobs_submitted(), 1, "member 1 got a window");
    assert_eq!(m2.jobs_submitted(), 1, "member 2 got a window");

    // Gathered JSONL covers every ligand, windows in stream order.
    let body = conn.results(id).expect("gathered results");
    assert_eq!(body.lines().count(), N_LIGANDS);

    coordinator.shutdown();
}

#[test]
fn member_death_mid_campaign_redispatches_and_stays_bit_identical() {
    const N_LIGANDS: usize = 48;
    const TOP_K: usize = 6;
    let m1 = MemberNode::start("failover-1");
    let m2 = MemberNode::start("failover-2");
    let coordinator = coordinator_over(vec![m1.addr(), m2.addr()]);
    let addr = coordinator.local_addr().to_string();

    // Heavy enough that the kill below always lands mid-window.
    let spec = Campaign::builder()
        .name("cluster-failover")
        .population(30)
        .generations(120)
        .seed(SEED)
        .search_radius(3.5)
        .top_k(TOP_K)
        .chunk(ChunkPolicy::Fixed(4))
        .grid_dims(dims())
        .build()
        .unwrap();
    let mut conn = client::Client::new(&addr);
    let id = conn
        .submit(
            &spec,
            &receptor_source(),
            &LigandSource::synth(SEED, N_LIGANDS),
            Priority::Normal,
        )
        .expect("submit to the coordinator");

    // Wait until both members hold a window, then kill member 2 while
    // its window is still screening.
    let deadline = Instant::now() + Duration::from_secs(30);
    while m1.jobs_submitted() < 1 || m2.jobs_submitted() < 1 {
        assert!(Instant::now() < deadline, "windows never dispatched");
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(m2);

    let status = conn
        .wait(id, Duration::from_millis(20))
        .expect("the campaign survives the member death");
    assert_eq!(
        status.state,
        JobState::Completed,
        "outcome: {:?}",
        status.outcome
    );
    assert_eq!(status.ligands_done, N_LIGANDS);
    let outcome = status.outcome.expect("terminal outcome");
    assert_bit_identical(
        &outcome.top,
        &reference_top_for(&spec, N_LIGANDS),
        "post-failover",
    );

    // The dead member's window was re-dispatched: the survivor screened
    // its own window plus the orphaned one.
    assert_eq!(
        m1.jobs_submitted(),
        2,
        "the orphaned window must land on the survivor"
    );
    // And the coordinator noticed the death.
    let dead = coordinator
        .membership()
        .snapshot()
        .iter()
        .filter(|m| m.state == mudock_cluster::MemberState::Dead)
        .count();
    assert_eq!(dead, 1, "the killed member is marked dead");

    coordinator.shutdown();
}

#[test]
fn repeat_receptor_routes_by_affinity_and_cluster_endpoints_answer() {
    // Below the scatter floor on purpose: affinity steers *whole-job*
    // placement, so this test's submissions must stay single-window.
    const N_LIGANDS: usize = 3;
    let m1 = MemberNode::start("affinity-1");
    let m2 = MemberNode::start("affinity-2");
    let coordinator = coordinator_over(vec![m1.addr(), m2.addr()]);
    let addr = coordinator.local_addr().to_string();
    let mut conn = client::Client::new(&addr);

    // Coordinator identity endpoints speak the node dialect, plus role.
    let health = conn.request("GET", "/healthz", None).unwrap().ok().unwrap();
    assert!(
        health.body.contains("\"role\":\"coordinator\""),
        "{}",
        health.body
    );
    assert!(health.body.contains("\"version\":"), "{}", health.body);

    let spec = campaign("affinity-pass-1", 3);
    let id = conn
        .submit(
            &spec,
            &receptor_source(),
            &LigandSource::synth(SEED, N_LIGANDS),
            Priority::Normal,
        )
        .unwrap();
    let status = conn.wait(id, Duration::from_millis(20)).unwrap();
    assert_eq!(status.state, JobState::Completed);

    // Let the probe round pick up the members' shard tables.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !coordinator
        .membership()
        .snapshot()
        .iter()
        .any(|m| m.shard_count > 0)
    {
        assert!(
            Instant::now() < deadline,
            "probe rounds never refreshed a shard table"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Same receptor again: the router must now hit the affinity path.
    let spec2 = CampaignSpec {
        name: "affinity-pass-2".into(),
        ..spec.clone()
    };
    let id2 = conn
        .submit(
            &spec2,
            &receptor_source(),
            &LigandSource::synth(SEED, N_LIGANDS),
            Priority::Normal,
        )
        .unwrap();
    assert_ne!(id, id2);
    let status2 = conn.wait(id2, Duration::from_millis(20)).unwrap();
    assert_eq!(status2.state, JobState::Completed);

    let metrics = conn.request("GET", "/metrics", None).unwrap().ok().unwrap();
    let affinity_line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("mudock_cluster_routed_total{reason=\"affinity\"}"))
        .expect("affinity counter is exported");
    let count: u64 = affinity_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("counter value");
    assert!(
        count >= 1,
        "second submission routed by affinity: {metrics:?}"
    );

    // Cluster /stats describes members, not shards.
    let stats = conn.request("GET", "/stats", None).unwrap().ok().unwrap();
    let v = mudock_serve::wire::parse(&stats.body).expect("stats JSON parses");
    assert!(
        matches!(v.get("members"), Some(mudock_serve::wire::Json::Arr(ms)) if ms.len() == 2),
        "{}",
        stats.body
    );

    coordinator.shutdown();
}
