//! Marker-region instrumentation — the software analogue of LIKWID's
//! marker API, which the paper uses to scope all metrics to the docking
//! and scoring kernels ("metrics refer only to the inner kernels via
//! LIKWID markers", Section VII-e).
//!
//! Regions accumulate wall time and caller-reported work (FLOPs, bytes),
//! from which derived metrics (GFLOP/s, arithmetic intensity) follow.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Accumulated measurements for one named region.
#[derive(Clone, Debug, Default)]
pub struct RegionStats {
    /// Times the region was entered.
    pub invocations: u64,
    /// Total wall time inside the region.
    pub elapsed: Duration,
    /// Floating-point operations reported by the caller.
    pub flops: u64,
    /// Bytes read from memory (caller-estimated).
    pub bytes_read: u64,
    /// Bytes written to memory (caller-estimated).
    pub bytes_written: u64,
}

impl RegionStats {
    /// GFLOP/s over the accumulated time.
    pub fn gflops(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.flops as f64 / secs / 1e9
        } else {
            0.0
        }
    }

    /// Arithmetic intensity in FLOP per byte of traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.bytes_read + self.bytes_written;
        if bytes > 0 {
            self.flops as f64 / bytes as f64
        } else {
            f64::INFINITY
        }
    }

    /// Bandwidth in GB/s over the accumulated time.
    pub fn bandwidth_gbs(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            (self.bytes_read + self.bytes_written) as f64 / secs / 1e9
        } else {
            0.0
        }
    }
}

/// Thread-safe registry of marker regions.
#[derive(Debug, Default)]
pub struct PerfMonitor {
    regions: Mutex<HashMap<String, RegionStats>>,
}

impl PerfMonitor {
    pub fn new() -> PerfMonitor {
        PerfMonitor::default()
    }

    /// Start a measurement; finish it with [`Measurement::stop`].
    pub fn start<'a>(&'a self, region: &str) -> Measurement<'a> {
        Measurement {
            monitor: self,
            region: region.to_string(),
            begun: Instant::now(),
        }
    }

    /// Record a fully-described interval directly (for callers that time
    /// themselves).
    pub fn record(
        &self,
        region: &str,
        elapsed: Duration,
        flops: u64,
        bytes_read: u64,
        bytes_written: u64,
    ) {
        let mut map = self.regions.lock();
        let r = map.entry(region.to_string()).or_default();
        r.invocations += 1;
        r.elapsed += elapsed;
        r.flops += flops;
        r.bytes_read += bytes_read;
        r.bytes_written += bytes_written;
    }

    /// Snapshot of one region's stats.
    pub fn region(&self, name: &str) -> Option<RegionStats> {
        self.regions.lock().get(name).cloned()
    }

    /// Snapshot of all regions, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, RegionStats)> {
        let map = self.regions.lock();
        let mut v: Vec<(String, RegionStats)> =
            map.iter().map(|(k, s)| (k.clone(), s.clone())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Drop all accumulated data.
    pub fn reset(&self) {
        self.regions.lock().clear();
    }
}

/// An in-flight region measurement (RAII-less by design: work counts are
/// only known at the end).
pub struct Measurement<'a> {
    monitor: &'a PerfMonitor,
    region: String,
    begun: Instant,
}

impl Measurement<'_> {
    /// Finish the measurement, attributing the given work to the region.
    pub fn stop(self, flops: u64, bytes_read: u64, bytes_written: u64) {
        let elapsed = self.begun.elapsed();
        self.monitor
            .record(&self.region, elapsed, flops, bytes_read, bytes_written);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_invocations() {
        let m = PerfMonitor::new();
        m.record("k", Duration::from_millis(10), 1000, 64, 32);
        m.record("k", Duration::from_millis(30), 3000, 128, 0);
        let r = m.region("k").unwrap();
        assert_eq!(r.invocations, 2);
        assert_eq!(r.flops, 4000);
        assert_eq!(r.bytes_read, 192);
        assert_eq!(r.elapsed, Duration::from_millis(40));
    }

    #[test]
    fn derived_metrics() {
        let m = PerfMonitor::new();
        m.record(
            "k",
            Duration::from_secs(1),
            2_000_000_000,
            500_000_000,
            500_000_000,
        );
        let r = m.region("k").unwrap();
        assert!((r.gflops() - 2.0).abs() < 1e-9);
        assert!((r.arithmetic_intensity() - 2.0).abs() < 1e-9);
        assert!((r.bandwidth_gbs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn marker_api_measures_time() {
        let m = PerfMonitor::new();
        let meas = m.start("sleepy");
        std::thread::sleep(Duration::from_millis(5));
        meas.stop(10, 0, 0);
        let r = m.region("sleepy").unwrap();
        assert!(r.elapsed >= Duration::from_millis(4));
        assert_eq!(r.flops, 10);
    }

    #[test]
    fn snapshot_sorted_and_reset() {
        let m = PerfMonitor::new();
        m.record("b", Duration::ZERO, 0, 0, 0);
        m.record("a", Duration::ZERO, 0, 0, 0);
        let snap = m.snapshot();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "b");
        m.reset();
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn zero_time_has_safe_metrics() {
        let r = RegionStats::default();
        assert_eq!(r.gflops(), 0.0);
        assert!(r.arithmetic_intensity().is_infinite());
    }
}
