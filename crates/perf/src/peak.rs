//! Host microbenchmarks in the spirit of `likwid-bench`: the paper uses
//! its `peakflops` and `load` kernels to anchor the roofline ceilings
//! (Section VII-d). These are *measurements of this host*, used by the
//! `roofline` example; the cross-architecture figures use modeled peaks
//! from `mudock-archsim` instead.

use std::time::Instant;

/// Measure scalar peak FLOP/s with independent FMA-shaped chains
/// (`x = x * a + b`), reported in GFLOP/s.
pub fn peakflops_scalar(iters: u64) -> f64 {
    let a = std::hint::black_box(1.000_000_1f32);
    let b = std::hint::black_box(1e-9f32);
    let mut x = [1.0f32, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
    let t0 = Instant::now();
    for _ in 0..iters {
        for xi in &mut x {
            *xi = *xi * a + b;
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(x);
    // 8 lanes × 2 flops per iteration.
    (iters as f64 * 8.0 * 2.0) / dt / 1e9
}

/// Measure streaming load bandwidth (GB/s) by summing a buffer larger
/// than the last-level cache.
pub fn load_bandwidth(buffer_mib: usize, passes: usize) -> f64 {
    let n = buffer_mib * 1024 * 1024 / 4;
    let data = vec![1.0f32; n];
    // Warm-up pass so page faults don't pollute the measurement.
    let mut sink = data.iter().sum::<f32>();
    let t0 = Instant::now();
    for _ in 0..passes {
        let mut acc0 = 0.0f32;
        let mut acc1 = 0.0f32;
        let mut acc2 = 0.0f32;
        let mut acc3 = 0.0f32;
        for c in data.chunks_exact(4) {
            acc0 += c[0];
            acc1 += c[1];
            acc2 += c[2];
            acc3 += c[3];
        }
        sink += acc0 + acc1 + acc2 + acc3;
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (passes as f64 * n as f64 * 4.0) / dt / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peakflops_is_positive_and_sane() {
        let g = peakflops_scalar(200_000);
        // Anything from an emulator to a fast core: just sanity bounds.
        assert!(g > 0.01 && g < 10_000.0, "peakflops {g}");
    }

    #[test]
    fn bandwidth_is_positive_and_sane() {
        let b = load_bandwidth(8, 1);
        assert!(b > 0.05 && b < 10_000.0, "bandwidth {b}");
    }
}
