//! # mudock-perf — software performance instrumentation
//!
//! The paper measures everything with LIKWID (Section VII-d): marker
//! regions around the docking kernels, FLOP and bandwidth counters, and
//! `likwid-bench` peaks anchoring the rooflines. This crate reproduces
//! those facilities in software:
//!
//! * [`PerfMonitor`] — named marker regions accumulating wall time and
//!   caller-reported work, with derived GFLOP/s, bandwidth and arithmetic
//!   intensity;
//! * [`Roofline`] — the Figure 5 model: bandwidth diagonal + compute
//!   ceilings, attainability and efficiency queries;
//! * [`peak`] — host microbenchmarks (`peakflops`, `load`) in the spirit
//!   of `likwid-bench`.

pub mod counters;
pub mod peak;
pub mod roofline;

pub use counters::{Measurement, PerfMonitor, RegionStats};
pub use roofline::{Ceiling, KernelPoint, Roofline};
