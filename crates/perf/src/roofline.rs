//! Roofline model (Williams et al.) — reproduces the paper's Figure 5
//! construction: per-architecture peak FLOP/s ceilings (scalar, vector,
//! vector+FMA) and a memory-bandwidth diagonal, with kernels placed by
//! their measured arithmetic intensity and attained FLOP/s.

/// One performance ceiling (a horizontal line on the roofline plot).
#[derive(Clone, Debug, PartialEq)]
pub struct Ceiling {
    /// Label, e.g. `"sp_avx512+fma"`.
    pub name: String,
    /// Peak in GFLOP/s.
    pub gflops: f64,
}

/// A measured kernel point on the plot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelPoint {
    /// Arithmetic intensity (FLOP/byte).
    pub ai: f64,
    /// Attained performance (GFLOP/s).
    pub gflops: f64,
}

/// Roofline for one machine: bandwidth diagonal + compute ceilings.
#[derive(Clone, Debug)]
pub struct Roofline {
    /// Machine name.
    pub name: String,
    /// Peak memory bandwidth (GB/s).
    pub bw_gbs: f64,
    /// Compute ceilings, ascending.
    pub ceilings: Vec<Ceiling>,
}

impl Roofline {
    pub fn new(name: impl Into<String>, bw_gbs: f64) -> Roofline {
        Roofline {
            name: name.into(),
            bw_gbs,
            ceilings: Vec::new(),
        }
    }

    /// Add a compute ceiling (kept sorted ascending).
    pub fn with_ceiling(mut self, name: impl Into<String>, gflops: f64) -> Roofline {
        self.ceilings.push(Ceiling {
            name: name.into(),
            gflops,
        });
        self.ceilings.sort_by(|a, b| a.gflops.total_cmp(&b.gflops));
        self
    }

    /// Highest compute ceiling.
    pub fn peak_gflops(&self) -> f64 {
        self.ceilings.last().map(|c| c.gflops).unwrap_or(0.0)
    }

    /// Attainable GFLOP/s at a given arithmetic intensity:
    /// `min(peak, bw × AI)`.
    pub fn attainable(&self, ai: f64) -> f64 {
        (self.bw_gbs * ai).min(self.peak_gflops())
    }

    /// The ridge point: the AI where memory- and compute-bound regimes
    /// meet.
    pub fn ridge_ai(&self) -> f64 {
        if self.bw_gbs > 0.0 {
            self.peak_gflops() / self.bw_gbs
        } else {
            f64::INFINITY
        }
    }

    /// Is a kernel at this intensity compute-bound (right of the ridge)?
    pub fn is_compute_bound(&self, ai: f64) -> bool {
        ai >= self.ridge_ai()
    }

    /// Fraction of the attainable performance a measured point achieves.
    pub fn efficiency(&self, p: KernelPoint) -> f64 {
        let roof = self.attainable(p.ai);
        if roof > 0.0 {
            p.gflops / roof
        } else {
            0.0
        }
    }

    /// Sample the roofline curve at log-spaced intensities in
    /// `[ai_min, ai_max]` — the series the figure generator prints.
    pub fn series(&self, ai_min: f64, ai_max: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(ai_min > 0.0 && ai_max > ai_min && points >= 2);
        let l0 = ai_min.ln();
        let l1 = ai_max.ln();
        (0..points)
            .map(|i| {
                let ai = (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp();
                (ai, self.attainable(ai))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spr_like() -> Roofline {
        Roofline::new("spr", 300.0)
            .with_ceiling("sp_scalar", 10.0)
            .with_ceiling("sp_avx512", 80.0)
            .with_ceiling("sp_avx512+fma", 160.0)
    }

    #[test]
    fn ceilings_sorted_and_peak() {
        let r = spr_like();
        assert_eq!(r.ceilings[0].name, "sp_scalar");
        assert_eq!(r.peak_gflops(), 160.0);
    }

    #[test]
    fn attainable_respects_both_limits() {
        let r = spr_like();
        // Memory-bound region: limited by bw*ai.
        assert!((r.attainable(0.1) - 30.0).abs() < 1e-9);
        // Compute-bound region: flat at peak.
        assert_eq!(r.attainable(100.0), 160.0);
    }

    #[test]
    fn ridge_point() {
        let r = spr_like();
        let ridge = r.ridge_ai();
        assert!((ridge - 160.0 / 300.0).abs() < 1e-9);
        assert!(!r.is_compute_bound(ridge * 0.5));
        assert!(r.is_compute_bound(ridge * 2.0));
    }

    #[test]
    fn efficiency_of_points() {
        let r = spr_like();
        let perfect = KernelPoint {
            ai: 10.0,
            gflops: 160.0,
        };
        assert!((r.efficiency(perfect) - 1.0).abs() < 1e-9);
        let half = KernelPoint {
            ai: 10.0,
            gflops: 80.0,
        };
        assert!((r.efficiency(half) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn series_is_monotone_nondecreasing() {
        let r = spr_like();
        let s = r.series(0.01, 1000.0, 64);
        assert_eq!(s.len(), 64);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
            assert!(w[1].0 > w[0].0);
        }
        // Saturates at the peak.
        assert_eq!(s.last().unwrap().1, 160.0);
    }
}
