//! Reader/writer for a PDBQT subset.
//!
//! AutoDock's PDBQT format extends PDB with partial charges and AutoDock
//! atom types. We support the records the docking pipeline needs:
//!
//! * `ATOM`/`HETATM` — coordinates (cols 31–54), partial charge (67–76)
//!   and AutoDock type (78–79), parsed whitespace-tolerantly;
//! * `CONECT` — explicit bonds (written by our writer; optional on read:
//!   without them, bonds are perceived from covalent radii);
//! * `REMARK ROTBOND i j` — our explicit serialization of which bonds are
//!   torsionally active (replacing the positional `BRANCH` tree of full
//!   PDBQT, which encodes the same information less directly).
//!
//! The deviations from full PDBQT (no nested `BRANCH` tree, no `TORSDOF`)
//! are deliberate: they serialize the same `Molecule` topology this
//! pipeline uses, while staying line-compatible with PDB viewers.

use mudock_ff::types::AtomType;
use mudock_mol::{Atom, Bond, Molecule, Vec3};

/// Parse errors with line context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PDBQT parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Tolerance added to the sum of covalent radii when perceiving bonds.
pub const BOND_TOLERANCE: f32 = 0.45;

/// Parse a molecule from PDBQT text.
///
/// If the text contains `CONECT` records they define the bond graph;
/// otherwise bonds are perceived by interatomic distance against covalent
/// radii. `REMARK ROTBOND` records mark rotatable bonds in either case.
pub fn parse(text: &str) -> Result<Molecule, ParseError> {
    let mut mol = Molecule::new("");
    // Maps PDB serial -> our index (serials need not be dense).
    let mut serial_to_idx = std::collections::HashMap::new();
    let mut conect: Vec<(u32, u32)> = Vec::new();
    let mut rotbonds: Vec<(u32, u32)> = Vec::new();
    let mut saw_conect = false;

    for (ln, raw) in text.lines().enumerate() {
        let lineno = ln + 1;
        let line = raw.trim_end();
        if line.starts_with("ATOM") || line.starts_with("HETATM") {
            let fields: Vec<&str> = line.split_whitespace().collect();
            // Fixed-column first; fall back to whitespace fields for
            // machine-generated files.
            let (serial, x, y, z, q, ty) = if line.len() >= 78 {
                let serial: u32 = line[6..11]
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "bad serial"))?;
                let x: f32 = line[30..38]
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "bad x"))?;
                let y: f32 = line[38..46]
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "bad y"))?;
                let z: f32 = line[46..54]
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "bad z"))?;
                let q: f32 = line[66..76]
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "bad charge"))?;
                let ty = line[77..].trim();
                (serial, x, y, z, q, ty)
            } else {
                if fields.len() < 8 {
                    return Err(err(lineno, "too few fields in ATOM record"));
                }
                let n = fields.len();
                let serial: u32 = fields[1].parse().map_err(|_| err(lineno, "bad serial"))?;
                let x: f32 = fields[n - 5].parse().map_err(|_| err(lineno, "bad x"))?;
                let y: f32 = fields[n - 4].parse().map_err(|_| err(lineno, "bad y"))?;
                let z: f32 = fields[n - 3].parse().map_err(|_| err(lineno, "bad z"))?;
                let q: f32 = fields[n - 2]
                    .parse()
                    .map_err(|_| err(lineno, "bad charge"))?;
                (serial, x, y, z, q, fields[n - 1])
            };
            let ty = AtomType::parse(ty)
                .ok_or_else(|| err(lineno, format!("unknown atom type '{ty}'")))?;
            serial_to_idx.insert(serial, mol.atoms.len() as u32);
            mol.atoms.push(Atom::new(Vec3::new(x, y, z), ty, q));
        } else if line.starts_with("CONECT") {
            saw_conect = true;
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() >= 3 {
                let a: u32 = fields[1].parse().map_err(|_| err(lineno, "bad CONECT"))?;
                for fb in &fields[2..] {
                    let b: u32 = fb.parse().map_err(|_| err(lineno, "bad CONECT"))?;
                    conect.push((a, b));
                }
            }
        } else if let Some(rest) = line.strip_prefix("REMARK ROTBOND") {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 2 {
                return Err(err(lineno, "ROTBOND needs two serials"));
            }
            let a: u32 = fields[0].parse().map_err(|_| err(lineno, "bad ROTBOND"))?;
            let b: u32 = fields[1].parse().map_err(|_| err(lineno, "bad ROTBOND"))?;
            rotbonds.push((a, b));
        } else if let Some(name) = line.strip_prefix("COMPND") {
            mol.name = name.trim().to_string();
        }
        // ROOT/BRANCH/TORSDOF and other records are ignored.
    }

    if mol.atoms.is_empty() {
        return Err(err(0, "no ATOM records"));
    }

    if saw_conect {
        let mut seen = std::collections::HashSet::new();
        for (sa, sb) in conect {
            let (&ia, &ib) = match (serial_to_idx.get(&sa), serial_to_idx.get(&sb)) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(err(
                        0,
                        format!("CONECT references unknown serial {sa}/{sb}"),
                    ))
                }
            };
            let key = (ia.min(ib), ia.max(ib));
            if ia != ib && seen.insert(key) {
                mol.bonds.push(Bond::new(key.0, key.1, false));
            }
        }
    } else {
        perceive_bonds(&mut mol);
    }

    for (sa, sb) in rotbonds {
        let (&ia, &ib) = match (serial_to_idx.get(&sa), serial_to_idx.get(&sb)) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(err(
                    0,
                    format!("ROTBOND references unknown serial {sa}/{sb}"),
                ))
            }
        };
        let key = (ia.min(ib), ia.max(ib));
        let mut found = false;
        for bond in &mut mol.bonds {
            if (bond.i, bond.j) == key {
                bond.rotatable = true;
                found = true;
            }
        }
        if !found {
            return Err(err(0, format!("ROTBOND {sa}-{sb} is not a bond")));
        }
    }

    Ok(mol)
}

/// Distance-based bond perception using covalent radii.
pub fn perceive_bonds(mol: &mut Molecule) {
    mol.bonds.clear();
    let n = mol.atoms.len();
    for i in 0..n {
        for j in (i + 1)..n {
            let a = &mol.atoms[i];
            let b = &mol.atoms[j];
            let max_d = a.ty.covalent_radius() + b.ty.covalent_radius() + BOND_TOLERANCE;
            if a.pos.distance(b.pos) <= max_d {
                mol.bonds.push(Bond::new(i as u32, j as u32, false));
            }
        }
    }
}

/// Serialize a molecule to our PDBQT subset (always includes CONECT and
/// ROTBOND records so parsing is perception-free and exact).
pub fn write(mol: &Molecule) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if !mol.name.is_empty() {
        let _ = writeln!(out, "COMPND    {}", mol.name);
    }
    for (i, a) in mol.atoms.iter().enumerate() {
        let serial = i + 1;
        let name = format!("{}{}", a.ty.element(), serial);
        let _ = writeln!(
            out,
            "ATOM  {serial:>5} {name:<4} LIG A   1    {x:8.3}{y:8.3}{z:8.3}  1.00  0.00    {q:>6.3} {t}",
            x = a.pos.x,
            y = a.pos.y,
            z = a.pos.z,
            q = a.charge,
            t = a.ty.label(),
        );
    }
    for b in &mol.bonds {
        let _ = writeln!(out, "CONECT{:>5}{:>5}", b.i + 1, b.j + 1);
    }
    for b in mol.bonds.iter().filter(|b| b.rotatable) {
        let _ = writeln!(out, "REMARK ROTBOND {} {}", b.i + 1, b.j + 1);
    }
    let _ = writeln!(out, "END");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Molecule {
        let mut m = Molecule::new("ethanol-ish");
        m.atoms
            .push(Atom::new(Vec3::new(0.0, 0.0, 0.0), AtomType::C, 0.05));
        m.atoms
            .push(Atom::new(Vec3::new(1.5, 0.0, 0.0), AtomType::C, 0.12));
        m.atoms
            .push(Atom::new(Vec3::new(2.2, 1.2, 0.0), AtomType::OA, -0.38));
        m.atoms
            .push(Atom::new(Vec3::new(3.1, 1.1, 0.3), AtomType::HD, 0.21));
        m.bonds.push(Bond::new(0, 1, true));
        m.bonds.push(Bond::new(1, 2, true));
        m.bonds.push(Bond::new(2, 3, false));
        m
    }

    #[test]
    fn roundtrip_exact() {
        let m = sample();
        let text = write(&m);
        let back = parse(&text).unwrap();
        assert_eq!(back.name, m.name);
        assert_eq!(back.atoms.len(), m.atoms.len());
        assert_eq!(back.bonds.len(), m.bonds.len());
        for (a, b) in m.atoms.iter().zip(&back.atoms) {
            assert_eq!(a.ty, b.ty);
            assert!((a.charge - b.charge).abs() < 1e-3);
            assert!((a.pos - b.pos).norm() < 1e-3);
        }
        for (x, y) in m.bonds.iter().zip(&back.bonds) {
            assert_eq!((x.i, x.j, x.rotatable), (y.i, y.j, y.rotatable));
        }
    }

    #[test]
    fn perception_finds_chain_bonds() {
        let mut m = sample();
        m.bonds.clear();
        perceive_bonds(&mut m);
        // C-C (1.5), C-OA (~1.39), OA-HD (~0.95) are bonds; C0-OA (2.5+) not.
        let pairs: Vec<(u32, u32)> = m.bonds.iter().map(|b| (b.i, b.j)).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(2, 3)));
        assert!(!pairs.contains(&(0, 2)));
    }

    #[test]
    fn parse_without_conect_perceives() {
        let m = sample();
        let mut text = String::new();
        for line in write(&m).lines() {
            if !line.starts_with("CONECT") && !line.starts_with("REMARK ROTBOND") {
                text.push_str(line);
                text.push('\n');
            }
        }
        let back = parse(&text).unwrap();
        assert_eq!(back.bonds.len(), 3);
        assert!(back.bonds.iter().all(|b| !b.rotatable));
    }

    #[test]
    fn bad_type_is_an_error() {
        let text =
            "ATOM      1 X1   LIG A   1       0.000   0.000   0.000  1.00  0.00     0.100 Xx\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("unknown atom type"));
    }

    #[test]
    fn rotbond_must_reference_a_bond() {
        let m = sample();
        let mut text = write(&m);
        text.push_str("REMARK ROTBOND 1 4\n");
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("not a bond"), "{}", e.message);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse("").is_err());
        assert!(parse("REMARK nothing\n").is_err());
    }
}
