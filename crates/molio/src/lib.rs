//! # mudock-molio — molecule I/O and dataset synthesis
//!
//! Two jobs:
//!
//! * [`pdbqt`] — read/write the PDBQT subset the pipeline consumes
//!   (AutoDock's input format: coordinates + partial charges + atom types,
//!   with explicit bonds and rotatable-bond markers);
//! * [`synth`] — deterministic generators standing in for the datasets the
//!   paper evaluates on: a MEDIATE-like screening set
//!   ([`synth::mediate_like_set`]) and a PDBbind-1a30-like single complex
//!   ([`synth::complex_1a30_like`]). See DESIGN.md §4 for why the
//!   substitution preserves the paper's behaviour.

pub mod pdbqt;
pub mod stream;
pub mod synth;

pub use pdbqt::{parse, perceive_bonds, write, ParseError};
pub use stream::{parse_models, split_models, ChunkedExt, Chunks, MediateStream};
pub use synth::{
    complex_1a30_like, mediate_like_set, synthetic_ligand, synthetic_receptor, LigandSpec,
};
