//! Synthetic dataset generators — the reproduction's stand-in for the
//! MEDIATE screening set and the PDBbind `1a30` complex (see DESIGN.md §4).
//!
//! The docking kernels' cost and memory behaviour depend on: number of
//! atoms, number of rotatable bonds, atom-type mix (which maps are
//! touched), charges, and geometry. The generators match those
//! distributions for drug-like organic molecules, so every code path the
//! paper exercises is exercised here, without redistributing the original
//! datasets.
//!
//! Everything is deterministic in the seed: two calls with the same seed
//! produce bit-identical molecules.

use mudock_ff::types::AtomType;
use mudock_mol::{Atom, Bond, Molecule, Vec3};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Requested shape of one synthetic ligand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LigandSpec {
    /// Heavy (non-hydrogen) atom count.
    pub heavy_atoms: usize,
    /// Rotatable bonds to mark (actual count may be lower on very small
    /// molecules; see [`synthetic_ligand`]).
    pub torsions: usize,
}

impl Default for LigandSpec {
    fn default() -> Self {
        LigandSpec {
            heavy_atoms: 24,
            torsions: 6,
        }
    }
}

/// Standard Gaussian via Box–Muller (rand's core crate ships no normal
/// distribution; this avoids a rand_distr dependency).
fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-7);
    let u2: f32 = rng.random();
    (-2.0f32 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

fn random_unit(rng: &mut StdRng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.random::<f32>() * 2.0 - 1.0,
            rng.random::<f32>() * 2.0 - 1.0,
            rng.random::<f32>() * 2.0 - 1.0,
        );
        let n2 = v.norm_sq();
        if n2 > 1e-4 && n2 <= 1.0 {
            return v / n2.sqrt();
        }
    }
}

/// Typical partial charge for a type (Gasteiger-like magnitudes).
fn base_charge(t: AtomType) -> f32 {
    match t {
        AtomType::C => 0.03,
        AtomType::A => 0.01,
        AtomType::N => -0.30,
        AtomType::NA => -0.35,
        AtomType::OA => -0.39,
        AtomType::S => -0.10,
        AtomType::SA => -0.15,
        AtomType::H => 0.06,
        AtomType::HD => 0.22,
        AtomType::F => -0.25,
        AtomType::Cl => -0.20,
        AtomType::Br => -0.18,
        AtomType::I => -0.15,
        AtomType::P => 0.30,
    }
}

fn sample_weighted(rng: &mut StdRng, choices: &[(AtomType, f32)]) -> AtomType {
    let total: f32 = choices.iter().map(|(_, w)| w).sum();
    let mut x = rng.random::<f32>() * total;
    for (t, w) in choices {
        x -= w;
        if x <= 0.0 {
            return *t;
        }
    }
    choices[choices.len() - 1].0
}

/// Internal (degree ≥ 2) heavy-atom type mix for drug-like molecules.
const INTERNAL_TYPES: &[(AtomType, f32)] = &[
    (AtomType::C, 0.55),
    (AtomType::A, 0.20),
    (AtomType::N, 0.08),
    (AtomType::NA, 0.05),
    (AtomType::OA, 0.07),
    (AtomType::S, 0.02),
    (AtomType::P, 0.03),
];

/// Terminal (leaf) heavy-atom type mix.
const LEAF_TYPES: &[(AtomType, f32)] = &[
    (AtomType::C, 0.40),
    (AtomType::OA, 0.25),
    (AtomType::NA, 0.10),
    (AtomType::F, 0.08),
    (AtomType::Cl, 0.08),
    (AtomType::Br, 0.04),
    (AtomType::I, 0.02),
    (AtomType::SA, 0.03),
];

/// Generate one drug-like synthetic ligand. The skeleton is a random
/// spatial tree with ~1.54 Å bonds and a clash-rejection placement, so the
/// geometry is plausible enough for the force field (no overlapping
/// atoms). Rotatable bonds are chosen among internal tree edges, so every
/// marked bond yields a valid torsion.
pub fn synthetic_ligand(seed: u64, spec: LigandSpec) -> Molecule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6c69_6761_6e64);
    let n = spec.heavy_atoms.max(2);
    let mut mol = Molecule::new(format!("synth-lig-{seed:016x}"));

    // --- heavy-atom tree skeleton -------------------------------------
    let mut degree = vec![0usize; n];
    mol.atoms.push(Atom::new(Vec3::ZERO, AtomType::C, 0.0));
    for k in 1..n {
        // Prefer extending recent atoms: gives elongated, chain-with-
        // branches shapes instead of star graphs.
        let parent = loop {
            let lookback = 6.min(k);
            let cand = k - 1 - rng.random_range(0..lookback);
            if degree[cand] < 4 {
                break cand;
            }
        };
        let ppos = mol.atoms[parent].pos;
        let mut placed = None;
        for _ in 0..64 {
            let dir = random_unit(&mut rng);
            let pos = ppos + dir * (1.54 + 0.05 * gauss(&mut rng));
            let ok = mol
                .atoms
                .iter()
                .enumerate()
                .all(|(i, a)| i == parent || a.pos.distance(pos) >= 1.9);
            if ok {
                placed = Some(pos);
                break;
            }
        }
        // Fall back to a slightly longer bond if the neighborhood is dense.
        let pos = placed.unwrap_or_else(|| ppos + random_unit(&mut rng) * 2.2);
        mol.atoms.push(Atom::new(pos, AtomType::C, 0.0));
        mol.bonds.push(Bond::new(parent as u32, k as u32, false));
        degree[parent] += 1;
        degree[k] += 1;
    }

    // --- assign heavy types (leaves may carry halogens) -----------------
    #[allow(clippy::needless_range_loop)] // `i` indexes both `degree` and `mol.atoms`
    for i in 0..n {
        let t = if degree[i] <= 1 {
            sample_weighted(&mut rng, LEAF_TYPES)
        } else {
            sample_weighted(&mut rng, INTERNAL_TYPES)
        };
        mol.atoms[i].ty = t;
    }

    // --- hydrogens: donors on N/O acceptors, nonpolar H on some carbons --
    let heavy_count = mol.atoms.len();
    for i in 0..heavy_count {
        let t = mol.atoms[i].ty;
        let add_hd = (t == AtomType::OA || t == AtomType::NA) && rng.random_bool(0.5)
            || (t == AtomType::N && rng.random_bool(0.3));
        let add_h = (t == AtomType::C || t == AtomType::A) && rng.random_bool(0.25);
        if add_hd || add_h {
            let ppos = mol.atoms[i].pos;
            let mut pos = ppos + random_unit(&mut rng) * 1.0;
            for _ in 0..16 {
                let ok = mol
                    .atoms
                    .iter()
                    .enumerate()
                    .all(|(j, a)| j == i || a.pos.distance(pos) >= 1.2);
                if ok {
                    break;
                }
                pos = ppos + random_unit(&mut rng) * 1.0;
            }
            let ht = if add_hd { AtomType::HD } else { AtomType::H };
            let idx = mol.atoms.len() as u32;
            mol.atoms.push(Atom::new(pos, ht, 0.0));
            mol.bonds.push(Bond::new(i as u32, idx, false));
        }
    }

    // --- charges ---------------------------------------------------------
    for a in &mut mol.atoms {
        a.charge = base_charge(a.ty) + 0.05 * gauss(&mut rng);
    }

    // --- rotatable bonds: internal heavy-heavy tree edges ----------------
    let mut candidates: Vec<usize> = (0..mol.bonds.len())
        .filter(|&bi| {
            let b = mol.bonds[bi];
            let (i, j) = (b.i as usize, b.j as usize);
            i < n && j < n && degree[i] >= 2 && degree[j] >= 2
        })
        .collect();
    // Fisher-Yates prefix shuffle for a deterministic random subset.
    let want = spec.torsions.min(candidates.len());
    for k in 0..want {
        let pick = k + rng.random_range(0..(candidates.len() - k));
        candidates.swap(k, pick);
        mol.bonds[candidates[k]].rotatable = true;
    }

    mol.center_at_origin();
    debug_assert!(mol.validate().is_ok());
    mol
}

/// Generate a rigid pocket-shaped receptor: a jittered spherical shell of
/// protein-like atoms around the origin (the binding site), `n_atoms`
/// strong, with shell radius `pocket_radius` Å.
pub fn synthetic_receptor(seed: u64, n_atoms: usize, pocket_radius: f32) -> Molecule {
    const RECEPTOR_TYPES: &[(AtomType, f32)] = &[
        (AtomType::C, 0.45),
        (AtomType::A, 0.12),
        (AtomType::N, 0.10),
        (AtomType::NA, 0.05),
        (AtomType::OA, 0.18),
        (AtomType::S, 0.02),
        (AtomType::SA, 0.01),
        (AtomType::HD, 0.07),
    ];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7265_6365_7074);
    let mut mol = Molecule::new(format!("synth-rec-{seed:016x}"));
    let mut placed: Vec<Vec3> = Vec::with_capacity(n_atoms);
    for _ in 0..n_atoms {
        let mut pos = Vec3::ZERO;
        for _ in 0..128 {
            let dir = random_unit(&mut rng);
            let r = pocket_radius + 1.5 * gauss(&mut rng).clamp(-1.5, 3.0);
            pos = dir * r.max(pocket_radius * 0.8);
            if placed.iter().all(|p| p.distance(pos) >= 2.2) {
                break;
            }
        }
        placed.push(pos);
        let t = sample_weighted(&mut rng, RECEPTOR_TYPES);
        let q = base_charge(t) * 0.6 + 0.04 * gauss(&mut rng);
        mol.atoms.push(Atom::new(pos, t, q));
    }
    debug_assert!(mol.validate().is_ok());
    mol
}

/// Fixed-seed receptor+ligand pair standing in for the PDBbind `1a30`
/// complex the paper replicates for single-core measurements: 1a30's
/// ligand is a glutamate tripeptide (~24 heavy atoms, highly flexible),
/// docked into the HIV-1 protease pocket.
pub fn complex_1a30_like() -> (Molecule, Molecule) {
    let receptor = synthetic_receptor(0x1a30, 320, 9.0);
    let ligand = synthetic_ligand(
        0x1a30,
        LigandSpec {
            heavy_atoms: 24,
            torsions: 6,
        },
    );
    (receptor, ligand)
}

/// A MEDIATE-like screening set: `count` ligands whose heavy-atom counts
/// (10–50, log-normal-ish around ~22) and torsion counts (0–12, scaling
/// with size) follow the drug-like distribution of the paper's 2,500-
/// molecule subset.
pub fn mediate_like_set(seed: u64, count: usize) -> Vec<Molecule> {
    crate::stream::MediateStream::new(seed, count).collect()
}

/// Draw the `i`-th ligand of the MEDIATE-like set from `rng` (which must
/// have produced ligands `0..i` already — spec draws are sequential).
/// Shared by [`mediate_like_set`] and the lazy
/// [`MediateStream`](crate::stream::MediateStream).
pub(crate) fn mediate_like_next(rng: &mut StdRng, seed: u64, i: usize) -> Molecule {
    let heavy = (16.0 * (0.45 * gauss(rng)).exp() + 6.0) as usize;
    let heavy = heavy.clamp(10, 50);
    let max_tors = (heavy / 3).min(12);
    let torsions = rng.random_range(0..=max_tors);
    let child_seed = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64);
    synthetic_ligand(
        child_seed,
        LigandSpec {
            heavy_atoms: heavy,
            torsions,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_mol::Topology;

    #[test]
    fn ligand_is_deterministic() {
        let a = synthetic_ligand(42, LigandSpec::default());
        let b = synthetic_ligand(42, LigandSpec::default());
        assert_eq!(a.atoms.len(), b.atoms.len());
        for (x, y) in a.atoms.iter().zip(&b.atoms) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.ty, y.ty);
            assert_eq!(x.charge, y.charge);
        }
        let c = synthetic_ligand(43, LigandSpec::default());
        assert!(a.atoms.iter().zip(&c.atoms).any(|(x, y)| x.pos != y.pos));
    }

    #[test]
    fn ligand_is_valid_and_centered() {
        for seed in 0..20 {
            let m = synthetic_ligand(
                seed,
                LigandSpec {
                    heavy_atoms: 20,
                    torsions: 5,
                },
            );
            m.validate().unwrap();
            assert!(m.centroid().norm() < 1e-3, "centered at origin");
        }
    }

    #[test]
    fn requested_torsions_are_valid() {
        for seed in 0..20 {
            let m = synthetic_ligand(
                seed,
                LigandSpec {
                    heavy_atoms: 30,
                    torsions: 8,
                },
            );
            let topo = Topology::build(&m);
            // Tree edges always split the graph: every marked bond is a
            // usable torsion.
            assert_eq!(topo.torsions.len(), m.num_rotatable_bonds());
            assert!(m.num_rotatable_bonds() <= 8);
            assert!(
                m.num_rotatable_bonds() >= 1,
                "30 heavy atoms have internal bonds"
            );
        }
    }

    #[test]
    fn no_atom_clashes() {
        let m = synthetic_ligand(
            7,
            LigandSpec {
                heavy_atoms: 40,
                torsions: 10,
            },
        );
        for i in 0..m.atoms.len() {
            for j in (i + 1)..m.atoms.len() {
                let bonded = m.bonds.iter().any(|b| {
                    (b.i, b.j) == (i as u32, j as u32) || (b.i, b.j) == (j as u32, i as u32)
                });
                let d = m.atoms[i].pos.distance(m.atoms[j].pos);
                if !bonded {
                    assert!(d > 0.9, "atoms {i},{j} clash at {d} Å");
                }
            }
        }
    }

    #[test]
    fn receptor_forms_a_shell() {
        let r = synthetic_receptor(1, 200, 9.0);
        assert_eq!(r.atoms.len(), 200);
        r.validate().unwrap();
        let dists: Vec<f32> = r.atoms.iter().map(|a| a.pos.norm()).collect();
        let mean = dists.iter().sum::<f32>() / dists.len() as f32;
        assert!((mean - 9.0).abs() < 2.5, "mean shell radius {mean}");
        // The pocket center is empty: nothing within 60% of the radius.
        assert!(dists.iter().all(|&d| d > 0.6 * 9.0 * 0.8));
    }

    #[test]
    fn mediate_set_distribution() {
        let set = mediate_like_set(99, 64);
        assert_eq!(set.len(), 64);
        let heavies: Vec<usize> = set
            .iter()
            .map(|m| m.atoms.iter().filter(|a| !a.ty.is_hydrogen()).count())
            .collect();
        assert!(heavies.iter().all(|&h| (10..=50).contains(&h)));
        let mean = heavies.iter().sum::<usize>() as f32 / heavies.len() as f32;
        assert!((15.0..35.0).contains(&mean), "mean heavy atoms {mean}");
        // Sizes vary (not all identical).
        assert!(heavies.iter().any(|&h| h != heavies[0]));
        for m in &set {
            m.validate().unwrap();
        }
    }

    #[test]
    fn complex_1a30_like_shape() {
        let (rec, lig) = complex_1a30_like();
        assert!(rec.atoms.len() >= 300);
        let heavy = lig.atoms.iter().filter(|a| !a.ty.is_hydrogen()).count();
        assert_eq!(heavy, 24);
        assert!(lig.num_rotatable_bonds() >= 4);
        // Ligand fits inside the pocket shell.
        assert!(lig.radius() < 9.0);
    }
}
