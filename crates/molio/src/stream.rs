//! Chunked, lazy ligand streams — the ingestion substrate of
//! `mudock-serve`.
//!
//! Screening campaigns are too large to materialize: a million-ligand
//! library must be *pulled* through the docking pipeline in bounded
//! batches, not collected into a `Vec` first. This module provides
//!
//! * [`MediateStream`] — the lazy form of [`mediate_like_set`]: same
//!   seed → bit-identical molecules, generated on demand;
//! * [`split_models`] / [`parse_models`] — multi-molecule PDBQT
//!   (`MODEL`/`ENDMDL`-delimited, the AutoDock Vina library convention);
//! * [`Chunks`] / [`ChunkedExt::chunked`] — batches any ligand iterator
//!   into fixed-size chunks, the unit of scheduling, checkpointing, and
//!   result flushing in the serve layer.
//!
//! [`mediate_like_set`]: crate::synth::mediate_like_set

use mudock_mol::Molecule;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pdbqt::{self, ParseError};
use crate::synth;

/// Lazily generates the MEDIATE-like screening set: element `i` of
/// `MediateStream::new(seed, count)` equals element `i` of
/// `mediate_like_set(seed, count)`, without materializing the rest.
#[derive(Clone, Debug)]
pub struct MediateStream {
    rng: StdRng,
    seed: u64,
    next: usize,
    count: usize,
}

impl MediateStream {
    pub fn new(seed: u64, count: usize) -> MediateStream {
        MediateStream {
            rng: StdRng::seed_from_u64(seed ^ 0x6d65_6469_6174),
            seed,
            next: 0,
            count,
        }
    }

    /// Ligands remaining in the stream.
    pub fn remaining(&self) -> usize {
        self.count - self.next
    }
}

impl Iterator for MediateStream {
    type Item = Molecule;

    fn next(&mut self) -> Option<Molecule> {
        if self.next >= self.count {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(synth::mediate_like_next(&mut self.rng, self.seed, i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for MediateStream {}

/// Split multi-molecule PDBQT text into per-molecule slices.
///
/// Molecules are delimited by `MODEL n` / `ENDMDL` records (the AutoDock
/// Vina multi-ligand convention). Text without any `MODEL` record is one
/// molecule. The split is zero-copy; nothing is parsed yet.
pub fn split_models(text: &str) -> Vec<&str> {
    if !text.lines().any(|l| l.trim_start().starts_with("MODEL")) {
        return if text.trim().is_empty() {
            Vec::new()
        } else {
            vec![text]
        };
    }
    let mut models = Vec::new();
    let mut start: Option<usize> = None;
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        let trimmed = line.trim_start();
        if trimmed.starts_with("MODEL") {
            start = Some(offset + line.len());
        } else if trimmed.starts_with("ENDMDL") {
            if let Some(s) = start.take() {
                models.push(&text[s..offset]);
            }
        }
        offset += line.len();
    }
    // An unterminated trailing MODEL still counts.
    if let Some(s) = start {
        models.push(&text[s..]);
    }
    models
}

/// Iterator over the molecules of a (possibly multi-model) PDBQT text.
/// Each item parses lazily; a malformed model yields its `Err` without
/// stopping the stream.
pub fn parse_models(text: &str) -> impl Iterator<Item = Result<Molecule, ParseError>> + '_ {
    split_models(text).into_iter().map(pdbqt::parse)
}

/// Fixed-size batching adapter: yields `Vec`s of up to `size` items. The
/// final chunk may be short; an empty inner iterator yields no chunks.
#[derive(Clone, Debug)]
pub struct Chunks<I: Iterator> {
    inner: I,
    size: usize,
}

impl<I: Iterator> Iterator for Chunks<I> {
    type Item = Vec<I::Item>;

    fn next(&mut self) -> Option<Vec<I::Item>> {
        let mut chunk = Vec::with_capacity(self.size);
        for item in self.inner.by_ref() {
            chunk.push(item);
            if chunk.len() == self.size {
                break;
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

/// Extension adding [`Chunks`] to any iterator.
pub trait ChunkedExt: Iterator + Sized {
    /// Batch into chunks of `size` (> 0).
    fn chunked(self, size: usize) -> Chunks<Self> {
        assert!(size > 0, "chunk size must be positive");
        Chunks { inner: self, size }
    }
}

impl<I: Iterator> ChunkedExt for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::mediate_like_set;
    use crate::write;

    #[test]
    fn stream_matches_materialized_set() {
        let set = mediate_like_set(0xfeed, 12);
        let streamed: Vec<Molecule> = MediateStream::new(0xfeed, 12).collect();
        assert_eq!(set.len(), streamed.len());
        for (a, b) in set.iter().zip(&streamed) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.atoms.len(), b.atoms.len());
            for (x, y) in a.atoms.iter().zip(&b.atoms) {
                assert_eq!(x.pos, y.pos);
                assert_eq!(x.ty, y.ty);
                assert_eq!(x.charge, y.charge);
            }
            assert_eq!(a.bonds.len(), b.bonds.len());
        }
    }

    #[test]
    fn stream_reports_exact_length() {
        let mut s = MediateStream::new(1, 5);
        assert_eq!(s.len(), 5);
        s.next();
        s.next();
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn chunking_covers_everything_in_order() {
        let chunks: Vec<Vec<u32>> = (0..10u32).chunked(4).collect();
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
        let exact: Vec<Vec<u32>> = (0..8u32).chunked(4).collect();
        assert_eq!(exact.len(), 2);
        let empty: Vec<Vec<u32>> = (0..0u32).chunked(4).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn multi_model_round_trip() {
        let ligs = mediate_like_set(7, 3);
        let mut text = String::new();
        for (i, l) in ligs.iter().enumerate() {
            text.push_str(&format!("MODEL {}\n", i + 1));
            text.push_str(&write(l));
            text.push_str("ENDMDL\n");
        }
        let parsed: Vec<Molecule> = parse_models(&text).map(|r| r.unwrap()).collect();
        assert_eq!(parsed.len(), 3);
        for (orig, p) in ligs.iter().zip(&parsed) {
            assert_eq!(orig.atoms.len(), p.atoms.len());
        }
    }

    #[test]
    fn single_model_text_is_one_molecule() {
        let lig = mediate_like_set(9, 1).pop().unwrap();
        let text = write(&lig);
        let models = split_models(&text);
        assert_eq!(models.len(), 1);
        let parsed = pdbqt::parse(models[0]).unwrap();
        assert_eq!(parsed.atoms.len(), lig.atoms.len());
        assert!(split_models("").is_empty());
    }

    #[test]
    fn malformed_model_does_not_stop_the_stream() {
        let good = write(&mediate_like_set(3, 1).pop().unwrap());
        let text = format!(
            "MODEL 1\n{good}ENDMDL\nMODEL 2\nATOM this is not valid\nENDMDL\nMODEL 3\n{good}ENDMDL\n"
        );
        let results: Vec<Result<Molecule, ParseError>> = parse_models(&text).collect();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }
}
