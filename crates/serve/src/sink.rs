//! Result sinks: JSONL streaming and chunk checkpoints.
//!
//! Two append-only files per job, both flushed at every chunk boundary:
//!
//! * **JSONL** ([`JsonlSink`]) — one JSON object per docked ligand,
//!   written as its chunk completes, so downstream consumers tail the
//!   ranking while the job is still running;
//! * **checkpoint** ([`Checkpoint`]) — one block per completed chunk
//!   holding the chunk's top-k contribution (global index + exact score
//!   bits + name). A resubmitted job replays these blocks instead of
//!   re-docking, and — because scores are stored as bit patterns and
//!   replay preserves insertion order — finishes with a ranking identical
//!   to an uninterrupted run.
//!
//! The checkpoint is plain line-oriented text, torn-write safe: a block
//! only counts when its `end` marker was written, so a crash mid-append
//! costs at most the in-flight chunk.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use mudock_core::ScreenResult;

use crate::job::RankedLigand;

/// Escape a string for a JSON string literal.
///
/// Handles every mandatory escape (`"`, `\`, and all C0 controls), and
/// additionally escapes DEL (0x7f) and the C1 range (0x80–0x9f): legal
/// in JSON but invisible in logs and mangled by some line-oriented
/// consumers, and this output is written to JSONL files tailed by
/// exactly such tools. Rust strings are always valid UTF-8, so unpaired
/// surrogates cannot occur on the encode side (the wire parser rejects
/// them on decode).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || (0x7f..=0x9f).contains(&(c as u32)) => {
                out.push_str(&format!("\\u{:04x}", c as u32))
            }
            c => out.push(c),
        }
    }
    out
}

/// Streaming JSONL writer for per-ligand results.
pub struct JsonlSink {
    out: BufWriter<File>,
    lines: usize,
}

impl JsonlSink {
    /// Create (truncating) or append, depending on `append` — a resumed
    /// job appends so replayed chunks' lines are not duplicated.
    pub fn open(path: &Path, append: bool) -> std::io::Result<JsonlSink> {
        let file = if append {
            OpenOptions::new().create(true).append(true).open(path)?
        } else {
            File::create(path)?
        };
        Ok(JsonlSink {
            out: BufWriter::new(file),
            lines: 0,
        })
    }

    /// Write one ligand's result line. `index` is the ligand's global
    /// position in the job's stream.
    pub fn write_result(
        &mut self,
        job: &str,
        chunk: usize,
        index: usize,
        r: &ScreenResult,
    ) -> std::io::Result<()> {
        let score = match r.best_score {
            Some(s) => format!("{s}"),
            None => "null".into(),
        };
        writeln!(
            self.out,
            "{{\"job\":\"{}\",\"chunk\":{},\"index\":{},\"ligand\":\"{}\",\"score\":{},\"evaluations\":{}}}",
            json_escape(job),
            chunk,
            index,
            json_escape(&r.name),
            score,
            r.evaluations,
        )?;
        self.lines += 1;
        Ok(())
    }

    /// Lines written through this sink (excludes pre-existing lines when
    /// opened in append mode).
    pub fn lines(&self) -> usize {
        self.lines
    }

    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Percent-encode into pure ASCII: the bytes that would break the line
/// format, plus everything non-ASCII (multi-byte UTF-8 must round-trip
/// byte-exactly through the decoder below).
fn escape_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b'\n' | b'\r' => out.push_str(&format!("%{b:02x}")),
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("%{b:02x}")),
        }
    }
    out
}

fn unescape_name(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let Some(v) = s
                .get(i + 1..i + 3)
                .and_then(|h| u8::from_str_radix(h, 16).ok())
            {
                out.push(v);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Rewrite a resumed job's JSONL so only lines from chunks the
/// checkpoint recorded as complete remain. A crash between the JSONL
/// flush and the checkpoint's `end` marker leaves lines for a chunk
/// that will be re-docked; without pruning, those lines would appear
/// twice after the resume.
pub fn prune_jsonl(path: &Path, is_complete: impl Fn(usize) -> bool) -> std::io::Result<()> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let keep: Vec<&str> = text
        .lines()
        .filter(|l| jsonl_chunk(l).is_some_and(&is_complete))
        .collect();
    if keep.len() == text.lines().count() {
        return Ok(());
    }
    let mut out = keep.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// The `"chunk":N` field of one of [`JsonlSink`]'s lines.
fn jsonl_chunk(line: &str) -> Option<usize> {
    let rest = line.split("\"chunk\":").nth(1)?;
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// One completed chunk as recorded in the checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct ChunkRecord {
    /// Ligands the chunk contained.
    pub ligands: usize,
    /// The chunk's top-k contribution, in global-index order (the
    /// insertion order replay must preserve).
    pub top: Vec<RankedLigand>,
}

const HEADER_PREFIX: &str = "mudock-checkpoint v1 key ";

/// Append-only record of a job's completed chunks.
pub struct Checkpoint {
    out: BufWriter<File>,
    completed: BTreeMap<usize, ChunkRecord>,
    path: PathBuf,
}

impl Checkpoint {
    /// Open `path` for job fingerprint `key`. An existing compatible
    /// checkpoint is loaded for replay; a missing, corrupt, or
    /// mismatched-key file starts fresh (the fingerprint covers grids,
    /// seed, chunking, and k — resuming across a changed job would
    /// silently corrupt the ranking).
    pub fn open(path: &Path, key: u64) -> std::io::Result<Checkpoint> {
        let completed = match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text, key),
            Err(_) => None,
        };
        match completed {
            Some(completed) => {
                let file = OpenOptions::new().append(true).open(path)?;
                Ok(Checkpoint {
                    out: BufWriter::new(file),
                    completed,
                    path: path.into(),
                })
            }
            None => {
                let mut out = BufWriter::new(File::create(path)?);
                writeln!(out, "{HEADER_PREFIX}{key:016x}")?;
                out.flush()?;
                Ok(Checkpoint {
                    out,
                    completed: BTreeMap::new(),
                    path: path.into(),
                })
            }
        }
    }

    /// Parse checkpoint text; `None` on any incompatibility. Only blocks
    /// closed by their `end` marker count — a torn final block is simply
    /// re-docked.
    fn parse(text: &str, key: u64) -> Option<BTreeMap<usize, ChunkRecord>> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let stored = u64::from_str_radix(header.strip_prefix(HEADER_PREFIX)?, 16).ok()?;
        if stored != key {
            return None;
        }
        let mut completed = BTreeMap::new();
        let mut current: Option<(usize, ChunkRecord)> = None;
        for line in lines {
            let mut parts = line.splitn(4, ' ');
            match parts.next() {
                Some("chunk") => {
                    let idx: usize = parts.next()?.parse().ok()?;
                    let ligands: usize = parts.next()?.parse().ok()?;
                    current = Some((
                        idx,
                        ChunkRecord {
                            ligands,
                            top: Vec::new(),
                        },
                    ));
                }
                Some("entry") => {
                    let (_, rec) = current.as_mut()?;
                    let index: usize = parts.next()?.parse().ok()?;
                    let bits = u32::from_str_radix(parts.next()?, 16).ok()?;
                    let name = unescape_name(parts.next().unwrap_or(""));
                    rec.top.push(RankedLigand {
                        index,
                        name,
                        score: f32::from_bits(bits),
                    });
                }
                Some("end") => {
                    let idx: usize = parts.next()?.parse().ok()?;
                    let (start_idx, rec) = current.take()?;
                    if start_idx != idx {
                        return None;
                    }
                    completed.insert(idx, rec);
                }
                // A torn trailing line (crash mid-write): ignore the
                // open block, keep everything already closed.
                _ => break,
            }
        }
        Some(completed)
    }

    /// Chunks already completed, keyed by chunk index.
    pub fn completed(&self) -> &BTreeMap<usize, ChunkRecord> {
        &self.completed
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one completed chunk and flush it to disk.
    pub fn record(
        &mut self,
        chunk: usize,
        ligands: usize,
        top: &[RankedLigand],
    ) -> std::io::Result<()> {
        writeln!(self.out, "chunk {chunk} {ligands} {}", top.len())?;
        for e in top {
            writeln!(
                self.out,
                "entry {} {:08x} {}",
                e.index,
                e.score.to_bits(),
                escape_name(&e.name)
            )?;
        }
        writeln!(self.out, "end {chunk}")?;
        self.out.flush()?;
        self.completed.insert(
            chunk,
            ChunkRecord {
                ligands,
                top: top.to_vec(),
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_core::KernelStats;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mudock-sink-{}-{name}", std::process::id()))
    }

    fn ranked(index: usize, name: &str, score: f32) -> RankedLigand {
        RankedLigand {
            index,
            name: name.into(),
            score,
        }
    }

    #[test]
    fn jsonl_lines_are_valid_and_incremental() {
        let path = tmp("jsonl");
        let mut sink = JsonlSink::open(&path, false).unwrap();
        let r = ScreenResult {
            name: "lig \"odd\"\nname".into(),
            best_score: Some(-4.25),
            evaluations: 120,
            stats: KernelStats::default(),
        };
        sink.write_result("job-a", 0, 17, &r).unwrap();
        let failed = ScreenResult {
            name: "bad".into(),
            best_score: None,
            evaluations: 0,
            stats: KernelStats::default(),
        };
        sink.write_result("job-a", 0, 18, &failed).unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.lines(), 2);

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"score\":-4.25"));
        assert!(lines[0].contains("\\\"odd\\\"\\n"), "escaped: {}", lines[0]);
        assert!(lines[1].contains("\"score\":null"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn json_escape_covers_every_mandatory_control() {
        // Every C0 control must come out as an escape; none may pass
        // through raw (RFC 8259 §7).
        for c in (0u32..0x20).map(|c| char::from_u32(c).unwrap()) {
            let escaped = json_escape(&c.to_string());
            assert!(
                escaped.starts_with('\\'),
                "U+{:04X} must be escaped, got {escaped:?}",
                c as u32
            );
        }
        assert_eq!(json_escape("\u{7f}"), "\\u007f", "DEL is escaped");
        assert_eq!(json_escape("\u{85}"), "\\u0085", "C1 NEL is escaped");
        assert_eq!(json_escape("\u{9f}"), "\\u009f", "C1 end is escaped");
        // Shorthand escapes stay shorthand; printable text stays put.
        assert_eq!(json_escape("a\tb\nc\rd"), "a\\tb\\nc\\rd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain α😀"), "plain α😀");
        assert_eq!(json_escape("q\"e\\"), "q\\\"e\\\\");
        // U+00A0 (just past C1) is untouched.
        assert_eq!(json_escape("\u{a0}"), "\u{a0}");
    }

    #[test]
    fn checkpoint_round_trips_exact_scores() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut ck = Checkpoint::open(&path, 0xdead_beef).unwrap();
            assert!(ck.completed().is_empty());
            ck.record(0, 6, &[ranked(2, "a b", -1.5), ranked(5, "c%d", 0.25)])
                .unwrap();
            ck.record(1, 6, &[ranked(8, "e", f32::MIN_POSITIVE)])
                .unwrap();
        }
        let ck = Checkpoint::open(&path, 0xdead_beef).unwrap();
        assert_eq!(ck.completed().len(), 2);
        let c0 = &ck.completed()[&0];
        assert_eq!(c0.ligands, 6);
        assert_eq!(c0.top, vec![ranked(2, "a b", -1.5), ranked(5, "c%d", 0.25)]);
        assert_eq!(ck.completed()[&1].top[0].score, f32::MIN_POSITIVE);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_key_starts_fresh() {
        let path = tmp("mismatch");
        std::fs::remove_file(&path).ok();
        {
            let mut ck = Checkpoint::open(&path, 1).unwrap();
            ck.record(0, 4, &[ranked(0, "x", 1.0)]).unwrap();
        }
        let ck = Checkpoint::open(&path, 2).unwrap();
        assert!(
            ck.completed().is_empty(),
            "a different job fingerprint must not resume this checkpoint"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_trailing_block_is_dropped() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut ck = Checkpoint::open(&path, 9).unwrap();
            ck.record(0, 4, &[ranked(1, "kept", -2.0)]).unwrap();
        }
        // Simulate a crash mid-append: a chunk block without its `end`.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("chunk 1 4 1\nentry 5 3f800000 lost\n");
        std::fs::write(&path, text).unwrap();

        let mut ck = Checkpoint::open(&path, 9).unwrap();
        assert_eq!(ck.completed().len(), 1);
        assert!(ck.completed().contains_key(&0));
        // And the file stays appendable after recovery.
        ck.record(1, 4, &[ranked(5, "redone", 1.0)]).unwrap();
        drop(ck);
        let ck = Checkpoint::open(&path, 9).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ck.completed().len(), 2);
    }

    #[test]
    fn checkpoint_round_trips_non_ascii_names() {
        let path = tmp("unicode");
        std::fs::remove_file(&path).ok();
        let name = "α-ligand·β₂ (试验)";
        {
            let mut ck = Checkpoint::open(&path, 5).unwrap();
            ck.record(0, 1, &[ranked(0, name, -1.0)]).unwrap();
        }
        let ck = Checkpoint::open(&path, 5).unwrap();
        assert_eq!(ck.completed()[&0].top[0].name, name);
        // The file itself must be pure ASCII (line format safety).
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.is_ascii(), "escaped checkpoint must be ASCII: {text}");
    }

    #[test]
    fn prune_drops_lines_of_incomplete_chunks() {
        let path = tmp("prune");
        let r = |name: &str| ScreenResult {
            name: name.into(),
            best_score: Some(1.0),
            evaluations: 1,
            stats: KernelStats::default(),
        };
        {
            let mut sink = JsonlSink::open(&path, false).unwrap();
            sink.write_result("j", 0, 0, &r("a")).unwrap();
            sink.write_result("j", 0, 1, &r("b")).unwrap();
            sink.write_result("j", 1, 2, &r("c")).unwrap();
            sink.flush().unwrap();
        }
        // Chunk 1's checkpoint block was torn: its line must go.
        prune_jsonl(&path, |c| c == 0).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(!text.contains("\"index\":2"));
        // Pruning with everything complete is a no-op.
        prune_jsonl(&path, |_| true).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        // Missing file is fine (fresh job).
        std::fs::remove_file(&path).ok();
        prune_jsonl(&path, |_| true).unwrap();
    }

    #[test]
    fn garbage_file_starts_fresh() {
        let path = tmp("garbage");
        std::fs::write(&path, "not a checkpoint at all\n").unwrap();
        let ck = Checkpoint::open(&path, 3).unwrap();
        assert!(ck.completed().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
