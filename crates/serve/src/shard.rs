//! Receptor-aware sharding: partition executor capacity across targets.
//!
//! A screening node serves many receptors at once, but the executors
//! pull from one queue — so without arbitration, a burst of jobs
//! against a single hot target drains ahead of everyone else and
//! occupies every slot, exactly the multi-target degradation the
//! docking mini-app literature warns about. The `ShardRouter` groups
//! jobs into *shards* keyed by the grid content fingerprint
//! ([`mudock_grids::grid_cache_key`] over the receptor and its lattice)
//! and arbitrates every dequeue:
//!
//! * **fair share** — among eligible jobs, pick the one whose shard has
//!   the lowest `active / weight` occupancy ratio, so slots spread
//!   across receptors instead of pooling on the loudest one; ties fall
//!   back to priority, then submission order (the pre-sharding rules);
//! * **capacity partitioning** — each shard is soft-capped at
//!   `job_slots / shards` concurrent executors (configured shard count,
//!   or the number of live shards when unset). The cap is *soft*: it
//!   only defers a job while some under-cap shard has work queued.
//!   Work-conserving by construction — an executor never idles while
//!   any job is queued;
//! * **passthrough** — jobs whose campaign opted out with
//!   [`ShardPolicy::SingleQueue`](mudock_core::ShardPolicy) all join
//!   one shared *unsharded* group: among themselves they keep plain
//!   priority/FIFO order regardless of receptor, while the group as a
//!   whole competes for slots (and is capped) like any single shard —
//!   opting out is an ordering choice, never a way to outrank the
//!   fairness machinery.
//!
//! The router never owns jobs; it only answers "which queued job runs
//! next" for the queue's `pop` ([`crate::queue`]) and keeps the
//! per-shard depth/occupancy counters that `GET /stats` reports.

use std::collections::HashMap;
use std::sync::Mutex;

use mudock_grids::grid_cache_key;

use crate::job::JobSpec;
use crate::queue::QueuedJob;

/// Everything the queue needs to place one job in a shard, computed
/// once at submission (hashing the receptor is O(atoms) — not a cost
/// to pay per dequeue).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ShardInfo {
    /// Grid content fingerprint of the job's receptor + lattice.
    pub key: u64,
    /// Relative scheduling weight from the campaign's `ShardPolicy`.
    pub weight: f32,
    /// False for `ShardPolicy::SingleQueue` passthrough jobs.
    pub sharded: bool,
}

/// The shard a [`JobSpec`] belongs to, plus its scheduling stance.
pub(crate) fn shard_info(spec: &JobSpec) -> ShardInfo {
    let dims = spec.campaign.dims_for(&spec.receptor);
    ShardInfo {
        key: grid_cache_key(&spec.receptor, &dims),
        weight: spec.campaign.shard.weight(),
        sharded: spec.campaign.shard.is_sharded(),
    }
}

/// Point-in-time view of one shard (one row of `GET /stats`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardStat {
    /// Grid content fingerprint identifying the receptor + lattice.
    pub key: u64,
    /// Jobs waiting in the queue for this shard right now.
    pub queued: usize,
    /// Jobs executing for this shard right now.
    pub active: usize,
    /// Effective scheduling weight (the most recent submission's).
    pub weight: f32,
    /// Jobs ever submitted against this shard (monotonic).
    pub submitted: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct ShardState {
    queued: usize,
    active: usize,
    weight: f32,
    submitted: u64,
    /// Logical timestamp of the last touch — orders drained-shard
    /// retention when the map is over [`MAX_RETAINED_SHARDS`].
    last_seen: u64,
}

/// Cap on *drained* shard groups kept for `/stats`. Shard keys are
/// client-controlled (any receptor hashes to one), so without a bound
/// a client looping over distinct receptors would grow the map — and
/// every `/stats` body — forever. Live shards (work queued or
/// running) are bounded by queue capacity + executor slots and are
/// never pruned; this cap only limits the history.
const MAX_RETAINED_SHARDS: usize = 512;

struct RouterInner {
    /// Per-receptor shard groups.
    shards: HashMap<u64, ShardState>,
    /// The one shared group every `ShardPolicy::SingleQueue` job joins.
    /// Tracking it (instead of scoring passthrough jobs a flat zero)
    /// means opting out is never a strictly-better scheduling position:
    /// the group competes for slots like any single shard and is
    /// subject to the same cap, while its *members* keep plain
    /// priority/FIFO order among themselves regardless of receptor.
    unsharded: ShardState,
    /// Logical clock feeding `ShardState::last_seen`.
    tick: u64,
}

impl RouterInner {
    fn group_mut(&mut self, info: ShardInfo) -> &mut ShardState {
        self.tick += 1;
        let tick = self.tick;
        let s = if info.sharded {
            self.shards.entry(info.key).or_default()
        } else {
            &mut self.unsharded
        };
        s.last_seen = tick;
        s
    }

    /// Drop the coldest *drained* shards beyond the retention cap.
    /// Called after inserts; live shards always survive.
    fn prune_drained(&mut self) {
        while self.shards.len() > MAX_RETAINED_SHARDS {
            let coldest = self
                .shards
                .iter()
                .filter(|(_, s)| s.active == 0 && s.queued == 0)
                .min_by_key(|(_, s)| s.last_seen)
                .map(|(&k, _)| k);
            match coldest {
                Some(k) => {
                    self.shards.remove(&k);
                }
                // Everything is live — bounded by queue + slots, keep.
                None => break,
            }
        }
    }
}

/// Arbitrates executor slots across per-receptor shard groups.
pub(crate) struct ShardRouter {
    /// Executor slots being partitioned (`ServeConfig::job_slots`).
    job_slots: usize,
    /// Configured shard-group count (`ServeConfig::shards`); 0 derives
    /// the per-shard cap from the number of live shards instead.
    configured: usize,
    inner: Mutex<RouterInner>,
}

impl ShardRouter {
    pub fn new(job_slots: usize, configured: usize) -> ShardRouter {
        ShardRouter {
            job_slots: job_slots.max(1),
            configured,
            inner: Mutex::new(RouterInner {
                shards: HashMap::new(),
                unsharded: ShardState::default(),
                tick: 0,
            }),
        }
    }

    /// Record a submission (queue push) into its group.
    pub fn enqueued(&self, info: ShardInfo) {
        let mut inner = self.inner.lock().unwrap();
        let s = inner.group_mut(info);
        s.queued += 1;
        s.weight = info.weight; // latest submission's weight wins
        s.submitted += 1;
        inner.prune_drained();
    }

    /// Record that a selected job left the queue for an executor.
    fn started(&self, info: ShardInfo) {
        let mut inner = self.inner.lock().unwrap();
        let s = inner.group_mut(info);
        s.queued = s.queued.saturating_sub(1);
        s.active += 1;
    }

    /// Record that an executor finished (or discarded) a job.
    pub fn finished(&self, info: ShardInfo) {
        let mut inner = self.inner.lock().unwrap();
        let s = inner.group_mut(info);
        s.active = s.active.saturating_sub(1);
    }

    /// Concurrent-executor cap per shard given `live` shards with work.
    fn cap(&self, live: usize) -> usize {
        let groups = if self.configured > 0 {
            self.configured
        } else {
            live.max(1)
        };
        (self.job_slots / groups).max(1)
    }

    /// Pick the next job to run from `jobs` and account it as started.
    /// Returns the index into `jobs`, or `None` when `jobs` is empty.
    ///
    /// Selection order: soft-capped groups are deferred while an
    /// under-cap group has work; within the eligible pool, lowest
    /// `active / weight` occupancy first, then highest priority, then
    /// FIFO. Passthrough jobs all score through the one unsharded
    /// group, so they arbitrate against receptor shards as a single
    /// peer group (never a free pass). With a single shard — or only
    /// passthrough jobs — this degenerates to exactly the pre-sharding
    /// priority/FIFO order.
    pub fn select(&self, jobs: &[QueuedJob]) -> Option<usize> {
        let pick = self.choose(jobs);
        if let Some(i) = pick {
            self.started(jobs[i].shard);
        }
        pick
    }

    /// The job [`ShardRouter::select`] *would* pick, without accounting
    /// it as started — the grid cache's prefetcher asks this after
    /// every pop to learn which receptor is likely next, so nothing
    /// here may perturb the real arbitration.
    pub fn peek(&self, jobs: &[QueuedJob]) -> Option<usize> {
        self.choose(jobs)
    }

    fn choose(&self, jobs: &[QueuedJob]) -> Option<usize> {
        if jobs.is_empty() {
            return None;
        }
        {
            let inner = self.inner.lock().unwrap();
            let busy = |s: &ShardState| s.active > 0 || s.queued > 0;
            let live =
                inner.shards.values().filter(|s| busy(s)).count() + busy(&inner.unsharded) as usize;
            let cap = self.cap(live);
            // Ratios come from the *group's* stored weight (the latest
            // submission's, as documented on ShardStat), never a
            // queued job's own: one weight per shard keeps intra-shard
            // ordering strictly priority-then-FIFO — a job cannot jump
            // its own receptor's queue by claiming a big weight.
            let occupancy = |j: &QueuedJob| -> (f32, bool) {
                let (active, weight) = if j.shard.sharded {
                    inner
                        .shards
                        .get(&j.shard.key)
                        .map_or((0, j.shard.weight), |s| (s.active, s.weight))
                } else {
                    (inner.unsharded.active, inner.unsharded.weight)
                };
                (active as f32 / weight.max(1e-6), active < cap)
            };
            let best = |pool: &mut dyn Iterator<Item = usize>| {
                pool.min_by(|&a, &b| {
                    let (ra, _) = occupancy(&jobs[a]);
                    let (rb, _) = occupancy(&jobs[b]);
                    ra.partial_cmp(&rb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| jobs[b].spec.priority.cmp(&jobs[a].spec.priority))
                        .then_with(|| jobs[a].seq.cmp(&jobs[b].seq))
                })
            };
            let mut eligible = (0..jobs.len()).filter(|&i| occupancy(&jobs[i]).1);
            // Work-conserving: when every queued job sits in an
            // over-cap shard, run the best of them anyway.
            best(&mut eligible).or_else(|| best(&mut (0..jobs.len())))
        }
    }

    /// Per-shard counters, sorted by fingerprint for stable reporting.
    /// Shards persist after draining — up to [`MAX_RETAINED_SHARDS`],
    /// beyond which the coldest drained shards are dropped — so
    /// `/stats` keeps showing what recently ran without growing with
    /// every receptor a long-lived node ever saw. The unsharded
    /// passthrough group is accounting-only and not listed: it names
    /// no receptor.
    pub fn snapshot(&self) -> Vec<ShardStat> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<ShardStat> = inner
            .shards
            .iter()
            .map(|(&key, s)| ShardStat {
                key,
                queued: s.queued,
                active: s.active,
                weight: s.weight,
                submitted: s.submitted,
            })
            .collect();
        out.sort_unstable_by_key(|s| s.key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobShared, Priority};
    use mudock_core::{Campaign, ShardPolicy};
    use std::sync::Arc;

    fn job(seq: u64, key: u64, priority: Priority, policy: ShardPolicy) -> QueuedJob {
        let campaign = Campaign::builder().shard(policy).build().unwrap();
        let mut spec = JobSpec::from(campaign);
        spec.priority = priority;
        QueuedJob {
            spec,
            shared: JobShared::new(seq),
            seq,
            shard: ShardInfo {
                key,
                weight: policy.weight(),
                sharded: policy.is_sharded(),
            },
            hint: None,
        }
    }

    /// Drive the router as the queue would: enqueue everything, then
    /// pop via `select`, removing the chosen job each time.
    fn drain_order(router: &ShardRouter, mut jobs: Vec<QueuedJob>) -> Vec<u64> {
        for j in &jobs {
            router.enqueued(j.shard);
        }
        let mut order = Vec::new();
        while let Some(i) = router.select(&jobs) {
            let j = jobs.remove(i);
            order.push(j.seq);
        }
        order
    }

    #[test]
    fn single_shard_degenerates_to_priority_then_fifo() {
        let router = ShardRouter::new(4, 0);
        let jobs = vec![
            job(0, 1, Priority::Normal, ShardPolicy::FairShare),
            job(1, 1, Priority::Low, ShardPolicy::FairShare),
            job(2, 1, Priority::High, ShardPolicy::FairShare),
            job(3, 1, Priority::Normal, ShardPolicy::FairShare),
        ];
        // Without finished() calls the shard's active count grows with
        // every pop, but a single shard still orders by priority/FIFO —
        // the occupancy ratio is common to every candidate.
        assert_eq!(drain_order(&router, jobs), vec![2, 0, 3, 1]);
    }

    #[test]
    fn underserved_shard_preempts_the_hot_one() {
        let router = ShardRouter::new(2, 0);
        // Shard 1 is already running a job; shard 2's job must be
        // selected next even though shard 1's queued job is earlier
        // *and* higher priority — fairness dominates priority across
        // shards.
        let running = job(0, 1, Priority::Normal, ShardPolicy::FairShare);
        router.enqueued(running.shard);
        let started = router.select(std::slice::from_ref(&running));
        assert_eq!(started, Some(0));
        let queued = vec![
            job(1, 1, Priority::High, ShardPolicy::FairShare),
            job(2, 2, Priority::Normal, ShardPolicy::FairShare),
        ];
        for j in &queued {
            router.enqueued(j.shard);
        }
        assert_eq!(router.select(&queued), Some(1), "shard 2 is idle");
    }

    #[test]
    fn soft_cap_defers_but_never_starves() {
        // 4 slots across a configured 2 shards → cap 2 per shard.
        let router = ShardRouter::new(4, 2);
        let hot: Vec<QueuedJob> = (0..3)
            .map(|i| job(i, 1, Priority::Normal, ShardPolicy::FairShare))
            .collect();
        for j in &hot {
            router.enqueued(j.shard);
        }
        // Two hot-shard jobs start; the third is at the cap…
        assert_eq!(router.select(&hot), Some(0));
        assert_eq!(router.select(&hot[1..]), Some(0));
        // …but with nothing else queued, work conservation runs it.
        assert_eq!(
            router.select(&hot[2..]),
            Some(0),
            "an executor must not idle while work is queued"
        );
        router.finished(hot[0].shard);

        // Back at the cap (2 active), a cold-shard job wins even
        // though the hot job outranks it on priority.
        let pool = vec![
            job(10, 1, Priority::High, ShardPolicy::FairShare),
            job(11, 2, Priority::Low, ShardPolicy::FairShare),
        ];
        for j in &pool {
            router.enqueued(j.shard);
        }
        assert_eq!(router.select(&pool), Some(1), "over-cap shard defers");
    }

    #[test]
    fn weight_cannot_jump_the_queue_within_a_shard() {
        let router = ShardRouter::new(4, 0);
        // Shard 1 busy; its queue holds an earlier High fair-share job
        // and a later Low job claiming a huge weight. The weight tilts
        // the whole *shard's* ratio, never one job's — intra-shard
        // order stays priority-then-FIFO.
        let running = job(0, 1, Priority::Normal, ShardPolicy::FairShare);
        router.enqueued(running.shard);
        router.select(std::slice::from_ref(&running));
        let pool = vec![
            job(1, 1, Priority::High, ShardPolicy::FairShare),
            job(2, 1, Priority::Low, ShardPolicy::Weighted(512.0)),
        ];
        for j in &pool {
            router.enqueued(j.shard);
        }
        assert_eq!(router.select(&pool), Some(0), "priority beats weight");
    }

    #[test]
    fn weights_tilt_the_occupancy_ratio() {
        let router = ShardRouter::new(8, 0);
        // Shard 1 (weight 4) has 2 active → ratio 0.5; shard 2
        // (weight 1) has 1 active → ratio 1.0. The weighted shard may
        // take the slot despite having more jobs in flight.
        for _ in 0..2 {
            let j = job(0, 1, Priority::Normal, ShardPolicy::Weighted(4.0));
            router.enqueued(j.shard);
            router.select(std::slice::from_ref(&j));
        }
        let j2 = job(1, 2, Priority::Normal, ShardPolicy::FairShare);
        router.enqueued(j2.shard);
        router.select(std::slice::from_ref(&j2));

        let pool = vec![
            job(2, 2, Priority::Normal, ShardPolicy::FairShare),
            job(3, 1, Priority::Normal, ShardPolicy::Weighted(4.0)),
        ];
        for j in &pool {
            router.enqueued(j.shard);
        }
        assert_eq!(router.select(&pool), Some(1));
    }

    #[test]
    fn single_queue_jobs_form_one_unsharded_group() {
        let router = ShardRouter::new(2, 2);
        // With its receptor's shard saturated, a sharded job defers —
        // but a passthrough job belongs to the (idle) unsharded group
        // and takes the slot, even against the same receptor.
        let sharded = job(0, 1, Priority::Normal, ShardPolicy::FairShare);
        router.enqueued(sharded.shard);
        router.select(std::slice::from_ref(&sharded));
        let pool = vec![
            job(1, 1, Priority::Normal, ShardPolicy::FairShare),
            job(2, 1, Priority::Low, ShardPolicy::SingleQueue),
        ];
        router.enqueued(pool[0].shard);
        router.enqueued(pool[1].shard);
        assert_eq!(router.select(&pool), Some(1));
        let snap = router.snapshot();
        assert_eq!(snap.len(), 1, "passthrough jobs never create shards");
        assert_eq!(snap[0].submitted, 2);
    }

    #[test]
    fn single_queue_cannot_monopolize_the_node() {
        // Opting out must never be a strictly-better scheduling
        // position: a busy unsharded group defers to an idle receptor
        // shard, and ties resolve by priority — so a flood of
        // passthrough submissions cannot starve sharded clients.
        let router = ShardRouter::new(2, 0);
        let running = job(0, 0, Priority::Normal, ShardPolicy::SingleQueue);
        router.enqueued(running.shard);
        router.select(std::slice::from_ref(&running)); // unsharded active: 1
        let pool = vec![
            job(1, 0, Priority::High, ShardPolicy::SingleQueue),
            job(2, 9, Priority::Low, ShardPolicy::FairShare),
        ];
        for j in &pool {
            router.enqueued(j.shard);
        }
        // live groups = unsharded (busy) + shard 9 → cap 1: the
        // passthrough backlog is at its cap, the idle shard wins.
        assert_eq!(router.select(&pool), Some(1));

        // At equal occupancy (both groups busy), priority decides —
        // the passthrough job holds no trump card.
        let tie = vec![
            job(3, 0, Priority::Low, ShardPolicy::SingleQueue),
            job(4, 9, Priority::High, ShardPolicy::FairShare),
        ];
        for j in &tie {
            router.enqueued(j.shard);
        }
        assert_eq!(router.select(&tie), Some(1));
    }

    #[test]
    fn snapshot_reports_depth_and_occupancy() {
        let router = ShardRouter::new(4, 0);
        let a = job(0, 10, Priority::Normal, ShardPolicy::FairShare);
        let b1 = job(1, 20, Priority::Normal, ShardPolicy::Weighted(2.0));
        let b2 = job(2, 20, Priority::Normal, ShardPolicy::Weighted(2.0));
        for j in [&a, &b1, &b2] {
            router.enqueued(j.shard);
        }
        router.select(std::slice::from_ref(&a)); // a starts
        let snap = router.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            (
                snap[0].key,
                snap[0].active,
                snap[0].queued,
                snap[0].submitted
            ),
            (10, 1, 0, 1)
        );
        assert_eq!(
            (snap[1].key, snap[1].active, snap[1].queued, snap[1].weight),
            (20, 0, 2, 2.0)
        );
        router.finished(a.shard);
        let snap = router.snapshot();
        assert_eq!(snap[0].active, 0);
        assert_eq!(snap.len(), 2, "drained shards stay visible in stats");
    }

    #[test]
    fn drained_shard_retention_is_bounded_and_live_shards_survive() {
        let router = ShardRouter::new(2, 0);
        // A client looping over distinct receptors: every key drains
        // (enqueue → start → finish) before the next arrives.
        for key in 0..(MAX_RETAINED_SHARDS as u64 + 40) {
            let j = job(key, key + 1, Priority::Normal, ShardPolicy::FairShare);
            router.enqueued(j.shard);
            router.select(std::slice::from_ref(&j));
            router.finished(j.shard);
        }
        let snap = router.snapshot();
        assert_eq!(snap.len(), MAX_RETAINED_SHARDS, "history is capped");
        // The coldest entries went first: the earliest keys are gone,
        // the most recent survive.
        assert!(snap.iter().all(|s| s.key > 40));

        // A live (still-active) shard is never pruned, no matter how
        // much colder it is than the churn around it.
        let live = job(9999, 0xdead_beef, Priority::Normal, ShardPolicy::FairShare);
        router.enqueued(live.shard);
        router.select(std::slice::from_ref(&live)); // stays active
        for key in 0..(MAX_RETAINED_SHARDS as u64 + 10) {
            let j = job(
                key,
                0x1_0000 + key,
                Priority::Normal,
                ShardPolicy::FairShare,
            );
            router.enqueued(j.shard);
            router.select(std::slice::from_ref(&j));
            router.finished(j.shard);
        }
        assert!(
            router
                .snapshot()
                .iter()
                .any(|s| s.key == 0xdead_beef && s.active == 1),
            "live shards must survive retention pruning"
        );
    }

    #[test]
    fn shard_info_keys_by_receptor_content() {
        let with_receptor = |seed| JobSpec {
            receptor: Arc::new(mudock_molio::synthetic_receptor(seed, 30, 5.0)),
            ..JobSpec::default()
        };
        let (a, b, a2) = (with_receptor(1), with_receptor(2), with_receptor(1));
        assert_eq!(shard_info(&a).key, shard_info(&a2).key);
        assert_ne!(shard_info(&a).key, shard_info(&b).key);
        assert!(shard_info(&a).sharded);
        assert_eq!(shard_info(&a).weight, 1.0);
    }
}
