//! The `*.trace` cache-event recorder and its parser.
//!
//! A [`GridCache`](super::GridCache) built with
//! [`GridCacheBuilder::trace`](super::GridCacheBuilder::trace) appends
//! one JSONL line per cache event — every access (with its outcome and
//! wall-clock cost), eviction, spill write, spill prune, prefetch hint,
//! and completed prefetch — to a trace file. The file is the input to
//! the offline policy replayer (`cache_replay` in `mudock-bench`, built
//! on [`super::policy`]): record a trace from production traffic once,
//! then sweep replacement policies over it without touching the node.
//!
//! # Format
//!
//! One JSON object per line. The first line is a header carrying the
//! recording cache's configuration, so a replay defaults to the exact
//! geometry the trace was captured under:
//!
//! ```text
//! {"ev":"open","version":1,"capacity":4,"spill_capacity":16,"policy":"slru","prefetch":false}
//! {"ev":"warm","t_ns":1200,"restored":2,"quarantined":0}
//! {"ev":"access","t_ns":51023,"key":"00c2a7...","level":"avx2","source":"built","bytes":4096,"dur_ns":49800}
//! {"ev":"evict","t_ns":93011,"key":"00c2a7...","level":"avx2"}
//! {"ev":"spill","t_ns":94500,"key":"00c2a7...","level":"avx2","bytes":4096}
//! ```
//!
//! Grid keys are the 16-hex-digit content fingerprint used for spill
//! file names; `t_ns` is monotonic nanoseconds since the recorder was
//! opened. Every line is flushed as it is written, so a trace survives
//! an abrupt `kill -9` of the node (that is the warm-restart test's
//! whole point). Writers hold a dedicated mutex — never the cache lock
//! — so tracing cannot extend the cache's critical sections.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use mudock_grids::SimdLevel;
use mudock_obs::GridSource;

/// A cache key as traced: content fingerprint plus build level.
pub type TraceKey = (u64, SimdLevel);

/// The trace file's first line: the recording cache's configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version (currently 1).
    pub version: u32,
    /// Resident capacity of the recording cache.
    pub capacity: usize,
    /// Spill-tier capacity (0 when no spill tier was configured).
    pub spill_capacity: usize,
    /// Name of the live replacement policy (see
    /// [`CachePolicy::name`](super::policy::CachePolicy::name)).
    pub policy: String,
    /// Whether the recording cache had prefetch enabled.
    pub prefetch: bool,
}

/// One timestamped cache event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Monotonic nanoseconds since the recorder was opened.
    pub t_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The event payloads a [`GridCache`](super::GridCache) records.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// A spill directory rescan at startup: how many valid files were
    /// restored into the tier and how many were quarantined as `.bad`.
    Warm {
        /// Valid spill files re-registered.
        restored: u64,
        /// Corrupt/unparseable files renamed aside.
        quarantined: u64,
    },
    /// One spill file re-registered by the startup rescan, in
    /// oldest-first order. Replay models mirror these into their file
    /// tables so a trace recorded on a warm-restarted node replays
    /// faithfully.
    Restore {
        /// The restored key.
        key: TraceKey,
    },
    /// One `get_or_build` lookup resolved.
    Access {
        /// The grid key looked up.
        key: TraceKey,
        /// How the grid set was obtained.
        source: GridSource,
        /// Size of the grid data in bytes.
        bytes: u64,
        /// Wall-clock nanoseconds the caller waited for the grid set.
        dur_ns: u64,
    },
    /// A resident entry was discarded to respect the capacity bound.
    Evict {
        /// The evicted key.
        key: TraceKey,
    },
    /// An evicted grid set was written to the spill tier.
    Spill {
        /// The spilled key.
        key: TraceKey,
        /// Bytes written.
        bytes: u64,
    },
    /// A spill file was deleted to respect the spill-tier bound.
    SpillDrop {
        /// The pruned key.
        key: TraceKey,
    },
    /// The router predicted this key is needed next (next queued job).
    Hint {
        /// The predicted key.
        key: TraceKey,
    },
    /// A prefetch reloaded a spilled grid set ahead of demand.
    Prefetch {
        /// The prefetched key.
        key: TraceKey,
        /// Wall-clock nanoseconds the background reload took.
        dur_ns: u64,
    },
}

/// A parsed trace file: header (if present) plus events in file order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The `open` line, when the file has one.
    pub header: Option<TraceHeader>,
    /// All subsequent events, in recording order.
    pub events: Vec<TraceEvent>,
}

/// Appends cache events to a trace file, one flushed JSONL line each.
pub struct CacheTracer {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
    t0: Instant,
    path: PathBuf,
}

fn key_json(key: TraceKey) -> String {
    format!("\"key\":\"{:016x}\",\"level\":\"{}\"", key.0, key.1.name())
}

impl CacheTracer {
    /// Create (truncate) `path` and write the header line.
    pub fn create(path: &Path, header: &TraceHeader) -> std::io::Result<CacheTracer> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            out,
            "{{\"ev\":\"open\",\"version\":{},\"capacity\":{},\"spill_capacity\":{},\
             \"policy\":\"{}\",\"prefetch\":{}}}",
            header.version, header.capacity, header.spill_capacity, header.policy, header.prefetch
        )?;
        out.flush()?;
        Ok(CacheTracer {
            out: Mutex::new(out),
            t0: Instant::now(),
            path: path.to_path_buf(),
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record one event, stamped with the current monotonic offset.
    /// I/O errors are swallowed: tracing is diagnostics, never a
    /// correctness dependency of the cache.
    pub fn emit(&self, kind: TraceEventKind) {
        let t_ns = u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let body = match kind {
            TraceEventKind::Warm {
                restored,
                quarantined,
            } => format!("\"ev\":\"warm\",\"t_ns\":{t_ns},\"restored\":{restored},\"quarantined\":{quarantined}"),
            TraceEventKind::Restore { key } => {
                format!("\"ev\":\"restore\",\"t_ns\":{t_ns},{}", key_json(key))
            }
            TraceEventKind::Access {
                key,
                source,
                bytes,
                dur_ns,
            } => format!(
                "\"ev\":\"access\",\"t_ns\":{t_ns},{},\"source\":\"{}\",\"bytes\":{bytes},\"dur_ns\":{dur_ns}",
                key_json(key),
                source.name()
            ),
            TraceEventKind::Evict { key } => {
                format!("\"ev\":\"evict\",\"t_ns\":{t_ns},{}", key_json(key))
            }
            TraceEventKind::Spill { key, bytes } => format!(
                "\"ev\":\"spill\",\"t_ns\":{t_ns},{},\"bytes\":{bytes}",
                key_json(key)
            ),
            TraceEventKind::SpillDrop { key } => {
                format!("\"ev\":\"spill_drop\",\"t_ns\":{t_ns},{}", key_json(key))
            }
            TraceEventKind::Hint { key } => {
                format!("\"ev\":\"hint\",\"t_ns\":{t_ns},{}", key_json(key))
            }
            TraceEventKind::Prefetch { key, dur_ns } => format!(
                "\"ev\":\"prefetch\",\"t_ns\":{t_ns},{},\"dur_ns\":{dur_ns}",
                key_json(key)
            ),
        };
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{{{body}}}");
        let _ = out.flush();
    }
}

fn str_field(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn u64_field(line: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn bool_field(line: &str, name: &str) -> Option<bool> {
    let pat = format!("\"{name}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn key_field(line: &str) -> Option<TraceKey> {
    let key = u64::from_str_radix(&str_field(line, "key")?, 16).ok()?;
    let level = SimdLevel::parse(&str_field(line, "level")?)?;
    Some((key, level))
}

fn source_field(line: &str) -> Option<GridSource> {
    match str_field(line, "source")?.as_str() {
        "hit" => Some(GridSource::Hit),
        "built" => Some(GridSource::Built),
        "reloaded" => Some(GridSource::Reloaded),
        _ => None,
    }
}

fn parse_line(line: &str) -> Option<Result<TraceEvent, TraceHeader>> {
    let ev = str_field(line, "ev")?;
    if ev == "open" {
        return Some(Err(TraceHeader {
            version: u64_field(line, "version")? as u32,
            capacity: u64_field(line, "capacity")? as usize,
            spill_capacity: u64_field(line, "spill_capacity")? as usize,
            policy: str_field(line, "policy")?,
            prefetch: bool_field(line, "prefetch")?,
        }));
    }
    let t_ns = u64_field(line, "t_ns")?;
    let kind = match ev.as_str() {
        "warm" => TraceEventKind::Warm {
            restored: u64_field(line, "restored")?,
            quarantined: u64_field(line, "quarantined")?,
        },
        "restore" => TraceEventKind::Restore {
            key: key_field(line)?,
        },
        "access" => TraceEventKind::Access {
            key: key_field(line)?,
            source: source_field(line)?,
            bytes: u64_field(line, "bytes")?,
            dur_ns: u64_field(line, "dur_ns")?,
        },
        "evict" => TraceEventKind::Evict {
            key: key_field(line)?,
        },
        "spill" => TraceEventKind::Spill {
            key: key_field(line)?,
            bytes: u64_field(line, "bytes")?,
        },
        "spill_drop" => TraceEventKind::SpillDrop {
            key: key_field(line)?,
        },
        "hint" => TraceEventKind::Hint {
            key: key_field(line)?,
        },
        "prefetch" => TraceEventKind::Prefetch {
            key: key_field(line)?,
            dur_ns: u64_field(line, "dur_ns")?,
        },
        _ => return None,
    };
    Some(Ok(TraceEvent { t_ns, kind }))
}

/// Parse a trace file. Unknown event kinds are skipped (forward
/// compatibility); a structurally broken line is an error naming its
/// line number, so a damaged trace fails loudly instead of replaying
/// a silently shortened history.
pub fn read_trace(path: &Path) -> std::io::Result<Trace> {
    let text = std::fs::read_to_string(path)?;
    let mut trace = Trace::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(Ok(ev)) => trace.events.push(ev),
            Some(Err(header)) => trace.header = Some(header),
            None => {
                // Tolerate unknown-but-well-formed events; reject junk.
                if str_field(line, "ev").is_some() {
                    continue;
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("trace line {}: unparseable: {line}", i + 1),
                ));
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mudock-cache-trace-{}-{name}", std::process::id()))
    }

    #[test]
    fn events_round_trip_through_the_file() {
        let path = tmp("roundtrip.trace");
        let header = TraceHeader {
            version: 1,
            capacity: 2,
            spill_capacity: 4,
            policy: "slru".into(),
            prefetch: true,
        };
        let tracer = CacheTracer::create(&path, &header).unwrap();
        let key = (0x00c2_a7ff_0102_0304, SimdLevel::Scalar);
        let kinds = vec![
            TraceEventKind::Warm {
                restored: 2,
                quarantined: 1,
            },
            TraceEventKind::Restore { key },
            TraceEventKind::Access {
                key,
                source: GridSource::Built,
                bytes: 4096,
                dur_ns: 1234,
            },
            TraceEventKind::Evict { key },
            TraceEventKind::Spill { key, bytes: 4096 },
            TraceEventKind::SpillDrop { key },
            TraceEventKind::Hint { key },
            TraceEventKind::Prefetch { key, dur_ns: 99 },
        ];
        for k in &kinds {
            tracer.emit(k.clone());
        }
        let trace = read_trace(&path).unwrap();
        assert_eq!(trace.header, Some(header));
        let got: Vec<&TraceEventKind> = trace.events.iter().map(|e| &e.kind).collect();
        assert_eq!(got, kinds.iter().collect::<Vec<_>>());
        // Timestamps are monotone non-decreasing.
        for w in trace.events.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn junk_lines_fail_loudly_but_unknown_events_are_skipped() {
        let path = tmp("junk.trace");
        std::fs::write(&path, "{\"ev\":\"future_thing\",\"t_ns\":1}\n").unwrap();
        assert_eq!(read_trace(&path).unwrap().events.len(), 0);
        std::fs::write(&path, "complete garbage\n").unwrap();
        assert!(read_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
