//! Cache of built grid sets, keyed by receptor + lattice content +
//! build level — with a policy lab bolted to its side.
//!
//! AutoGrid-style precomputation is the dominant *fixed* cost of a
//! screening job; campaigns hammer the same few targets with millions of
//! ligands. The cache keys built [`GridSet`]s by
//! `(content fingerprint, SIMD level)`: the fingerprint is
//! [`mudock_grids::grid_cache_key`] (receptor atoms + lattice geometry,
//! so two `Molecule` values with identical atoms share an entry
//! regardless of provenance), and the [`SimdLevel`] is the level the
//! maps were built at. Jobs pinned to different levels — heterogeneous
//! clients sharing one node — therefore get *distinct* entries instead
//! of silently reading grids built with another job's instruction set.
//!
//! Each entry is an [`OnceLock`] slot: the first job to miss installs the
//! slot and builds into it; concurrent jobs for the same key find the
//! slot (a *hit* — the build runs once either way) and block inside
//! `get_or_init` until it is ready. Build wall time and bytes produced
//! are recorded into a [`PerfMonitor`] region (`"serve::grid_build"`).
//!
//! # The spill tier
//!
//! With many receptors in flight, the resident capacity thrashes: a
//! grid set evicted today is rebuilt tomorrow at full AutoGrid cost.
//! A cache built with a [`SpillConfig`] adds a bounded on-disk tier: on
//! eviction, the built [`GridSet`] is written through
//! [`mudock_grids::io::save`] into the spill directory (atomically —
//! temp file + rename), and the next miss on that key *reloads* it
//! instead of rebuilding. Loads are bit-exact (the format round-trips
//! f32 bit patterns), so a reloaded grid scores ligands identically to
//! the original build. The directory is bounded by
//! [`SpillConfig::capacity`]; the oldest spill files are deleted beyond
//! it. Spills and reloads are counted in [`CacheStats`] and surface in
//! `GET /stats`.
//!
//! # Warm restarts
//!
//! Spill files persist across process restarts. At construction, a
//! cache with a spill tier rescans its directory: files whose names
//! parse and whose contents pass [`mudock_grids::io::probe`] are
//! re-registered (oldest first), so a restarted node serves its first
//! job on a previously-seen receptor from disk instead of rebuilding.
//! Anything else — truncated writes, foreign bytes, unparseable names —
//! is *quarantined*: renamed with a `.bad` suffix and counted in
//! [`CacheStats::quarantined`], never loaded and never silently
//! deleted, so an operator can inspect what went wrong.
//!
//! # Policies, prefetch, and the trace lab
//!
//! Eviction victims are chosen by a [`policy::CachePolicy`] (default:
//! segmented LRU). A cache built with
//! [`GridCacheBuilder::prefetch`] additionally acts on *hints* from the
//! shard router ([`GridCache::hint`]): when the next queued job's grids
//! sit in the spill tier, a background thread reloads them before the
//! job is dequeued, overlapping disk latency with the previous job's
//! docking. Every event (accesses, evictions, spills, hints,
//! prefetches) can be recorded to a `*.trace` file
//! ([`GridCacheBuilder::trace`]) and replayed offline against
//! alternative policies — see [`trace`] for the format and
//! [`policy`] for the models; `cache_replay` in `mudock-bench` is the
//! driver. Policy choices steer *performance* only: reloads and
//! prefetched grids are byte-equal to fresh builds, and the
//! build-once-per-key invariant holds under every policy.
//!
//! # Lock ordering
//!
//! There are two locks: the cache's entry/file-table mutex and the
//! tracer's writer mutex. Spill I/O, grid builds, and trace writes all
//! happen *outside* the entry mutex (only same-key lookups ever wait on
//! disk or a build, inside their shared `OnceLock`), and the tracer
//! never takes the entry mutex — so the order is strictly
//! entries-then-nothing, and neither lock is ever held across the
//! other.
#![deny(missing_docs)]

pub mod policy;
pub mod trace;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use mudock_grids::{grid_cache_key, GridBuilder, GridDims, GridSet, SimdLevel};
use mudock_mol::Molecule;
use mudock_obs::{Counter, GridSource};
use mudock_perf::PerfMonitor;
use parking_lot::Mutex;

use policy::CachePolicy;
use trace::{CacheTracer, TraceEventKind, TraceHeader};

/// Perf region name under which grid builds are recorded.
pub const GRID_BUILD_REGION: &str = "serve::grid_build";

/// Bounded on-disk spill tier for evicted grid sets.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Directory spill files are written into (created on first use).
    pub dir: PathBuf,
    /// Maximum spill files kept on disk; the oldest are deleted beyond
    /// this, so the directory never grows without bound.
    pub capacity: usize,
}

impl SpillConfig {
    /// Spill into `dir`, keeping at most 16 grid sets on disk.
    pub fn new(dir: impl Into<PathBuf>) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            capacity: 16,
        }
    }
}

/// Cache counters (monotonic over the cache's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry (including builds still in flight).
    pub hits: u64,
    /// Lookups that had to start a build.
    pub misses: u64,
    /// Entries discarded to respect the capacity bound.
    pub evictions: u64,
    /// Evicted grid sets written to the spill tier.
    pub spills: u64,
    /// Misses satisfied by loading a spilled grid set from disk
    /// instead of rebuilding it (prefetched reloads included).
    pub reloads: u64,
    /// Router hints acted on: spilled grid sets reloaded ahead of
    /// demand by the prefetcher.
    pub prefetches: u64,
    /// Spill files found damaged by the startup rescan and renamed
    /// aside as `.bad` (never loaded, never silently deleted).
    pub quarantined: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Spill files currently on disk.
    pub spilled: usize,
    /// Canonical name of the replacement policy in force.
    pub policy: &'static str,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    key: (u64, SimdLevel),
    slot: Arc<OnceLock<Arc<GridSet>>>,
    /// Logical timestamp of the last lookup — the LRU ordering.
    last_use: u64,
    /// SLRU segment: promoted on first hit, victims come from the
    /// probation (unprotected) segment first. Always `false` under
    /// plain LRU.
    protected: bool,
}

/// One spilled grid set on disk.
struct SpillFile {
    key: (u64, SimdLevel),
    path: PathBuf,
    /// Logical timestamp of the spill — the oldest file goes first
    /// when the directory is over capacity.
    tick: u64,
}

struct SpillState {
    cfg: SpillConfig,
    files: Vec<SpillFile>,
    /// Last age handed out to a file. Bumped on *every* table touch
    /// (register, refresh, reload) so ages are strictly increasing:
    /// two files touched by the same access — a reload refresh and an
    /// eviction's spill — still have a well-defined oldest, and the
    /// prune order matches the offline policy models exactly.
    seq: u64,
}

struct Inner {
    entries: Vec<Entry>,
    tick: u64,
    spill: Option<SpillState>,
}

/// An eviction's disk work, planned under the lock, performed outside
/// it: the grid set to write, its key, target path, and spill tick.
type PlannedSpill = (Arc<GridSet>, (u64, SimdLevel), PathBuf, u64);

/// Thread-safe cache of built grid sets with a selectable replacement
/// policy, an optional on-disk spill tier (warm across restarts), an
/// optional router-hint prefetcher, and an optional event trace.
/// Construct through [`GridCache::new`], [`GridCache::with_spill`], or
/// the full [`GridCache::builder`].
pub struct GridCache {
    capacity: usize,
    policy: CachePolicy,
    protected_cap: usize,
    prefetch: bool,
    inner: Mutex<Inner>,
    tracer: Option<CacheTracer>,
    prefetch_busy: AtomicBool,
    prefetch_metric: Option<Arc<Counter>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    spills: AtomicU64,
    reloads: AtomicU64,
    prefetches: AtomicU64,
    quarantined: AtomicU64,
}

/// Configures a [`GridCache`] beyond its capacity: policy, spill tier,
/// prefetch, trace recording, and metrics. Obtained from
/// [`GridCache::builder`].
pub struct GridCacheBuilder {
    capacity: usize,
    policy: CachePolicy,
    spill: Option<SpillConfig>,
    trace_path: Option<PathBuf>,
    prefetch: bool,
    prefetch_metric: Option<Arc<Counter>>,
}

impl GridCacheBuilder {
    /// Select the replacement policy (default: [`CachePolicy::Slru`]).
    pub fn policy(mut self, policy: CachePolicy) -> GridCacheBuilder {
        self.policy = policy;
        self
    }

    /// Add a bounded on-disk spill tier; its directory is rescanned at
    /// build time so the tier comes up warm across restarts.
    pub fn spill(mut self, spill: SpillConfig) -> GridCacheBuilder {
        self.spill = Some(spill);
        self
    }

    /// Record every cache event to a `*.trace` JSONL file at `path`
    /// (created/truncated at build time) — see [`trace`].
    pub fn trace(mut self, path: impl Into<PathBuf>) -> GridCacheBuilder {
        self.trace_path = Some(path.into());
        self
    }

    /// Act on router hints: reload a hinted key's spilled grids on a
    /// background thread before its job is dequeued. Inert without a
    /// spill tier (prefetch never *builds* — it has no receptor).
    pub fn prefetch(mut self, on: bool) -> GridCacheBuilder {
        self.prefetch = on;
        self
    }

    /// Also count completed prefetches into `counter` (a registry
    /// handle, so `/metrics` sees them).
    pub fn prefetch_counter(mut self, counter: Arc<Counter>) -> GridCacheBuilder {
        self.prefetch_metric = Some(counter);
        self
    }

    /// Build the cache. Fails if a spill tier is configured with
    /// capacity 0 (nothing could ever spill), if the spill directory
    /// cannot be created or rescanned, or if the trace file cannot be
    /// created — all at service start, not mid-traffic.
    pub fn build(self) -> std::io::Result<GridCache> {
        let mut quarantined = 0u64;
        let spill = match self.spill {
            Some(cfg) => {
                if self.capacity == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "a spill tier needs cache capacity >= 1 (capacity 0 disables caching, \
                         so nothing would ever spill or reload)",
                    ));
                }
                std::fs::create_dir_all(&cfg.dir)?;
                let files = rescan_spill_dir(&cfg, &mut quarantined)?;
                let seq = files.len() as u64;
                Some(SpillState { cfg, files, seq })
            }
            None => None,
        };
        let tracer = match &self.trace_path {
            Some(path) => {
                let header = TraceHeader {
                    version: 1,
                    capacity: self.capacity,
                    spill_capacity: spill.as_ref().map_or(0, |s| s.cfg.capacity.max(1)),
                    policy: self.policy.name().to_string(),
                    prefetch: self.prefetch,
                };
                Some(CacheTracer::create(path, &header)?)
            }
            None => None,
        };
        if let (Some(t), Some(s)) = (&tracer, &spill) {
            t.emit(TraceEventKind::Warm {
                restored: s.files.len() as u64,
                quarantined,
            });
            for f in &s.files {
                t.emit(TraceEventKind::Restore { key: f.key });
            }
        }
        let tick0 = spill.as_ref().map_or(0, |s| s.files.len() as u64);
        Ok(GridCache {
            capacity: self.capacity,
            policy: self.policy,
            protected_cap: self.policy.protected_capacity(self.capacity),
            prefetch: self.prefetch,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: tick0,
                spill,
            }),
            tracer,
            prefetch_busy: AtomicBool::new(false),
            prefetch_metric: self.prefetch_metric,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            prefetches: AtomicU64::new(0),
            quarantined: AtomicU64::new(quarantined),
        })
    }
}

/// Parse a spill file name (`{key:016x}-{level}.grid`) back to its key.
fn parse_spill_name(name: &str) -> Option<(u64, SimdLevel)> {
    let stem = name.strip_suffix(".grid")?;
    let hex = stem.get(..16)?;
    let level = stem.get(16..)?.strip_prefix('-')?;
    Some((u64::from_str_radix(hex, 16).ok()?, SimdLevel::parse(level)?))
}

/// Rename a damaged spill-dir file aside (`<name>.bad`) instead of
/// loading or deleting it.
fn quarantine(path: &std::path::Path) {
    let mut bad = path.as_os_str().to_os_string();
    bad.push(".bad");
    std::fs::rename(path, &bad).ok();
}

/// Rescan a spill directory at startup: re-register valid spill files
/// (oldest first, bounded by the tier capacity), quarantine everything
/// else. `.bad` files from earlier quarantines are left untouched.
fn rescan_spill_dir(cfg: &SpillConfig, quarantined: &mut u64) -> std::io::Result<Vec<SpillFile>> {
    let mut found: Vec<(std::time::SystemTime, SpillFile)> = Vec::new();
    for entry in std::fs::read_dir(&cfg.dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let path = entry.path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if name.ends_with(".bad") {
            continue;
        }
        let key = parse_spill_name(&name);
        if key.is_none() || mudock_grids::io::probe(&path).is_err() {
            quarantine(&path);
            *quarantined += 1;
            continue;
        }
        let mtime = entry
            .metadata()?
            .modified()
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        found.push((
            mtime,
            SpillFile {
                key: key.expect("checked above"),
                path,
                tick: 0,
            },
        ));
    }
    found.sort_by_key(|(mtime, _)| *mtime);
    let mut files: Vec<SpillFile> = found.into_iter().map(|(_, f)| f).collect();
    // The tier bound holds from the first instant: beyond-capacity
    // restores are valid files, so this is the ordinary prune (delete),
    // not quarantine.
    while files.len() > cfg.capacity.max(1) {
        let f = files.remove(0);
        std::fs::remove_file(&f.path).ok();
    }
    for (i, f) in files.iter_mut().enumerate() {
        f.tick = (i + 1) as u64;
    }
    Ok(files)
}

impl GridCache {
    /// Cache holding up to `capacity` grid sets under the default
    /// policy. Capacity 0 disables caching (every lookup builds and
    /// counts as a miss).
    pub fn new(capacity: usize) -> GridCache {
        Self::builder(capacity)
            .build()
            .expect("no I/O is configured, construction cannot fail")
    }

    /// Like [`GridCache::new`], but evicted grid sets spill to disk
    /// under `spill.dir` and are reloaded — bit-identically — on the
    /// next miss instead of being rebuilt, and files already present in
    /// the directory are re-registered (warm restart). The directory is
    /// created eagerly so a misconfigured path fails at service start,
    /// not at the first eviction. `capacity` must be at least 1:
    /// capacity 0 disables caching (lookups never install entries, so
    /// nothing would ever spill) — refusing it here beats silently
    /// ignoring the spill tier the caller configured.
    pub fn with_spill(capacity: usize, spill: SpillConfig) -> std::io::Result<GridCache> {
        Self::builder(capacity).spill(spill).build()
    }

    /// Start configuring a cache of `capacity` entries.
    pub fn builder(capacity: usize) -> GridCacheBuilder {
        GridCacheBuilder {
            capacity,
            policy: CachePolicy::default(),
            spill: None,
            trace_path: None,
            prefetch: false,
            prefetch_metric: None,
        }
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Whether router hints trigger background spill reloads.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch
    }

    fn trace_event(&self, kind: TraceEventKind) {
        if let Some(t) = &self.tracer {
            t.emit(kind);
        }
    }

    fn grid_bytes(grids: &GridSet) -> u64 {
        (grids.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// The victim slot under the configured policy: the least-recently
    /// used *probation* entry when a protected segment exists (SLRU),
    /// the global LRU entry otherwise. The probation segment is never
    /// empty while over capacity (the protected segment is bounded to
    /// at most half), so the fallback only guards degenerate states.
    fn victim_index(protected_cap: usize, entries: &[Entry]) -> usize {
        let probation = if protected_cap > 0 {
            entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.protected)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
        } else {
            None
        };
        probation.unwrap_or_else(|| {
            entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("capacity > 0 and entries is non-empty")
        })
    }

    /// Caller holds the lock. When the resident set is at capacity,
    /// evict the policy's victim: returns its key, the spill write to
    /// perform outside the lock, and any files the spill-tier bound
    /// prunes. Spills only finished builds: an in-flight eviction has
    /// nothing to write yet (its slot fills after the detached build
    /// completes).
    #[allow(clippy::type_complexity)]
    fn evict_if_full(
        &self,
        inner: &mut Inner,
        tick: u64,
    ) -> (
        Option<(u64, SimdLevel)>,
        Option<PlannedSpill>,
        Vec<SpillFile>,
    ) {
        if inner.entries.len() < self.capacity {
            return (None, None, Vec::new());
        }
        let victim = Self::victim_index(self.protected_cap, &inner.entries);
        let evicted = inner.entries.swap_remove(victim);
        let mut save = None;
        let mut delete = Vec::new();
        if let (Some(state), Some(grids)) = (inner.spill.as_mut(), evicted.slot.get()) {
            save = Self::plan_spill(state, evicted.key, Arc::clone(grids), tick, &mut delete);
        }
        (Some(evicted.key), save, delete)
    }

    /// The grid set for `receptor` on `dims` built at `level`, building
    /// it (all maps) on a miss — or, when a spill tier is configured
    /// and holds this key, reloading the evicted build from disk
    /// bit-identically instead. `level` is part of the cache key: two
    /// jobs pinned to different SIMD levels never share an entry.
    /// Returns the set plus how it was obtained:
    /// [`GridSource::Hit`] (memory, including joining another job's
    /// in-flight build *or* finding a prefetched reload),
    /// [`GridSource::Reloaded`] (spill tier), or [`GridSource::Built`]
    /// (full AutoGrid run).
    pub fn get_or_build(
        &self,
        receptor: &Molecule,
        dims: GridDims,
        level: SimdLevel,
        monitor: Option<&PerfMonitor>,
    ) -> (Arc<GridSet>, GridSource) {
        let key = (grid_cache_key(receptor, &dims), level);
        let t0 = Instant::now();

        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let grids = Self::build(receptor, dims, level, monitor);
            self.trace_event(TraceEventKind::Access {
                key,
                source: GridSource::Built,
                bytes: Self::grid_bytes(&grids),
                dur_ns: elapsed_ns(t0),
            });
            return (grids, GridSource::Built);
        }

        let (slot, hit, reload_from, evicted_key, spill_save, spill_delete) = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.iter().position(|e| e.key == key) {
                Some(i) => {
                    inner.entries[i].last_use = tick;
                    if self.protected_cap > 0 && !inner.entries[i].protected {
                        inner.entries[i].protected = true;
                        // Keep the protected segment bounded: demote its
                        // own LRU entries back to probation. The entry
                        // just promoted carries the newest stamp, so it
                        // is never its own demotion victim.
                        while inner.entries.iter().filter(|e| e.protected).count()
                            > self.protected_cap
                        {
                            if let Some(d) = inner
                                .entries
                                .iter_mut()
                                .filter(|e| e.protected)
                                .min_by_key(|e| e.last_use)
                            {
                                d.protected = false;
                            }
                        }
                    }
                    let slot = Arc::clone(&inner.entries[i].slot);
                    (slot, true, None, None, None, Vec::new())
                }
                None => {
                    // A spilled copy of this key is about to get hot
                    // again: refresh its age so the over-capacity prune
                    // below prefers genuinely cold files.
                    let reload = inner.spill.as_mut().and_then(|s| {
                        let i = s.files.iter().position(|f| f.key == key)?;
                        s.seq += 1;
                        s.files[i].tick = s.seq;
                        Some(s.files[i].path.clone())
                    });
                    let (evicted, save, delete) = self.evict_if_full(&mut inner, tick);
                    let slot = Arc::new(OnceLock::new());
                    inner.entries.push(Entry {
                        key,
                        slot: Arc::clone(&slot),
                        last_use: tick,
                        protected: false,
                    });
                    (slot, false, reload, evicted, save, delete)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(k) = evicted_key {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.trace_event(TraceEventKind::Evict { key: k });
        }
        // All spill I/O runs outside the cache lock: only same-key
        // lookups ever wait on disk (or on a build, in `get_or_init`),
        // never the whole cache.
        self.commit_spill_io(spill_save, spill_delete);
        // Disambiguated only by the thread that actually initializes the
        // slot: a concurrent same-key caller that joins an in-flight
        // build reports `Hit` (the work ran once either way).
        let source = std::cell::Cell::new(if hit {
            GridSource::Hit
        } else {
            GridSource::Built
        });
        let grids = Arc::clone(slot.get_or_init(|| {
            if let Some(path) = &reload_from {
                match mudock_grids::io::load(path) {
                    Ok(gs) => {
                        self.reloads.fetch_add(1, Ordering::Relaxed);
                        source.set(GridSource::Reloaded);
                        return Arc::new(gs);
                    }
                    // Registered but not on disk yet: a concurrent
                    // spill's rename has not landed. Deregister and
                    // rebuild (the spiller re-registers once its write
                    // completes) — but delete nothing, or we could
                    // race ahead and remove the valid file it is about
                    // to produce.
                    Err(mudock_grids::GridIoError::Io(ref io))
                        if io.kind() == std::io::ErrorKind::NotFound =>
                    {
                        self.forget_spill_file(path);
                    }
                    // Truncated, corrupt, or foreign: drop the file
                    // and rebuild — the spill tier is an optimization,
                    // never a correctness dependency.
                    Err(_) => {
                        self.forget_spill_file(path);
                        std::fs::remove_file(path).ok();
                    }
                }
            }
            Self::build(receptor, dims, level, monitor)
        }));
        let source = source.get();
        self.trace_event(TraceEventKind::Access {
            key,
            source,
            bytes: Self::grid_bytes(&grids),
            dur_ns: elapsed_ns(t0),
        });
        (grids, source)
    }

    /// The router predicts `key` (a [`mudock_grids::grid_cache_key`]
    /// fingerprint) built at `level` is needed by the next queued job.
    /// Always recorded in the trace; when prefetch is enabled and the
    /// key sits in the spill tier (and is not already resident), a
    /// background thread reloads it into a resident entry so the
    /// demand lookup hits. At most one prefetch is in flight at a time
    /// — a second hint while busy is recorded but not acted on. The
    /// prefetched bytes come through the same loader as demand reloads,
    /// so they are bit-identical to a fresh build; a failed load falls
    /// back to the demand path's build, never to an error.
    pub fn hint(self: &Arc<Self>, key_fp: u64, level: SimdLevel) {
        let key = (key_fp, level);
        self.trace_event(TraceEventKind::Hint { key });
        if !self.prefetch || self.capacity == 0 {
            return;
        }
        let path = {
            let inner = self.inner.lock();
            if inner.entries.iter().any(|e| e.key == key) {
                return;
            }
            match inner
                .spill
                .as_ref()
                .and_then(|s| s.files.iter().find(|f| f.key == key))
            {
                Some(f) => f.path.clone(),
                None => return,
            }
        };
        if self.prefetch_busy.swap(true, Ordering::AcqRel) {
            return;
        }
        let cache = Arc::clone(self);
        std::thread::spawn(move || {
            cache.prefetch_load(key, &path);
            cache.prefetch_busy.store(false, Ordering::Release);
        });
    }

    /// Background half of [`GridCache::hint`]: load the spilled grids,
    /// then admit them as a pre-filled entry (load-before-admit, so a
    /// failed load admits nothing and the demand path simply rebuilds).
    fn prefetch_load(&self, key: (u64, SimdLevel), path: &std::path::Path) {
        let t0 = Instant::now();
        match mudock_grids::io::load(path) {
            Ok(gs) => {
                let slot = Arc::new(OnceLock::new());
                let _ = slot.set(Arc::new(gs));
                let (installed, evicted_key, save, delete) = {
                    let mut inner = self.inner.lock();
                    inner.tick += 1;
                    let tick = inner.tick;
                    if inner.entries.iter().any(|e| e.key == key) {
                        // A demand lookup admitted it while we loaded;
                        // drop our copy, its slot is authoritative.
                        (false, None, None, Vec::new())
                    } else {
                        if let Some(s) = inner.spill.as_mut() {
                            if let Some(i) = s.files.iter().position(|f| f.key == key) {
                                s.seq += 1;
                                s.files[i].tick = s.seq;
                            }
                        }
                        let (evicted, save, delete) = self.evict_if_full(&mut inner, tick);
                        inner.entries.push(Entry {
                            key,
                            slot,
                            last_use: tick,
                            protected: false,
                        });
                        (true, evicted, save, delete)
                    }
                };
                if installed {
                    if let Some(k) = evicted_key {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        self.trace_event(TraceEventKind::Evict { key: k });
                    }
                    self.reloads.fetch_add(1, Ordering::Relaxed);
                    self.prefetches.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &self.prefetch_metric {
                        m.inc();
                    }
                    self.trace_event(TraceEventKind::Prefetch {
                        key,
                        dur_ns: elapsed_ns(t0),
                    });
                    self.commit_spill_io(save, delete);
                }
            }
            Err(e) => {
                // Same semantics as the demand reload path: a missing
                // file means a racing spill has not landed (deregister,
                // delete nothing); anything else is damage (deregister
                // and remove).
                self.forget_spill_file(path);
                let racing = matches!(
                    &e,
                    mudock_grids::GridIoError::Io(io) if io.kind() == std::io::ErrorKind::NotFound
                );
                if !racing {
                    std::fs::remove_file(path).ok();
                }
            }
        }
    }

    /// Perform an eviction's planned disk work (outside the lock):
    /// prune over-capacity files, write the spill, and keep the file
    /// table honest against racing reload-misses.
    fn commit_spill_io(&self, save: Option<PlannedSpill>, delete: Vec<SpillFile>) {
        for f in delete {
            std::fs::remove_file(&f.path).ok();
            self.trace_event(TraceEventKind::SpillDrop { key: f.key });
        }
        if let Some((grids, spill_key, path, tick)) = save {
            if Self::save_atomic(&grids, &path, tick).is_ok() {
                self.spills.fetch_add(1, Ordering::Relaxed);
                self.trace_event(TraceEventKind::Spill {
                    key: spill_key,
                    bytes: Self::grid_bytes(&grids),
                });
                // A concurrent reload-miss may have hit ENOENT in the
                // window before our rename landed and deregistered the
                // file. The file is on disk now: re-register it, or it
                // would escape the capacity bound (and pruning) for
                // good.
                for stale in self.reregister_spill_file(spill_key, &path) {
                    std::fs::remove_file(&stale.path).ok();
                    self.trace_event(TraceEventKind::SpillDrop { key: stale.key });
                }
            } else {
                // Nothing usable landed on disk; deregister the file so
                // a later miss rebuilds instead of chasing a ghost.
                self.forget_spill_file(&path);
            }
        }
    }

    /// Register the eviction in the spill file table (bounding it to
    /// the configured capacity) and hand back what to write — `None`
    /// when the key is already spilled: grid content is immutable per
    /// key, so the bytes on disk are identical and rewriting them
    /// every time a reloaded entry is re-evicted (the steady state of
    /// targets ping-ponging through a small cache) would be pure
    /// wasted I/O. The write itself happens outside the cache lock.
    fn plan_spill(
        state: &mut SpillState,
        key: (u64, SimdLevel),
        grids: Arc<GridSet>,
        tick: u64,
        delete: &mut Vec<SpillFile>,
    ) -> Option<PlannedSpill> {
        let path = state
            .cfg
            .dir
            .join(format!("{:016x}-{}.grid", key.0, key.1.name()));
        Self::register_spill_file(state, key, &path, delete).then_some((grids, key, path, tick))
    }

    /// Insert `key` into the file table and collect over-capacity
    /// victims into `delete`. Returns whether the key is *new* (needs
    /// its file written); an existing entry just has its age
    /// refreshed. Either way the file takes the next age from
    /// `state.seq`.
    fn register_spill_file(
        state: &mut SpillState,
        key: (u64, SimdLevel),
        path: &std::path::Path,
        delete: &mut Vec<SpillFile>,
    ) -> bool {
        state.seq += 1;
        let age = state.seq;
        if let Some(f) = state.files.iter_mut().find(|f| f.key == key) {
            f.tick = age;
            return false;
        }
        state.files.push(SpillFile {
            key,
            path: path.to_path_buf(),
            tick: age,
        });
        while state.files.len() > state.cfg.capacity.max(1) {
            let oldest = state
                .files
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.tick)
                .map(|(i, _)| i)
                .expect("len > capacity >= 1");
            delete.push(state.files.swap_remove(oldest));
        }
        true
    }

    /// Put a just-written spill file back in the table if a racing
    /// reload-miss deregistered it mid-write; returns any files the
    /// capacity bound now prunes.
    fn reregister_spill_file(
        &self,
        key: (u64, SimdLevel),
        path: &std::path::Path,
    ) -> Vec<SpillFile> {
        let mut inner = self.inner.lock();
        let mut delete = Vec::new();
        if let Some(state) = inner.spill.as_mut() {
            Self::register_spill_file(state, key, path, &mut delete);
        }
        delete
    }

    /// Write-then-rename so a reader never sees a torn spill file; the
    /// temp name carries the spill tick so two racing spills of the
    /// same key cannot interleave into one temp file.
    fn save_atomic(
        grids: &GridSet,
        path: &std::path::Path,
        tick: u64,
    ) -> Result<(), mudock_grids::GridIoError> {
        let tmp = path.with_extension(format!("tmp{tick}"));
        mudock_grids::io::save(grids, &tmp)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }

    fn forget_spill_file(&self, path: &std::path::Path) {
        let mut inner = self.inner.lock();
        if let Some(s) = &mut inner.spill {
            s.files.retain(|f| f.path != path);
        }
    }

    fn build(
        receptor: &Molecule,
        dims: GridDims,
        level: SimdLevel,
        monitor: Option<&PerfMonitor>,
    ) -> Arc<GridSet> {
        let t0 = std::time::Instant::now();
        let grids = GridBuilder::new(receptor, dims).build_simd(level);
        if let Some(m) = monitor {
            let bytes = (grids.data.len() * std::mem::size_of::<f32>()) as u64;
            m.record(GRID_BUILD_REGION, t0.elapsed(), 0, 0, bytes);
        }
        Arc::new(grids)
    }

    /// A counter snapshot (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            entries: inner.entries.len(),
            spilled: inner.spill.as_ref().map_or(0, |s| s.files.len()),
            policy: self.policy.name(),
        }
    }

    /// Drop every resident entry (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }
}

fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_mol::Vec3;
    use mudock_molio::synthetic_receptor;

    fn dims() -> GridDims {
        GridDims::centered(Vec3::ZERO, 4.0, 1.0)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_build() {
        let cache = GridCache::new(2);
        let rec = synthetic_receptor(3, 40, 5.0);
        let (a, src_a) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        let (b, src_b) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        assert_eq!(src_a, GridSource::Built);
        assert_eq!(src_b, GridSource::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn content_identity_beats_provenance() {
        let cache = GridCache::new(2);
        let rec = synthetic_receptor(3, 40, 5.0);
        let mut renamed = rec.clone();
        renamed.name = "other".into();
        let (_, first) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        let (_, second) = cache.get_or_build(&renamed, dims(), SimdLevel::detect(), None);
        assert_eq!(first, GridSource::Built);
        assert_eq!(
            second,
            GridSource::Hit,
            "identical content must share the cache entry"
        );
    }

    #[test]
    fn pinned_levels_get_distinct_entries() {
        let cache = GridCache::new(4);
        let rec = synthetic_receptor(3, 40, 5.0);
        let levels = SimdLevel::available();
        for &l in &levels {
            let (_, src) = cache.get_or_build(&rec, dims(), l, None);
            assert_eq!(
                src,
                GridSource::Built,
                "{l}: each level builds its own grids"
            );
        }
        assert_eq!(cache.stats().entries, levels.len().min(4));
        // Revisiting a level is a hit on that level's entry.
        let (_, src) = cache.get_or_build(&rec, dims(), levels[0], None);
        assert_eq!(src, GridSource::Hit);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = GridCache::new(2);
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        let r3 = synthetic_receptor(3, 30, 5.0);
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r2, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None); // r1 hot, r2 cold
        cache.get_or_build(&r3, dims(), SimdLevel::detect(), None); // evicts r2
        assert_eq!(cache.stats().evictions, 1);
        let (_, r1_src) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        assert_eq!(
            r1_src,
            GridSource::Hit,
            "the hot entry must survive the eviction"
        );
        let (_, r2_src) = cache.get_or_build(&r2, dims(), SimdLevel::detect(), None);
        assert_eq!(
            r2_src,
            GridSource::Built,
            "the cold entry must have been evicted"
        );
    }

    #[test]
    fn slru_protects_a_hot_entry_from_a_scan() {
        // A is accessed twice (promoted to the protected segment), then
        // a scan of one-shot keys pours through. Under SLRU the scan
        // churns the probation segment and A survives; under plain LRU
        // the same sequence evicts A.
        let r_a = synthetic_receptor(1, 30, 5.0);
        let scan: Vec<_> = (2..=4).map(|s| synthetic_receptor(s, 30, 5.0)).collect();
        let run = |policy: CachePolicy| {
            let cache = GridCache::builder(2).policy(policy).build().unwrap();
            cache.get_or_build(&r_a, dims(), SimdLevel::detect(), None);
            cache.get_or_build(&r_a, dims(), SimdLevel::detect(), None);
            for r in &scan {
                cache.get_or_build(r, dims(), SimdLevel::detect(), None);
            }
            let (_, src) = cache.get_or_build(&r_a, dims(), SimdLevel::detect(), None);
            src
        };
        assert_eq!(
            run(CachePolicy::Slru),
            GridSource::Hit,
            "slru must keep the twice-accessed key through the scan"
        );
        assert_eq!(
            run(CachePolicy::Lru),
            GridSource::Built,
            "plain lru loses the hot key to the scan (the contrast slru exists for)"
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = GridCache::new(0);
        let rec = synthetic_receptor(5, 30, 5.0);
        let (_, s1) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        let (_, s2) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        assert_eq!((s1, s2), (GridSource::Built, GridSource::Built));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn build_time_lands_in_the_perf_region() {
        let cache = GridCache::new(1);
        let monitor = PerfMonitor::new();
        let rec = synthetic_receptor(6, 30, 5.0);
        cache.get_or_build(&rec, dims(), SimdLevel::detect(), Some(&monitor));
        cache.get_or_build(&rec, dims(), SimdLevel::detect(), Some(&monitor));
        let region = monitor.region(GRID_BUILD_REGION).expect("region recorded");
        assert_eq!(region.invocations, 1, "the hit must not rebuild");
        assert!(region.bytes_written > 0);
    }

    fn spill_dir(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mudock-spill-{}-{name}", std::process::id()))
    }

    #[test]
    fn spill_refuses_a_capacity_that_can_never_spill() {
        let dir = spill_dir("zero-cap");
        let err = match GridCache::with_spill(0, SpillConfig::new(&dir)) {
            Err(e) => e,
            Ok(_) => panic!("capacity 0 with a spill tier must be refused"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn eviction_spills_and_the_next_miss_reloads_bit_identically() {
        let dir = spill_dir("reload");
        std::fs::remove_dir_all(&dir).ok();
        let cache = GridCache::with_spill(1, SpillConfig::new(&dir)).unwrap();
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        let (built, _) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r2, dims(), SimdLevel::detect(), None); // evicts + spills r1
        let s = cache.stats();
        assert_eq!((s.evictions, s.spills, s.spilled), (1, 1, 1));

        let (reloaded, src) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        assert_eq!(
            src,
            GridSource::Reloaded,
            "a reload is still a miss (the entry was evicted)"
        );
        assert_eq!(cache.stats().reloads, 1);
        assert!(
            !Arc::ptr_eq(&built, &reloaded),
            "the reload must come from disk, not a retained allocation"
        );
        assert_eq!(built.dims, reloaded.dims);
        assert_eq!(built.built, reloaded.built);
        for (a, b) in built.data.iter().zip(&reloaded.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_directory_is_bounded() {
        let dir = spill_dir("bounded");
        std::fs::remove_dir_all(&dir).ok();
        let cache = GridCache::with_spill(
            1,
            SpillConfig {
                dir: dir.clone(),
                capacity: 2,
            },
        )
        .unwrap();
        // Four receptors through a capacity-1 cache: three evictions,
        // three spills, but only the two newest files survive on disk.
        for seed in 1..=4 {
            let r = synthetic_receptor(seed, 25, 5.0);
            cache.get_or_build(&r, dims(), SimdLevel::detect(), None);
        }
        let s = cache.stats();
        assert_eq!((s.evictions, s.spills, s.spilled), (3, 3, 2));
        let on_disk = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(on_disk, 2, "the oldest spill file must be deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_spill_files_fall_back_to_a_rebuild() {
        let dir = spill_dir("corrupt");
        std::fs::remove_dir_all(&dir).ok();
        let cache = GridCache::with_spill(1, SpillConfig::new(&dir)).unwrap();
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        let (built, _) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r2, dims(), SimdLevel::detect(), None);
        // Stomp the spilled file: the reload must fail closed into a
        // rebuild, and the ghost entry must be forgotten.
        let file = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap();
        std::fs::write(file.path(), b"not a grid file").unwrap();
        let (rebuilt, src) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        assert_eq!(src, GridSource::Built);
        let s = cache.stats();
        assert_eq!(s.reloads, 0, "a corrupt file is not a reload");
        assert_eq!(s.spilled, 1, "r2's spill remains; r1's ghost is gone");
        for (a, b) in built.data.iter().zip(&rebuilt.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_restart_restores_the_spill_tier() {
        let dir = spill_dir("warm");
        std::fs::remove_dir_all(&dir).ok();
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        let built = {
            let cache = GridCache::with_spill(1, SpillConfig::new(&dir)).unwrap();
            let (built, _) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
            cache.get_or_build(&r2, dims(), SimdLevel::detect(), None); // spills r1
            cache.get_or_build(&r1, dims(), SimdLevel::detect(), None); // spills r2, reloads r1
            built
        }; // "crash": the process's in-memory state is gone, the dir is not

        let cache = GridCache::with_spill(1, SpillConfig::new(&dir)).unwrap();
        let s = cache.stats();
        assert_eq!(s.spilled, 2, "the rescan must re-register both spill files");
        assert_eq!(s.quarantined, 0);
        let monitor = PerfMonitor::new();
        let (reloaded, src) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), Some(&monitor));
        assert_eq!(
            src,
            GridSource::Reloaded,
            "the first job after a warm restart must not rebuild"
        );
        assert!(
            monitor.region(GRID_BUILD_REGION).is_none(),
            "zero grid builds across the restart"
        );
        for (a, b) in built.data.iter().zip(&reloaded.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rescan_quarantines_damaged_files_and_keeps_the_rest() {
        let dir = spill_dir("quarantine");
        std::fs::remove_dir_all(&dir).ok();
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        {
            let cache = GridCache::with_spill(1, SpillConfig::new(&dir)).unwrap();
            cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
            cache.get_or_build(&r2, dims(), SimdLevel::detect(), None); // spills r1
        }
        // A name that does not parse as a spill key…
        std::fs::write(dir.join("notaspill.grid"), b"junk").unwrap();
        // …and a well-named file holding a truncated write.
        let valid = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().len() > 20)
            .unwrap();
        let bytes = std::fs::read(valid.path()).unwrap();
        std::fs::write(
            dir.join("00000000deadbeef-scalar.grid"),
            &bytes[..bytes.len() - 7],
        )
        .unwrap();

        let cache = GridCache::with_spill(1, SpillConfig::new(&dir)).unwrap();
        let s = cache.stats();
        assert_eq!(s.quarantined, 2, "both damaged files must be quarantined");
        assert_eq!(s.spilled, 1, "the valid spill file must survive");
        let bad: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".bad"))
            .collect();
        assert_eq!(bad.len(), 2, "damaged files are renamed aside, not deleted");
        let (_, src) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        assert_eq!(
            src,
            GridSource::Reloaded,
            "the surviving file still reloads"
        );

        // A second restart must not re-quarantine (or load) .bad files.
        drop(cache);
        let cache = GridCache::with_spill(1, SpillConfig::new(&dir)).unwrap();
        assert_eq!(cache.stats().quarantined, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_records_what_the_counters_count() {
        let dir = spill_dir("trace");
        std::fs::remove_dir_all(&dir).ok();
        let trace_path =
            std::env::temp_dir().join(format!("mudock-cache-{}-events.trace", std::process::id()));
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        let cache = GridCache::builder(1)
            .spill(SpillConfig::new(&dir))
            .trace(&trace_path)
            .build()
            .unwrap();
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None); // build
        cache.get_or_build(&r2, dims(), SimdLevel::detect(), None); // build, spills r1
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None); // reload, spills r2
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None); // hit
        let s = cache.stats();

        let t = trace::read_trace(&trace_path).unwrap();
        let header = t.header.expect("trace must begin with its header");
        assert_eq!((header.version, header.capacity), (1, 1));
        assert_eq!(header.policy, s.policy);
        assert!(!header.prefetch);
        let count = |pred: &dyn Fn(&TraceEventKind) -> bool| {
            t.events.iter().filter(|e| pred(&e.kind)).count() as u64
        };
        assert_eq!(
            count(&|k| matches!(
                k,
                TraceEventKind::Access {
                    source: GridSource::Hit,
                    ..
                }
            )),
            s.hits
        );
        assert_eq!(
            count(&|k| matches!(
                k,
                TraceEventKind::Access {
                    source: GridSource::Built,
                    ..
                }
            )),
            s.misses - s.reloads
        );
        assert_eq!(
            count(&|k| matches!(
                k,
                TraceEventKind::Access {
                    source: GridSource::Reloaded,
                    ..
                }
            )),
            s.reloads
        );
        assert_eq!(
            count(&|k| matches!(k, TraceEventKind::Evict { .. })),
            s.evictions
        );
        assert_eq!(
            count(&|k| matches!(k, TraceEventKind::Spill { .. })),
            s.spills
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn a_hint_prefetches_the_spilled_key() {
        let dir = spill_dir("prefetch");
        std::fs::remove_dir_all(&dir).ok();
        let cache = Arc::new(
            GridCache::builder(1)
                .spill(SpillConfig::new(&dir))
                .prefetch(true)
                .build()
                .unwrap(),
        );
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r2, dims(), SimdLevel::detect(), None); // spills r1

        cache.hint(grid_cache_key(&r1, &dims()), SimdLevel::detect());
        for _ in 0..500 {
            if cache.stats().prefetches == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let s = cache.stats();
        assert_eq!(s.prefetches, 1, "the hint must trigger a background reload");
        assert_eq!(s.reloads, 1, "a prefetch is counted as a reload too");

        let monitor = PerfMonitor::new();
        let (_, src) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), Some(&monitor));
        assert_eq!(
            src,
            GridSource::Hit,
            "the demand lookup must find the prefetched entry resident"
        );
        assert!(
            monitor.region(GRID_BUILD_REGION).is_none(),
            "no build may run for a prefetched key"
        );

        // Hints for unknown keys are harmless no-ops.
        cache.hint(0xDEAD_BEEF, SimdLevel::detect());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(cache.stats().prefetches, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_same_key_lookups_build_once() {
        let cache = Arc::new(GridCache::new(2));
        let rec = Arc::new(synthetic_receptor(9, 40, 5.0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                cache.get_or_build(&rec, dims(), SimdLevel::detect(), None)
            }));
        }
        let results: Vec<(Arc<GridSet>, GridSource)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let misses = results
            .iter()
            .filter(|(_, src)| *src == GridSource::Built)
            .count();
        assert_eq!(misses, 1, "exactly one thread installs the entry");
        for (g, _) in &results {
            assert!(Arc::ptr_eq(g, &results[0].0));
        }
    }
}
