//! Replacement policies: the live cache's selectable policy plus the
//! offline replay models the `cache_replay` tool sweeps over recorded
//! traces.
//!
//! # Live policies
//!
//! [`CachePolicy`] is what a running [`GridCache`](super::GridCache)
//! uses to pick eviction victims:
//!
//! - **`lru`** — classic least-recently-used over all resident entries.
//! - **`slru`** (default) — segmented LRU: a new entry lands in a
//!   *probation* segment; its first hit promotes it to a *protected*
//!   segment holding at most half the capacity. Victims come from
//!   probation first, so a burst of one-shot receptors cannot flush the
//!   proven-hot ones. At capacity 1 the protected segment is empty and
//!   `slru` degenerates to exactly `lru` — which is why switching the
//!   default did not move the gated `multi.{spills,reloads}` bench
//!   fields (that leg runs a capacity-1 cache).
//!
//! Policies only reorder *evictions*; every lookup still lands in the
//! same shared-`OnceLock` entry, so the bit-identity and
//! build-once-per-key invariants of the cache are policy-independent.
//!
//! # Replay models
//!
//! [`replay`] drives a [`ModelConfig`] over the events of a recorded
//! trace (see [`super::trace`]). The LRU resident set reuses
//! `mudock-archsim`'s set-associative cache scaffolding ([`ArchCache`])
//! configured as one fully-associative set with one-byte lines, so the
//! grid key *is* the address and archsim's true-LRU stamp machinery is
//! the model; SLRU and the TinyLFU-style admission filter extend it.
//! The models mirror the live cache's bookkeeping exactly — same
//! file-table touch order, same spill-once-per-key rule — which is what
//! lets a proptest assert that replaying a live-recorded trace under
//! the matching model reproduces the live hit/miss/spill counters
//! bit-for-bit.

use std::collections::HashMap;

use mudock_archsim::Cache as ArchCache;

use super::trace::{TraceEvent, TraceEventKind, TraceKey};
use mudock_obs::GridSource;

/// Replacement policy of a live [`GridCache`](super::GridCache).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Least-recently-used over all resident entries.
    Lru,
    /// Segmented LRU: probation + protected halves, victims from
    /// probation first. The shipped default.
    #[default]
    Slru,
}

impl CachePolicy {
    /// Every live policy, in sweep order.
    pub const ALL: [CachePolicy; 2] = [CachePolicy::Lru, CachePolicy::Slru];

    /// The policy's canonical (CLI / trace-header / `/stats`) name.
    pub fn name(self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::Slru => "slru",
        }
    }

    /// Parse a canonical name (case-insensitive).
    pub fn parse(name: &str) -> Option<CachePolicy> {
        match name.to_ascii_lowercase().as_str() {
            "lru" => Some(CachePolicy::Lru),
            "slru" => Some(CachePolicy::Slru),
            _ => None,
        }
    }

    /// Size of the protected segment for a cache of `capacity` entries
    /// (0 under plain LRU — and at capacity 1, where SLRU ≡ LRU).
    pub fn protected_capacity(self, capacity: usize) -> usize {
        match self {
            CachePolicy::Lru => 0,
            CachePolicy::Slru => capacity / 2,
        }
    }
}

/// Map a trace key (fingerprint, SIMD level) onto the single `u64`
/// address space the models operate in. The level is folded in with a
/// Fibonacci-hash mix so per-level entries stay distinct, exactly as
/// the live cache keeps them distinct; `u64::MAX` is remapped because
/// archsim's scaffolding uses it as the invalid-way sentinel.
pub fn model_key(key: TraceKey) -> u64 {
    let mixed = key.0
        ^ ((key.1 as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if mixed == u64::MAX {
        u64::MAX - 1
    } else {
        mixed
    }
}

/// One policy configuration the replayer can drive over a trace.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Display label (`lru`, `slru+prefetch`, ...).
    pub label: String,
    /// Resident capacity (0 disables caching, as live).
    pub capacity: usize,
    /// Protected-segment size; 0 = plain LRU.
    pub protected_capacity: usize,
    /// Spill-tier file capacity; 0 = no spill tier.
    pub spill_capacity: usize,
    /// TinyLFU-style admission: a miss only evicts the victim when the
    /// candidate's estimated frequency is at least the victim's.
    pub admission_filter: bool,
    /// Act on recorded router hints: reload a spilled key into the
    /// resident set when it is hinted, before its demand access.
    pub prefetch: bool,
}

impl ModelConfig {
    /// Build the configuration for a policy `name` — a base policy
    /// (`lru`, `slru`, `tinylfu`) with an optional `+prefetch` suffix —
    /// over a cache of `capacity` entries and `spill_capacity` files.
    pub fn for_policy(name: &str, capacity: usize, spill_capacity: usize) -> Option<ModelConfig> {
        let (base, prefetch) = match name.strip_suffix("+prefetch") {
            Some(base) => (base, true),
            None => (name, false),
        };
        let (protected, admission) = match base {
            "lru" => (0, false),
            "slru" => (CachePolicy::Slru.protected_capacity(capacity), false),
            "tinylfu" => (0, true),
            _ => return None,
        };
        Some(ModelConfig {
            label: name.to_string(),
            capacity,
            protected_capacity: protected,
            spill_capacity,
            admission_filter: admission,
            prefetch,
        })
    }
}

/// Counters a model accumulates over one replay. Field meanings match
/// [`CacheStats`](super::CacheStats); `stall_ns` is the modeled
/// grid-acquisition wall-clock the *jobs* would have waited (prefetch
/// hides the part of a reload that overlaps the previous job).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Total accesses replayed.
    pub accesses: u64,
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Misses filled by a full grid build.
    pub builds: u64,
    /// Misses (and prefetches) filled from the spill tier.
    pub reloads: u64,
    /// New spill files written.
    pub spills: u64,
    /// Resident entries displaced.
    pub evictions: u64,
    /// Spill files pruned by the tier's capacity bound.
    pub spill_drops: u64,
    /// Hints acted on (spilled key reloaded ahead of demand).
    pub prefetches: u64,
    /// Modeled nanoseconds jobs spent waiting for grids.
    pub stall_ns: u64,
}

impl ModelStats {
    /// Hits as a fraction of all accesses (0 when nothing was replayed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Per-key grid acquisition costs learned from the trace, used when a
/// model's outcome diverges from the recorded one (e.g. the model
/// rebuilds what the live cache reloaded).
struct Costs {
    build: HashMap<u64, (u64, u64)>,
    reload: HashMap<u64, (u64, u64)>,
    global_build: (u64, u64),
    global_reload: (u64, u64),
}

fn mean(sum_n: (u64, u64)) -> Option<u64> {
    (sum_n.1 > 0).then(|| sum_n.0 / sum_n.1)
}

impl Costs {
    fn learn(events: &[TraceEvent]) -> Costs {
        let mut c = Costs {
            build: HashMap::new(),
            reload: HashMap::new(),
            global_build: (0, 0),
            global_reload: (0, 0),
        };
        let add = |map: &mut HashMap<u64, (u64, u64)>, global: &mut (u64, u64), k, ns| {
            let e = map.entry(k).or_insert((0, 0));
            e.0 += ns;
            e.1 += 1;
            global.0 += ns;
            global.1 += 1;
        };
        for ev in events {
            match ev.kind {
                TraceEventKind::Access {
                    key,
                    source: GridSource::Built,
                    dur_ns,
                    ..
                } => add(&mut c.build, &mut c.global_build, model_key(key), dur_ns),
                TraceEventKind::Access {
                    key,
                    source: GridSource::Reloaded,
                    dur_ns,
                    ..
                } => add(&mut c.reload, &mut c.global_reload, model_key(key), dur_ns),
                TraceEventKind::Prefetch { key, dur_ns } => {
                    add(&mut c.reload, &mut c.global_reload, model_key(key), dur_ns)
                }
                _ => {}
            }
        }
        c
    }

    fn build_ns(&self, k: u64) -> u64 {
        self.build
            .get(&k)
            .copied()
            .and_then(mean)
            .or(mean(self.global_build))
            .unwrap_or(0)
    }

    fn reload_ns(&self, k: u64) -> u64 {
        self.reload
            .get(&k)
            .copied()
            .and_then(mean)
            .or(mean(self.global_reload))
            // No reload ever recorded: assume a reload costs a fifth of
            // a build (BENCH_serve.json's spill-tax ballpark).
            .unwrap_or_else(|| self.build_ns(k) / 5)
    }
}

/// The resident-set half of a model. Plain LRU rides on archsim's
/// cache scaffolding (one fully-associative set, 1-byte lines, true-LRU
/// stamps); SLRU keeps its own probation/protected entries mirroring
/// the live cache exactly.
enum Resident {
    Arch(ArchCache),
    Slru(SlruSet),
}

impl Resident {
    fn new(capacity: usize, protected_capacity: usize) -> Resident {
        if protected_capacity == 0 {
            Resident::Arch(ArchCache::new(capacity, capacity, 1))
        } else {
            Resident::Slru(SlruSet {
                entries: Vec::new(),
                clock: 0,
                capacity,
                protected_capacity,
            })
        }
    }

    /// `(hit, evicted key)` — mutating.
    fn access(&mut self, k: u64) -> (bool, Option<u64>) {
        match self {
            Resident::Arch(c) => c.access_evicting(k),
            Resident::Slru(s) => s.access(k),
        }
    }

    /// `(would hit, would-be victim)` — non-mutating.
    fn peek(&self, k: u64) -> (bool, Option<u64>) {
        match self {
            Resident::Arch(c) => c.peek(k),
            Resident::Slru(s) => s.peek(k),
        }
    }
}

struct SlruEntry {
    key: u64,
    stamp: u64,
    protected: bool,
}

struct SlruSet {
    entries: Vec<SlruEntry>,
    clock: u64,
    capacity: usize,
    protected_capacity: usize,
}

impl SlruSet {
    fn victim_index(&self) -> Option<usize> {
        let probation = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.protected)
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i);
        probation.or_else(|| {
            self.entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
        })
    }

    fn peek(&self, k: u64) -> (bool, Option<u64>) {
        if self.entries.iter().any(|e| e.key == k) {
            return (true, None);
        }
        if self.entries.len() < self.capacity {
            return (false, None);
        }
        (false, self.victim_index().map(|i| self.entries[i].key))
    }

    fn access(&mut self, k: u64) -> (bool, Option<u64>) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == k) {
            e.stamp = clock;
            if self.protected_capacity > 0 && !e.protected {
                e.protected = true;
                while self.entries.iter().filter(|e| e.protected).count() > self.protected_capacity
                {
                    if let Some(d) = self
                        .entries
                        .iter_mut()
                        .filter(|e| e.protected)
                        .min_by_key(|e| e.stamp)
                    {
                        d.protected = false;
                    }
                }
            }
            return (true, None);
        }
        let evicted = if self.entries.len() >= self.capacity {
            self.victim_index().map(|i| self.entries.swap_remove(i).key)
        } else {
            None
        };
        self.entries.push(SlruEntry {
            key: k,
            stamp: clock,
            protected: false,
        });
        (false, evicted)
    }
}

/// One policy model mid-replay; feed it events with [`CacheModel::step`].
pub struct CacheModel {
    cfg: ModelConfig,
    resident: Resident,
    /// Spill-tier file table, oldest first — same touch/refresh/prune
    /// order as the live cache's tick-stamped table.
    files: Vec<u64>,
    freq: HashMap<u64, u32>,
    freq_samples: u32,
    /// Keys prefetched but not yet demanded: key → hint timestamp.
    prefetched: HashMap<u64, u64>,
    costs: Costs,
    stats: ModelStats,
}

impl CacheModel {
    /// A fresh model with costs learned from `events` (a pre-pass; the
    /// same slice is then replayed through [`CacheModel::step`]).
    pub fn new(cfg: ModelConfig, events: &[TraceEvent]) -> CacheModel {
        CacheModel {
            resident: Resident::new(cfg.capacity.max(1), cfg.protected_capacity),
            files: Vec::new(),
            freq: HashMap::new(),
            freq_samples: 0,
            prefetched: HashMap::new(),
            costs: Costs::learn(events),
            stats: ModelStats::default(),
            cfg,
        }
    }

    fn freq_of(&self, k: u64) -> u32 {
        self.freq.get(&k).copied().unwrap_or(0)
    }

    fn note_freq(&mut self, k: u64) {
        *self.freq.entry(k).or_insert(0) += 1;
        self.freq_samples += 1;
        // TinyLFU-style aging: periodically halve every estimate so the
        // sketch tracks the recent past, not all history.
        if self.freq_samples >= 64 {
            self.freq_samples = 0;
            self.freq.values_mut().for_each(|v| *v /= 2);
            self.freq.retain(|_, v| *v > 0);
        }
    }

    fn files_touch(&mut self, k: u64) -> bool {
        match self.files.iter().position(|&f| f == k) {
            Some(i) => {
                self.files.remove(i);
                self.files.push(k);
                true
            }
            None => false,
        }
    }

    fn files_register(&mut self, k: u64) {
        if self.cfg.spill_capacity == 0 {
            return;
        }
        if self.files_touch(k) {
            return; // already spilled: content is immutable, no rewrite
        }
        self.files.push(k);
        self.stats.spills += 1;
        while self.files.len() > self.cfg.spill_capacity {
            self.files.remove(0);
            self.stats.spill_drops += 1;
        }
    }

    fn fill(&mut self, k: u64, reload: bool, live: Option<GridSource>, dur_ns: u64) {
        if reload {
            self.stats.reloads += 1;
            self.stats.stall_ns += if live == Some(GridSource::Reloaded) {
                dur_ns
            } else {
                self.costs.reload_ns(k)
            };
        } else {
            self.stats.builds += 1;
            self.stats.stall_ns += if live == Some(GridSource::Built) {
                dur_ns
            } else {
                self.costs.build_ns(k)
            };
        }
    }

    /// Replay one recorded event.
    pub fn step(&mut self, ev: &TraceEvent) {
        match &ev.kind {
            TraceEventKind::Access {
                key,
                source,
                dur_ns,
                ..
            } => self.access(model_key(*key), *source, *dur_ns, ev.t_ns),
            TraceEventKind::Hint { key } => self.hint(model_key(*key), ev.t_ns),
            // A restored spill tier (warm restart) pre-populates the
            // file table in recorded (oldest-first) order.
            TraceEventKind::Restore { key } if self.cfg.spill_capacity > 0 => {
                self.files.push(model_key(*key));
            }
            // Informational: the model derives its own evictions/spills.
            _ => {}
        }
    }

    fn access(&mut self, k: u64, live: GridSource, dur_ns: u64, t_ns: u64) {
        self.stats.accesses += 1;
        if self.cfg.capacity == 0 {
            self.stats.misses += 1;
            self.fill(k, false, Some(live), dur_ns);
            return;
        }
        if self.cfg.admission_filter {
            self.note_freq(k);
            let (would_hit, victim) = self.resident.peek(k);
            if !would_hit {
                if let Some(v) = victim {
                    if self.freq_of(k) < self.freq_of(v) {
                        // Bypass: serve the job without admitting the
                        // key — the victim has earned its residency.
                        self.stats.misses += 1;
                        let reload = self.files_touch(k);
                        self.fill(k, reload, Some(live), dur_ns);
                        self.prefetched.remove(&k);
                        return;
                    }
                }
            }
        }
        let (hit, evicted) = self.resident.access(k);
        if hit {
            self.stats.hits += 1;
            if let Some(t_hint) = self.prefetched.remove(&k) {
                // The prefetch hid the part of the reload overlapping
                // the gap between hint and demand; the rest stalls.
                let gap = t_ns.saturating_sub(t_hint);
                self.stats.stall_ns += self.costs.reload_ns(k).saturating_sub(gap);
            }
            return;
        }
        self.stats.misses += 1;
        self.prefetched.remove(&k);
        let reload = self.files_touch(k);
        if let Some(v) = evicted {
            self.stats.evictions += 1;
            self.files_register(v);
        }
        self.fill(k, reload, Some(live), dur_ns);
    }

    fn hint(&mut self, k: u64, t_ns: u64) {
        if !self.cfg.prefetch || self.resident.peek(k).0 || !self.files.contains(&k) {
            return;
        }
        self.files_touch(k);
        let (_, evicted) = self.resident.access(k);
        if let Some(v) = evicted {
            self.stats.evictions += 1;
            self.files_register(v);
        }
        self.stats.reloads += 1;
        self.stats.prefetches += 1;
        self.prefetched.insert(k, t_ns);
    }

    /// The accumulated counters.
    pub fn stats(&self) -> &ModelStats {
        &self.stats
    }
}

/// Replay `events` under `cfg` and return the model's counters.
pub fn replay(events: &[TraceEvent], cfg: ModelConfig) -> ModelStats {
    let mut model = CacheModel::new(cfg, events);
    for ev in events {
        model.step(ev);
    }
    model.stats.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_grids::SimdLevel;

    fn acc(t: u64, key: u64) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            kind: TraceEventKind::Access {
                key: (key, SimdLevel::Scalar),
                source: GridSource::Built,
                bytes: 0,
                dur_ns: 1000,
            },
        }
    }

    fn hint(t: u64, key: u64) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            kind: TraceEventKind::Hint {
                key: (key, SimdLevel::Scalar),
            },
        }
    }

    fn cfg(name: &str, capacity: usize, spill: usize) -> ModelConfig {
        ModelConfig::for_policy(name, capacity, spill).unwrap()
    }

    #[test]
    fn policy_names_round_trip() {
        for p in CachePolicy::ALL {
            assert_eq!(CachePolicy::parse(p.name()), Some(p));
        }
        assert_eq!(CachePolicy::parse("LRU"), Some(CachePolicy::Lru));
        assert_eq!(CachePolicy::parse("fifo"), None);
        assert_eq!(CachePolicy::default(), CachePolicy::Slru);
        assert_eq!(CachePolicy::Slru.protected_capacity(1), 0, "slru@1 ≡ lru");
    }

    #[test]
    fn model_keys_keep_levels_distinct() {
        let a = model_key((7, SimdLevel::Scalar));
        let b = model_key((7, SimdLevel::detect()));
        if SimdLevel::detect() != SimdLevel::Scalar {
            assert_ne!(a, b);
        }
        assert_ne!(model_key((u64::MAX, SimdLevel::Scalar)), u64::MAX);
    }

    #[test]
    fn lru_model_reloads_from_the_spill_tier() {
        // Two keys ping-ponging through capacity 1: first touches build,
        // the rest reload; each key spills once.
        let evs: Vec<TraceEvent> = [1, 2, 1, 2, 1]
            .iter()
            .enumerate()
            .map(|(i, &k)| acc(i as u64, k))
            .collect();
        let s = replay(&evs, cfg("lru", 1, 4));
        assert_eq!((s.accesses, s.hits, s.misses), (5, 0, 5));
        assert_eq!((s.builds, s.reloads, s.spills), (2, 3, 2));
        assert_eq!(s.evictions, 4);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn slru_resists_a_scan_that_flushes_lru() {
        // A proven-hot key, then a scan of one-shot keys, then the hot
        // key again. LRU lets the scan evict it; SLRU protects it.
        let mut evs = vec![acc(0, 100), acc(1, 100)]; // 100 becomes hot
        for (i, k) in (200..205).enumerate() {
            evs.push(acc(2 + i as u64, k));
        }
        evs.push(acc(50, 100));
        let lru = replay(&evs, cfg("lru", 2, 0));
        let slru = replay(&evs, cfg("slru", 2, 0));
        assert_eq!(lru.hits, 1, "lru: the scan flushed the hot key");
        assert_eq!(slru.hits, 2, "slru: the protected segment kept it");
        assert!(slru.hit_rate() > lru.hit_rate());
    }

    #[test]
    fn tinylfu_admission_defends_the_hot_key() {
        // Hot key accessed repeatedly, cold keys scanning through a
        // capacity-1 cache: the admission filter refuses to evict the
        // frequent key for one-hit wonders.
        let mut evs = vec![acc(0, 1), acc(1, 1), acc(2, 1)];
        for (t, k) in (3..).zip([50, 1, 60, 1, 70, 1]) {
            evs.push(acc(t, k));
        }
        let lru = replay(&evs, cfg("lru", 1, 0));
        let tiny = replay(&evs, cfg("tinylfu", 1, 0));
        assert!(
            tiny.hits > lru.hits,
            "tinylfu {} vs lru {}",
            tiny.hits,
            lru.hits
        );
    }

    #[test]
    fn prefetch_converts_spill_misses_into_hits() {
        // Alternating keys through capacity 1 with hints ahead of each
        // access: once both keys are spilled, every hinted access hits.
        let evs = vec![
            acc(0, 1),
            acc(10, 2), // spills 1
            hint(11, 1),
            acc(20, 1), // prefetched → hit (spills 2)
            hint(21, 2),
            acc(30, 2), // prefetched → hit
        ];
        let plain = replay(&evs, cfg("lru", 1, 4));
        let pf = replay(&evs, cfg("lru+prefetch", 1, 4));
        assert_eq!(plain.hits, 0);
        assert_eq!(pf.hits, 2, "hinted accesses hit");
        assert_eq!(pf.prefetches, 2);
        assert_eq!(
            plain.reloads, pf.reloads,
            "prefetch moves reloads earlier, it does not add any"
        );
        assert!(pf.stall_ns < plain.stall_ns, "prefetch hides reload time");
    }

    #[test]
    fn restore_events_warm_the_file_table() {
        let evs = vec![
            TraceEvent {
                t_ns: 0,
                kind: TraceEventKind::Restore {
                    key: (1, SimdLevel::Scalar),
                },
            },
            acc(1, 1),
        ];
        let s = replay(&evs, cfg("lru", 1, 4));
        assert_eq!(
            (s.reloads, s.builds),
            (1, 0),
            "a warm-restored file serves the first miss"
        );
    }
}
