//! LRU cache of built grid sets, keyed by receptor + lattice content +
//! build level.
//!
//! AutoGrid-style precomputation is the dominant *fixed* cost of a
//! screening job; campaigns hammer the same few targets with millions of
//! ligands. The cache keys built [`GridSet`]s by
//! `(content fingerprint, SIMD level)`: the fingerprint is
//! [`mudock_grids::grid_cache_key`] (receptor atoms + lattice geometry,
//! so two `Molecule` values with identical atoms share an entry
//! regardless of provenance), and the [`SimdLevel`] is the level the
//! maps were built at. Jobs pinned to different levels — heterogeneous
//! clients sharing one node — therefore get *distinct* entries instead
//! of silently reading grids built with another job's instruction set.
//!
//! Each entry is an [`OnceLock`] slot: the first job to miss installs the
//! slot and builds into it; concurrent jobs for the same key find the
//! slot (a *hit* — the build runs once either way) and block inside
//! `get_or_init` until it is ready. Build wall time and bytes produced
//! are recorded into a [`PerfMonitor`] region (`"serve::grid_build"`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use mudock_grids::{grid_cache_key, GridBuilder, GridDims, GridSet, SimdLevel};
use mudock_mol::Molecule;
use mudock_perf::PerfMonitor;
use parking_lot::Mutex;

/// Perf region name under which grid builds are recorded.
pub const GRID_BUILD_REGION: &str = "serve::grid_build";

/// Cache counters (monotonic over the cache's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry (including builds still in flight).
    pub hits: u64,
    /// Lookups that had to start a build.
    pub misses: u64,
    /// Entries discarded to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    key: (u64, SimdLevel),
    slot: Arc<OnceLock<Arc<GridSet>>>,
    /// Logical timestamp of the last lookup — the LRU ordering.
    last_use: u64,
}

struct Inner {
    entries: Vec<Entry>,
    tick: u64,
}

/// Thread-safe LRU cache of built grid sets.
pub struct GridCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl GridCache {
    /// Cache holding up to `capacity` grid sets. Capacity 0 disables
    /// caching (every lookup builds and counts as a miss).
    pub fn new(capacity: usize) -> GridCache {
        GridCache {
            capacity,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The grid set for `receptor` on `dims` built at `level`, building
    /// it (all maps) on a miss. `level` is part of the cache key: two
    /// jobs pinned to different SIMD levels never share an entry.
    /// Returns the set and whether it was a hit.
    pub fn get_or_build(
        &self,
        receptor: &Molecule,
        dims: GridDims,
        level: SimdLevel,
        monitor: Option<&PerfMonitor>,
    ) -> (Arc<GridSet>, bool) {
        let key = (grid_cache_key(receptor, &dims), level);

        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (Self::build(receptor, dims, level, monitor), false);
        }

        let (slot, hit) = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.iter_mut().find(|e| e.key == key) {
                Some(e) => {
                    e.last_use = tick;
                    (Arc::clone(&e.slot), true)
                }
                None => {
                    if inner.entries.len() >= self.capacity {
                        let lru = inner
                            .entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.last_use)
                            .map(|(i, _)| i)
                            .expect("capacity > 0 and entries is non-empty");
                        inner.entries.swap_remove(lru);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    let slot = Arc::new(OnceLock::new());
                    inner.entries.push(Entry {
                        key,
                        slot: Arc::clone(&slot),
                        last_use: tick,
                    });
                    (slot, false)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        // Build outside the cache lock: only same-key lookups wait (in
        // `get_or_init`), never the whole cache.
        let grids = Arc::clone(slot.get_or_init(|| Self::build(receptor, dims, level, monitor)));
        (grids, hit)
    }

    fn build(
        receptor: &Molecule,
        dims: GridDims,
        level: SimdLevel,
        monitor: Option<&PerfMonitor>,
    ) -> Arc<GridSet> {
        let t0 = std::time::Instant::now();
        let grids = GridBuilder::new(receptor, dims).build_simd(level);
        if let Some(m) = monitor {
            let bytes = (grids.data.len() * std::mem::size_of::<f32>()) as u64;
            m.record(GRID_BUILD_REGION, t0.elapsed(), 0, 0, bytes);
        }
        Arc::new(grids)
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().entries.len(),
        }
    }

    /// Drop every resident entry (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_mol::Vec3;
    use mudock_molio::synthetic_receptor;

    fn dims() -> GridDims {
        GridDims::centered(Vec3::ZERO, 4.0, 1.0)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_build() {
        let cache = GridCache::new(2);
        let rec = synthetic_receptor(3, 40, 5.0);
        let (a, hit_a) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        let (b, hit_b) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn content_identity_beats_provenance() {
        let cache = GridCache::new(2);
        let rec = synthetic_receptor(3, 40, 5.0);
        let mut renamed = rec.clone();
        renamed.name = "other".into();
        let (_, first) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        let (_, second) = cache.get_or_build(&renamed, dims(), SimdLevel::detect(), None);
        assert!(!first);
        assert!(second, "identical content must share the cache entry");
    }

    #[test]
    fn pinned_levels_get_distinct_entries() {
        let cache = GridCache::new(4);
        let rec = synthetic_receptor(3, 40, 5.0);
        let levels = SimdLevel::available();
        for &l in &levels {
            let (_, hit) = cache.get_or_build(&rec, dims(), l, None);
            assert!(!hit, "{l}: each level builds its own grids");
        }
        assert_eq!(cache.stats().entries, levels.len().min(4));
        // Revisiting a level is a hit on that level's entry.
        let (_, hit) = cache.get_or_build(&rec, dims(), levels[0], None);
        assert!(hit);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = GridCache::new(2);
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        let r3 = synthetic_receptor(3, 30, 5.0);
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r2, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None); // r1 hot, r2 cold
        cache.get_or_build(&r3, dims(), SimdLevel::detect(), None); // evicts r2
        assert_eq!(cache.stats().evictions, 1);
        let (_, r1_hit) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        assert!(r1_hit, "the hot entry must survive the eviction");
        let (_, r2_hit) = cache.get_or_build(&r2, dims(), SimdLevel::detect(), None);
        assert!(!r2_hit, "the cold entry must have been evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = GridCache::new(0);
        let rec = synthetic_receptor(5, 30, 5.0);
        let (_, h1) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        let (_, h2) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        assert!(!h1 && !h2);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn build_time_lands_in_the_perf_region() {
        let cache = GridCache::new(1);
        let monitor = PerfMonitor::new();
        let rec = synthetic_receptor(6, 30, 5.0);
        cache.get_or_build(&rec, dims(), SimdLevel::detect(), Some(&monitor));
        cache.get_or_build(&rec, dims(), SimdLevel::detect(), Some(&monitor));
        let region = monitor.region(GRID_BUILD_REGION).expect("region recorded");
        assert_eq!(region.invocations, 1, "the hit must not rebuild");
        assert!(region.bytes_written > 0);
    }

    #[test]
    fn concurrent_same_key_lookups_build_once() {
        let cache = Arc::new(GridCache::new(2));
        let rec = Arc::new(synthetic_receptor(9, 40, 5.0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                cache.get_or_build(&rec, dims(), SimdLevel::detect(), None)
            }));
        }
        let results: Vec<(Arc<GridSet>, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let misses = results.iter().filter(|(_, hit)| !hit).count();
        assert_eq!(misses, 1, "exactly one thread installs the entry");
        for (g, _) in &results {
            assert!(Arc::ptr_eq(g, &results[0].0));
        }
    }
}
