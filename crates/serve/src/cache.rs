//! LRU cache of built grid sets, keyed by receptor + lattice content +
//! build level.
//!
//! AutoGrid-style precomputation is the dominant *fixed* cost of a
//! screening job; campaigns hammer the same few targets with millions of
//! ligands. The cache keys built [`GridSet`]s by
//! `(content fingerprint, SIMD level)`: the fingerprint is
//! [`mudock_grids::grid_cache_key`] (receptor atoms + lattice geometry,
//! so two `Molecule` values with identical atoms share an entry
//! regardless of provenance), and the [`SimdLevel`] is the level the
//! maps were built at. Jobs pinned to different levels — heterogeneous
//! clients sharing one node — therefore get *distinct* entries instead
//! of silently reading grids built with another job's instruction set.
//!
//! Each entry is an [`OnceLock`] slot: the first job to miss installs the
//! slot and builds into it; concurrent jobs for the same key find the
//! slot (a *hit* — the build runs once either way) and block inside
//! `get_or_init` until it is ready. Build wall time and bytes produced
//! are recorded into a [`PerfMonitor`] region (`"serve::grid_build"`).
//!
//! # The spill tier
//!
//! With many receptors in flight, the resident capacity thrashes: a
//! grid set evicted today is rebuilt tomorrow at full AutoGrid cost.
//! A cache created through [`GridCache::with_spill`] adds a bounded
//! on-disk tier: on LRU eviction, the built [`GridSet`] is written
//! through [`mudock_grids::io::save`] into the spill directory
//! (atomically — temp file + rename), and the next miss on that key
//! *reloads* it instead of rebuilding. Loads are bit-exact (the format
//! round-trips f32 bit patterns), so a reloaded grid scores ligands
//! identically to the original build. The directory is bounded by
//! [`SpillConfig::capacity`]; the oldest spill files are deleted beyond
//! it. Spills and reloads are counted in [`CacheStats`] and surface in
//! `GET /stats`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use mudock_grids::{grid_cache_key, GridBuilder, GridDims, GridSet, SimdLevel};
use mudock_mol::Molecule;
use mudock_obs::GridSource;
use mudock_perf::PerfMonitor;
use parking_lot::Mutex;

/// Perf region name under which grid builds are recorded.
pub const GRID_BUILD_REGION: &str = "serve::grid_build";

/// Bounded on-disk spill tier for evicted grid sets.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Directory spill files are written into (created on first use).
    pub dir: PathBuf,
    /// Maximum spill files kept on disk; the oldest are deleted beyond
    /// this, so the directory never grows without bound.
    pub capacity: usize,
}

impl SpillConfig {
    /// Spill into `dir`, keeping at most 16 grid sets on disk.
    pub fn new(dir: impl Into<PathBuf>) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            capacity: 16,
        }
    }
}

/// Cache counters (monotonic over the cache's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry (including builds still in flight).
    pub hits: u64,
    /// Lookups that had to start a build.
    pub misses: u64,
    /// Entries discarded to respect the capacity bound.
    pub evictions: u64,
    /// Evicted grid sets written to the spill tier.
    pub spills: u64,
    /// Misses satisfied by loading a spilled grid set from disk
    /// instead of rebuilding it.
    pub reloads: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Spill files currently on disk.
    pub spilled: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    key: (u64, SimdLevel),
    slot: Arc<OnceLock<Arc<GridSet>>>,
    /// Logical timestamp of the last lookup — the LRU ordering.
    last_use: u64,
}

/// One spilled grid set on disk.
struct SpillFile {
    key: (u64, SimdLevel),
    path: PathBuf,
    /// Logical timestamp of the spill — the oldest file goes first
    /// when the directory is over capacity.
    tick: u64,
}

struct SpillState {
    cfg: SpillConfig,
    files: Vec<SpillFile>,
}

struct Inner {
    entries: Vec<Entry>,
    tick: u64,
    spill: Option<SpillState>,
}

/// Thread-safe LRU cache of built grid sets, with an optional on-disk
/// spill tier for evicted entries (see [`GridCache::with_spill`]).
pub struct GridCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    spills: AtomicU64,
    reloads: AtomicU64,
}

impl GridCache {
    /// Cache holding up to `capacity` grid sets. Capacity 0 disables
    /// caching (every lookup builds and counts as a miss).
    pub fn new(capacity: usize) -> GridCache {
        Self::build_cache(capacity, None)
    }

    /// Like [`GridCache::new`], but evicted grid sets spill to disk
    /// under `spill.dir` and are reloaded — bit-identically — on the
    /// next miss instead of being rebuilt. The directory is created
    /// eagerly so a misconfigured path fails at service start, not at
    /// the first eviction. `capacity` must be at least 1: capacity 0
    /// disables caching entirely (lookups never install entries, so
    /// nothing would ever spill) — refusing it here beats silently
    /// ignoring the spill tier the caller configured.
    pub fn with_spill(capacity: usize, spill: SpillConfig) -> std::io::Result<GridCache> {
        if capacity == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a spill tier needs cache capacity >= 1 (capacity 0 disables caching, \
                 so nothing would ever spill or reload)",
            ));
        }
        std::fs::create_dir_all(&spill.dir)?;
        Ok(Self::build_cache(
            capacity,
            Some(SpillState {
                cfg: spill,
                files: Vec::new(),
            }),
        ))
    }

    fn build_cache(capacity: usize, spill: Option<SpillState>) -> GridCache {
        GridCache {
            capacity,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: 0,
                spill,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
        }
    }

    /// The grid set for `receptor` on `dims` built at `level`, building
    /// it (all maps) on a miss — or, when a spill tier is configured
    /// and holds this key, reloading the evicted build from disk
    /// bit-identically instead. `level` is part of the cache key: two
    /// jobs pinned to different SIMD levels never share an entry.
    /// Returns the set plus how it was obtained:
    /// [`GridSource::Hit`] (memory, including joining another job's
    /// in-flight build), [`GridSource::Reloaded`] (spill tier), or
    /// [`GridSource::Built`] (full AutoGrid run).
    pub fn get_or_build(
        &self,
        receptor: &Molecule,
        dims: GridDims,
        level: SimdLevel,
        monitor: Option<&PerfMonitor>,
    ) -> (Arc<GridSet>, GridSource) {
        let key = (grid_cache_key(receptor, &dims), level);

        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (
                Self::build(receptor, dims, level, monitor),
                GridSource::Built,
            );
        }

        let (slot, hit, reload_from, spill_save, spill_delete) = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.iter_mut().find(|e| e.key == key) {
                Some(e) => {
                    e.last_use = tick;
                    (Arc::clone(&e.slot), true, None, None, Vec::new())
                }
                None => {
                    // A spilled copy of this key is about to get hot
                    // again: refresh its age so the over-capacity prune
                    // below prefers genuinely cold files.
                    let reload = inner.spill.as_mut().and_then(|s| {
                        s.files.iter_mut().find(|f| f.key == key).map(|f| {
                            f.tick = tick;
                            f.path.clone()
                        })
                    });
                    let mut save = None;
                    let mut delete = Vec::new();
                    if inner.entries.len() >= self.capacity {
                        let lru = inner
                            .entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.last_use)
                            .map(|(i, _)| i)
                            .expect("capacity > 0 and entries is non-empty");
                        let evicted = inner.entries.swap_remove(lru);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        // Spill only finished builds: an in-flight
                        // eviction has nothing to write yet (its slot
                        // fills after the detached build completes).
                        if let (Some(state), Some(grids)) =
                            (inner.spill.as_mut(), evicted.slot.get())
                        {
                            save = Self::plan_spill(
                                state,
                                evicted.key,
                                Arc::clone(grids),
                                tick,
                                &mut delete,
                            );
                        }
                    }
                    let slot = Arc::new(OnceLock::new());
                    inner.entries.push(Entry {
                        key,
                        slot: Arc::clone(&slot),
                        last_use: tick,
                    });
                    (slot, false, reload, save, delete)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        // All spill I/O runs outside the cache lock: only same-key
        // lookups ever wait on disk (or on a build, in `get_or_init`),
        // never the whole cache.
        for path in spill_delete {
            std::fs::remove_file(path).ok();
        }
        if let Some((grids, spill_key, path, tick)) = spill_save {
            if Self::save_atomic(&grids, &path, tick).is_ok() {
                self.spills.fetch_add(1, Ordering::Relaxed);
                // A concurrent reload-miss may have hit ENOENT in the
                // window before our rename landed and deregistered the
                // file. The file is on disk now: re-register it, or it
                // would escape the capacity bound (and pruning) for
                // good.
                for stale in self.reregister_spill_file(spill_key, &path) {
                    std::fs::remove_file(stale).ok();
                }
            } else {
                // Nothing usable landed on disk; deregister the file so
                // a later miss rebuilds instead of chasing a ghost.
                self.forget_spill_file(&path);
            }
        }
        // Disambiguated only by the thread that actually initializes the
        // slot: a concurrent same-key caller that joins an in-flight
        // build reports `Hit` (the work ran once either way).
        let source = std::cell::Cell::new(if hit {
            GridSource::Hit
        } else {
            GridSource::Built
        });
        let grids = Arc::clone(slot.get_or_init(|| {
            if let Some(path) = &reload_from {
                match mudock_grids::io::load(path) {
                    Ok(gs) => {
                        self.reloads.fetch_add(1, Ordering::Relaxed);
                        source.set(GridSource::Reloaded);
                        return Arc::new(gs);
                    }
                    // Registered but not on disk yet: a concurrent
                    // spill's rename has not landed. Deregister and
                    // rebuild (the spiller re-registers once its write
                    // completes) — but delete nothing, or we could
                    // race ahead and remove the valid file it is about
                    // to produce.
                    Err(mudock_grids::GridIoError::Io(ref io))
                        if io.kind() == std::io::ErrorKind::NotFound =>
                    {
                        self.forget_spill_file(path);
                    }
                    // Truncated, corrupt, or foreign: drop the file
                    // and rebuild — the spill tier is an optimization,
                    // never a correctness dependency.
                    Err(_) => {
                        self.forget_spill_file(path);
                        std::fs::remove_file(path).ok();
                    }
                }
            }
            Self::build(receptor, dims, level, monitor)
        }));
        (grids, source.get())
    }

    /// Register the eviction in the spill file table (bounding it to
    /// the configured capacity) and hand back what to write — `None`
    /// when the key is already spilled: grid content is immutable per
    /// key, so the bytes on disk are identical and rewriting them
    /// every time a reloaded entry is re-evicted (the steady state of
    /// targets ping-ponging through a small cache) would be pure
    /// wasted I/O. The write itself happens outside the cache lock.
    #[allow(clippy::type_complexity)]
    fn plan_spill(
        state: &mut SpillState,
        key: (u64, SimdLevel),
        grids: Arc<GridSet>,
        tick: u64,
        delete: &mut Vec<PathBuf>,
    ) -> Option<(Arc<GridSet>, (u64, SimdLevel), PathBuf, u64)> {
        let path = state
            .cfg
            .dir
            .join(format!("{:016x}-{}.grid", key.0, key.1.name()));
        Self::register_spill_file(state, key, &path, tick, delete)
            .then_some((grids, key, path, tick))
    }

    /// Insert `key` into the file table and collect over-capacity
    /// victims into `delete`. Returns whether the key is *new* (needs
    /// its file written); an existing entry just has its age
    /// refreshed.
    fn register_spill_file(
        state: &mut SpillState,
        key: (u64, SimdLevel),
        path: &std::path::Path,
        tick: u64,
        delete: &mut Vec<PathBuf>,
    ) -> bool {
        if let Some(f) = state.files.iter_mut().find(|f| f.key == key) {
            f.tick = tick;
            return false;
        }
        state.files.push(SpillFile {
            key,
            path: path.to_path_buf(),
            tick,
        });
        while state.files.len() > state.cfg.capacity.max(1) {
            let oldest = state
                .files
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.tick)
                .map(|(i, _)| i)
                .expect("len > capacity >= 1");
            delete.push(state.files.swap_remove(oldest).path);
        }
        true
    }

    /// Put a just-written spill file back in the table if a racing
    /// reload-miss deregistered it mid-write; returns any files the
    /// capacity bound now prunes.
    fn reregister_spill_file(&self, key: (u64, SimdLevel), path: &std::path::Path) -> Vec<PathBuf> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut delete = Vec::new();
        if let Some(state) = inner.spill.as_mut() {
            Self::register_spill_file(state, key, path, tick, &mut delete);
        }
        delete
    }

    /// Write-then-rename so a reader never sees a torn spill file; the
    /// temp name carries the spill tick so two racing spills of the
    /// same key cannot interleave into one temp file.
    fn save_atomic(
        grids: &GridSet,
        path: &std::path::Path,
        tick: u64,
    ) -> Result<(), mudock_grids::GridIoError> {
        let tmp = path.with_extension(format!("tmp{tick}"));
        mudock_grids::io::save(grids, &tmp)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }

    fn forget_spill_file(&self, path: &std::path::Path) {
        let mut inner = self.inner.lock();
        if let Some(s) = &mut inner.spill {
            s.files.retain(|f| f.path != path);
        }
    }

    fn build(
        receptor: &Molecule,
        dims: GridDims,
        level: SimdLevel,
        monitor: Option<&PerfMonitor>,
    ) -> Arc<GridSet> {
        let t0 = std::time::Instant::now();
        let grids = GridBuilder::new(receptor, dims).build_simd(level);
        if let Some(m) = monitor {
            let bytes = (grids.data.len() * std::mem::size_of::<f32>()) as u64;
            m.record(GRID_BUILD_REGION, t0.elapsed(), 0, 0, bytes);
        }
        Arc::new(grids)
    }

    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            entries: inner.entries.len(),
            spilled: inner.spill.as_ref().map_or(0, |s| s.files.len()),
        }
    }

    /// Drop every resident entry (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_mol::Vec3;
    use mudock_molio::synthetic_receptor;

    fn dims() -> GridDims {
        GridDims::centered(Vec3::ZERO, 4.0, 1.0)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_build() {
        let cache = GridCache::new(2);
        let rec = synthetic_receptor(3, 40, 5.0);
        let (a, src_a) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        let (b, src_b) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        assert_eq!(src_a, GridSource::Built);
        assert_eq!(src_b, GridSource::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn content_identity_beats_provenance() {
        let cache = GridCache::new(2);
        let rec = synthetic_receptor(3, 40, 5.0);
        let mut renamed = rec.clone();
        renamed.name = "other".into();
        let (_, first) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        let (_, second) = cache.get_or_build(&renamed, dims(), SimdLevel::detect(), None);
        assert_eq!(first, GridSource::Built);
        assert_eq!(
            second,
            GridSource::Hit,
            "identical content must share the cache entry"
        );
    }

    #[test]
    fn pinned_levels_get_distinct_entries() {
        let cache = GridCache::new(4);
        let rec = synthetic_receptor(3, 40, 5.0);
        let levels = SimdLevel::available();
        for &l in &levels {
            let (_, src) = cache.get_or_build(&rec, dims(), l, None);
            assert_eq!(
                src,
                GridSource::Built,
                "{l}: each level builds its own grids"
            );
        }
        assert_eq!(cache.stats().entries, levels.len().min(4));
        // Revisiting a level is a hit on that level's entry.
        let (_, src) = cache.get_or_build(&rec, dims(), levels[0], None);
        assert_eq!(src, GridSource::Hit);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = GridCache::new(2);
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        let r3 = synthetic_receptor(3, 30, 5.0);
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r2, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r1, dims(), SimdLevel::detect(), None); // r1 hot, r2 cold
        cache.get_or_build(&r3, dims(), SimdLevel::detect(), None); // evicts r2
        assert_eq!(cache.stats().evictions, 1);
        let (_, r1_src) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        assert_eq!(
            r1_src,
            GridSource::Hit,
            "the hot entry must survive the eviction"
        );
        let (_, r2_src) = cache.get_or_build(&r2, dims(), SimdLevel::detect(), None);
        assert_eq!(
            r2_src,
            GridSource::Built,
            "the cold entry must have been evicted"
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = GridCache::new(0);
        let rec = synthetic_receptor(5, 30, 5.0);
        let (_, s1) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        let (_, s2) = cache.get_or_build(&rec, dims(), SimdLevel::detect(), None);
        assert_eq!((s1, s2), (GridSource::Built, GridSource::Built));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn build_time_lands_in_the_perf_region() {
        let cache = GridCache::new(1);
        let monitor = PerfMonitor::new();
        let rec = synthetic_receptor(6, 30, 5.0);
        cache.get_or_build(&rec, dims(), SimdLevel::detect(), Some(&monitor));
        cache.get_or_build(&rec, dims(), SimdLevel::detect(), Some(&monitor));
        let region = monitor.region(GRID_BUILD_REGION).expect("region recorded");
        assert_eq!(region.invocations, 1, "the hit must not rebuild");
        assert!(region.bytes_written > 0);
    }

    fn spill_dir(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mudock-spill-{}-{name}", std::process::id()))
    }

    #[test]
    fn spill_refuses_a_capacity_that_can_never_spill() {
        let dir = spill_dir("zero-cap");
        let err = match GridCache::with_spill(0, SpillConfig::new(&dir)) {
            Err(e) => e,
            Ok(_) => panic!("capacity 0 with a spill tier must be refused"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn eviction_spills_and_the_next_miss_reloads_bit_identically() {
        let dir = spill_dir("reload");
        std::fs::remove_dir_all(&dir).ok();
        let cache = GridCache::with_spill(1, SpillConfig::new(&dir)).unwrap();
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        let (built, _) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r2, dims(), SimdLevel::detect(), None); // evicts + spills r1
        let s = cache.stats();
        assert_eq!((s.evictions, s.spills, s.spilled), (1, 1, 1));

        let (reloaded, src) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        assert_eq!(
            src,
            GridSource::Reloaded,
            "a reload is still a miss (the entry was evicted)"
        );
        assert_eq!(cache.stats().reloads, 1);
        assert!(
            !Arc::ptr_eq(&built, &reloaded),
            "the reload must come from disk, not a retained allocation"
        );
        assert_eq!(built.dims, reloaded.dims);
        assert_eq!(built.built, reloaded.built);
        for (a, b) in built.data.iter().zip(&reloaded.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_directory_is_bounded() {
        let dir = spill_dir("bounded");
        std::fs::remove_dir_all(&dir).ok();
        let cache = GridCache::with_spill(
            1,
            SpillConfig {
                dir: dir.clone(),
                capacity: 2,
            },
        )
        .unwrap();
        // Four receptors through a capacity-1 cache: three evictions,
        // three spills, but only the two newest files survive on disk.
        for seed in 1..=4 {
            let r = synthetic_receptor(seed, 25, 5.0);
            cache.get_or_build(&r, dims(), SimdLevel::detect(), None);
        }
        let s = cache.stats();
        assert_eq!((s.evictions, s.spills, s.spilled), (3, 3, 2));
        let on_disk = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(on_disk, 2, "the oldest spill file must be deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_spill_files_fall_back_to_a_rebuild() {
        let dir = spill_dir("corrupt");
        std::fs::remove_dir_all(&dir).ok();
        let cache = GridCache::with_spill(1, SpillConfig::new(&dir)).unwrap();
        let r1 = synthetic_receptor(1, 30, 5.0);
        let r2 = synthetic_receptor(2, 30, 5.0);
        let (built, _) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        cache.get_or_build(&r2, dims(), SimdLevel::detect(), None);
        // Stomp the spilled file: the reload must fail closed into a
        // rebuild, and the ghost entry must be forgotten.
        let file = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap();
        std::fs::write(file.path(), b"not a grid file").unwrap();
        let (rebuilt, src) = cache.get_or_build(&r1, dims(), SimdLevel::detect(), None);
        assert_eq!(src, GridSource::Built);
        let s = cache.stats();
        assert_eq!(s.reloads, 0, "a corrupt file is not a reload");
        assert_eq!(s.spilled, 1, "r2's spill remains; r1's ghost is gone");
        for (a, b) in built.data.iter().zip(&rebuilt.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_same_key_lookups_build_once() {
        let cache = Arc::new(GridCache::new(2));
        let rec = Arc::new(synthetic_receptor(9, 40, 5.0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                cache.get_or_build(&rec, dims(), SimdLevel::detect(), None)
            }));
        }
        let results: Vec<(Arc<GridSet>, GridSource)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let misses = results
            .iter()
            .filter(|(_, src)| *src == GridSource::Built)
            .count();
        assert_eq!(misses, 1, "exactly one thread installs the entry");
        for (g, _) in &results {
            assert!(Arc::ptr_eq(g, &results[0].0));
        }
    }
}
