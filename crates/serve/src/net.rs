//! The network frontend: a dependency-free HTTP/1.1 listener over
//! [`ScreenService`].
//!
//! [`NetServer::bind`] opens a [`std::net::TcpListener`] (no async
//! runtime, matching the workspace's minimal-dependency policy) and
//! serves a small JSON API speaking the [`wire`] module's codec:
//!
//! | Method   | Path                 | Meaning                                   |
//! |----------|----------------------|-------------------------------------------|
//! | `POST`   | `/jobs`              | submit a campaign + receptor + ligands    |
//! | `GET`    | `/jobs/{id}`         | status / progress / terminal outcome      |
//! | `GET`    | `/jobs/{id}/results` | the job's per-ligand JSONL stream so far  |
//! | `DELETE` | `/jobs/{id}`         | request cancellation                      |
//! | `GET`    | `/healthz`           | liveness + boot-random node id + version  |
//! | `GET`    | `/stats`             | service + cache + connection counters     |
//!
//! ## Connection model
//!
//! A pool of [`NetConfig::event_loops`] event-loop threads (default:
//! one per core, capped at four) drives the connections, each loop
//! owning its *own* [`reactor`](crate::reactor) (epoll on Linux,
//! kqueue on mac/BSD, `poll` elsewhere) and its own connection table:
//! non-blocking accept, read, and write, with a per-connection state
//! machine (idle → header → body → write). A connection is **pinned to
//! one loop for life** — on Linux each loop accepts from its own
//! `SO_REUSEPORT` listener and the kernel's flow hash spreads new
//! connections; elsewhere a dedicated accept thread deals connections
//! round-robin into per-loop inboxes. Either way the state machines
//! stay single-threaded and lock-free; only the connection-count cap
//! and the metric atomics are shared. Connections are HTTP/1.1
//! **keep-alive** by default and requests may be **pipelined**: each
//! completed request is answered in order, and any bytes already
//! buffered behind it are processed immediately. Request bodies are
//! parsed *incrementally* as bytes arrive ([`wire::PushParser`]), so a
//! large submission never sits buffered waiting for its last byte
//! before parsing starts.
//!
//! Slow and dead peers are bounded by per-state deadlines
//! ([`NetConfig::idle_timeout`], [`NetConfig::header_timeout`],
//! [`NetConfig::body_timeout`], [`NetConfig::write_timeout`]) plus one
//! end-to-end bound per request ([`NetConfig::request_timeout`], first
//! header byte → response flushed — the backstop for a response stuck
//! behind a slow downstream while the peer keeps the per-phase clocks
//! fresh): a slow-loris client dripping header bytes is closed at the
//! header deadline while thousands of idle keep-alive connections cost
//! only their sockets. Beyond [`NetConfig::max_connections`] — an
//! *exact* cap shared across every loop — the server sheds load
//! gracefully: accept, answer a canned `503`, close — instead of
//! letting the kernel backlog time clients out, and job submission
//! uses [`ScreenService::try_submit`] so a full queue is a `503` the
//! client retries rather than a wedged executor.
//!
//! The frontend machinery is route-agnostic: [`HttpFrontend`] mounts
//! any [`HttpRoutes`] implementation. [`NetServer`] is the screening
//! node's mount; the cluster coordinator mounts its own routes on the
//! same loops, so both tiers share one connection model and metrics
//! surface.
//!
//! Error mapping: malformed HTTP or JSON → `400`, unknown job → `404`,
//! wrong method → `405`, oversized body → `413`, campaign validation
//! ([`CampaignError`](mudock_core::CampaignError)) → `422`, queue full
//! or shutting down → `503`. Protocol-level failures close the
//! connection (framing is unrecoverable); a body that is merely bad
//! JSON keeps it open — the byte framing was intact.
//!
//! The [`client`] module is the matching blocking client (used by the
//! `mudock submit`/`mudock poll` CLI, the loopback bench mode, and the
//! end-to-end tests); [`client::Client`] holds its connection open
//! across requests, so poll loops stop paying a handshake per poll.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mudock_obs::{now_ns, Counter, Gauge, Histogram, Registry};

use crate::job::{JobHandle, JobId, JobSpec, JobState};
use crate::queue::SubmitError;
use crate::reactor::{Event, Interest, Reactor, Token};
use crate::server::ScreenService;
use crate::wire::{self, Json, PushParser, WireError};

/// Network-frontend sizing and timeouts. `Default` fits a CI host.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Open connections the reactor will hold at once. Beyond this,
    /// new connections are accepted, answered a canned `503`, and
    /// closed (graceful shedding — the client sees the overload signal
    /// instead of a backlog timeout).
    pub max_connections: usize,
    /// Request bodies larger than this are refused with `413`.
    pub max_body_bytes: usize,
    /// Per-job JSONL result files are written here (served back by
    /// `GET /jobs/{id}/results`). Created on bind.
    pub results_dir: PathBuf,
    /// Finished jobs kept queryable (status + results). When more
    /// than this many *terminal* jobs are retained, the oldest are
    /// evicted and their result files deleted, so a long-running
    /// server does not grow memory and disk per submission. Running
    /// and queued jobs are never evicted.
    pub max_retained_jobs: usize,
    /// Accept `{"path": …}` receptor/ligand sources, which make the
    /// *server* read the named file. Off by default: on an
    /// unauthenticated socket they are a filesystem probe (error
    /// responses would reveal whether arbitrary paths exist). Enable
    /// only on trusted networks where clients legitimately share the
    /// server's filesystem; inline `pdbqt` text always works.
    pub allow_path_sources: bool,
    /// How long a keep-alive connection may sit between requests.
    pub idle_timeout: Duration,
    /// From the first byte of a request until its headers complete.
    /// This is the slow-loris bound: a client dripping header bytes is
    /// closed here, not at some multi-minute global deadline.
    pub header_timeout: Duration,
    /// From headers-complete until the body's last byte.
    pub body_timeout: Duration,
    /// From response-queued until it is fully flushed.
    pub write_timeout: Duration,
    /// End-to-end bound per request: first header byte until the
    /// response is fully flushed. The per-phase deadlines above each
    /// reset as a connection changes state; this one does not, so a
    /// response stuck behind a slow downstream (a job poll that never
    /// resolves, say) on a connection whose peer keeps the per-phase
    /// clocks fresh is still bounded.
    pub request_timeout: Duration,
    /// Event-loop threads sharing the listen address. Each loop owns
    /// its own reactor and connection table and a connection is pinned
    /// to one loop for life, so per-connection state needs no locking.
    /// `0` means [`default_event_loops`] (one per core, capped at 4).
    pub event_loops: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 1024,
            max_body_bytes: 8 << 20,
            results_dir: std::env::temp_dir().join(format!("mudock-net-{}", std::process::id())),
            max_retained_jobs: 256,
            allow_path_sources: false,
            idle_timeout: Duration::from_secs(60),
            header_timeout: Duration::from_secs(10),
            body_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(60),
            request_timeout: Duration::from_secs(300),
            event_loops: 0,
        }
    }
}

/// The default event-loop count: one per core, capped at four. Both
/// accept paths (REUSEPORT flow hashing, round-robin handoff) spread
/// connections well past four loops, but the dock executors want the
/// remaining cores more than the frontend does.
pub fn default_event_loops() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// One submitted job as the frontend tracks it.
struct NetJob {
    handle: JobHandle,
    name: String,
    results: PathBuf,
}

/// The screening node's routes: the job CRUD + health + stats API over
/// a [`ScreenService`], mounted on the generic frontend by
/// [`NetServer::bind`].
struct NodeRoutes {
    service: Arc<ScreenService>,
    jobs: Mutex<HashMap<JobId, NetJob>>,
    cfg: NetConfig,
    /// The same registry-backed atomics the frontend updates —
    /// [`Registry`] hands out one instrument per (name, labels), so
    /// registering here again just shares the handles and `/stats` can
    /// read them without any plumbing from the event loops.
    metrics: NetMetrics,
    /// Random-at-boot identity served in `/healthz`. A coordinator that
    /// sees the id change behind a stable address knows the node
    /// restarted (grids cold, in-flight jobs gone) even though the
    /// socket still answers.
    node_id: u64,
}

/// The frontend's registry-backed instruments. Every gauge/counter
/// here *is* the `/metrics` series of the same name — `/stats` and
/// Prometheus scrape one set of atomics, so they can never disagree.
struct NetMetrics {
    /// The service-wide registry `/metrics` renders.
    registry: Registry,
    /// Connections currently registered with the reactor.
    open: Arc<Gauge>,
    /// Connections accepted since bind (shed ones included).
    accepted: Arc<Counter>,
    /// Connections answered the canned `503` at the cap.
    shed: Arc<Counter>,
    /// Requests refused for malformed HTTP or JSON (4xx/5xx protocol
    /// and syntax refusals — not semantic errors like 404 or 422).
    parse_errors: Arc<Counter>,
    /// Requests dispatched to a route.
    requests: Arc<Counter>,
    /// Header-first-byte → response-flushed, per request.
    request_seconds: Arc<Histogram>,
    /// Time the event loop spends blocked in the reactor.
    reactor_wait: Arc<Histogram>,
    /// Time the event loop spends dispatching a non-empty wakeup.
    reactor_dispatch: Arc<Histogram>,
    /// Full iteration time (wait + dispatch) of non-empty wakeups.
    reactor_iteration: Arc<Histogram>,
}

impl NetMetrics {
    fn register(registry: &Registry) -> NetMetrics {
        NetMetrics {
            open: registry.gauge(
                "mudock_connections_open",
                &[],
                "Connections currently registered with the reactor",
            ),
            accepted: registry.counter(
                "mudock_connections_accepted_total",
                &[],
                "Connections accepted since bind (shed ones included)",
            ),
            shed: registry.counter(
                "mudock_connections_shed_total",
                &[],
                "Connections answered the canned 503 at the connection cap",
            ),
            parse_errors: registry.counter(
                "mudock_request_parse_errors_total",
                &[],
                "Requests refused for malformed HTTP or JSON",
            ),
            requests: registry.counter(
                "mudock_requests_total",
                &[],
                "Requests dispatched to a route",
            ),
            request_seconds: registry.histogram(
                "mudock_request_seconds",
                &[],
                "Request latency, header first byte to response flushed",
            ),
            reactor_wait: registry.histogram(
                "mudock_reactor_wait_seconds",
                &[],
                "Event-loop time blocked waiting for readiness",
            ),
            reactor_dispatch: registry.histogram(
                "mudock_reactor_dispatch_seconds",
                &[],
                "Event-loop time dispatching a non-empty wakeup",
            ),
            reactor_iteration: registry.histogram(
                "mudock_reactor_iteration_seconds",
                &[],
                "Full event-loop iteration time (wait + dispatch)",
            ),
            registry: registry.clone(),
        }
    }

    /// A torn-view-proof snapshot of the connection gauges. `open` is
    /// read *first*: every open connection incremented `accepted`
    /// before registering, and `accepted` only grows, so the loads can
    /// never observe `open > accepted` — and the final clamp makes the
    /// invariant structural rather than an ordering argument.
    fn snapshot(&self) -> ConnectionStats {
        let open = self.open.get().max(0) as u64;
        let accepted = self.accepted.get();
        ConnectionStats {
            open: open.min(accepted),
            accepted,
            shed: self.shed.get(),
            parse_errors: self.parse_errors.get(),
            requests: self.requests.get(),
        }
    }
}

/// Per-loop slices of the connection instruments, labelled
/// `{loop="N"}` under the same metric names as the unlabelled totals.
/// Updated alongside the totals at the same sites, so at quiescence
/// the labelled series sum to the totals — the invariant the CI
/// net-scale smoke asserts.
struct LoopMetrics {
    open: Arc<Gauge>,
    accepted: Arc<Counter>,
    shed: Arc<Counter>,
    requests: Arc<Counter>,
}

impl LoopMetrics {
    fn register(registry: &Registry, index: usize) -> LoopMetrics {
        let i = index.to_string();
        let labels: &[(&str, &str)] = &[("loop", i.as_str())];
        LoopMetrics {
            open: registry.gauge(
                "mudock_connections_open",
                labels,
                "Connections currently registered with the reactor",
            ),
            accepted: registry.counter(
                "mudock_connections_accepted_total",
                labels,
                "Connections accepted since bind (shed ones included)",
            ),
            shed: registry.counter(
                "mudock_connections_shed_total",
                labels,
                "Connections answered the canned 503 at the connection cap",
            ),
            requests: registry.counter(
                "mudock_requests_total",
                labels,
                "Requests dispatched to a route",
            ),
        }
    }
}

/// Connection-level counters, as served under `"connections"` in
/// `GET /stats` and readable in-process for tests and benches.
#[derive(Clone, Copy, Debug)]
pub struct ConnectionStats {
    pub open: u64,
    pub accepted: u64,
    pub shed: u64,
    pub parse_errors: u64,
    pub requests: u64,
}

/// Monotonic counter naming result files (assigned pre-submit, before
/// the service id exists). Process-global, not per-server: two
/// frontends in one process can share the default (pid-derived)
/// `results_dir`, and per-server counters would both hand out
/// `job-1.jsonl` — one server's eviction would then delete the other's
/// live results.
static NEXT_FILE: AtomicU64 = AtomicU64::new(1);

/// Boot-random node identity: an FNV mix of the wall clock, the pid,
/// and the bound address. Not cryptographic — it only needs to differ
/// between two boots of the same node with overwhelming probability,
/// so a coordinator polling `/healthz` can detect a restart behind a
/// stable address.
fn boot_node_id(addr: SocketAddr) -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    mudock_grids::Fnv64::new()
        .write_u64(nanos)
        .write_u64(std::process::id() as u64)
        .write(addr.to_string().as_bytes())
        .finish()
}

/// A request router the multi-loop frontend can mount. The node's job
/// API ([`NetServer`]) and the cluster coordinator both implement it,
/// so the two tiers share one connection model, reactor pool, and
/// metrics surface.
///
/// `route` runs on an event-loop thread: it must not block on slow
/// work. Submissions go through non-blocking `try_submit`-style paths
/// and large payloads stream from disk via [`Body::File`].
pub trait HttpRoutes: Send + Sync + 'static {
    /// Whether `method path` carries a JSON body worth parsing
    /// incrementally as it streams in. Bodies of other requests are
    /// drained for framing and discarded.
    fn wants_body(&self, method: &str, path: &str) -> bool;

    /// Dispatch one parsed request. `body` is `Some` only when
    /// [`HttpRoutes::wants_body`] said yes — `Err` when the body bytes
    /// were not valid JSON (the HTTP framing was still intact, so the
    /// connection survives).
    fn route(&self, method: &str, path: &str, body: Option<Result<Json, WireError>>) -> Response;
}

/// State shared by every event loop of one frontend.
struct FrontendShared {
    routes: Arc<dyn HttpRoutes>,
    cfg: NetConfig,
    metrics: NetMetrics,
    /// Exact open-connection count across all loops, for the
    /// [`NetConfig::max_connections`] cap. A per-loop split of the cap
    /// would be cheaper but wrong: REUSEPORT's flow hash has enough
    /// variance at 10k connections that one loop would breach its
    /// share while the others sit under theirs.
    open_conns: AtomicUsize,
}

/// How a loop is fed new connections.
enum LoopFeed {
    /// The loop owns a listener outright: the single-loop case, or one
    /// of the per-loop `SO_REUSEPORT` listeners on Linux.
    Listener(TcpListener),
    /// A dedicated accept thread deals connections round-robin into
    /// per-loop inboxes — the portable fallback.
    Inbox(Arc<Handoff>),
}

/// One loop's inbox for the accept-thread fallback, plus the write end
/// of that loop's waker (one byte per handoff so the loop leaves its
/// reactor wait promptly).
struct Handoff {
    inbox: Mutex<VecDeque<TcpStream>>,
    waker: UnixStream,
}

enum AcceptPlan {
    PerLoop(Vec<TcpListener>),
    Handoff(TcpListener),
}

/// Phase one of bringing up a frontend: sockets bound, address
/// resolved, nothing running yet. The two-phase shape exists because
/// routers (the node's own, the coordinator's) want the resolved
/// address (for the boot node id) before the loops start routing to
/// them.
pub struct FrontendBuilder {
    addr: SocketAddr,
    cfg: NetConfig,
    plan: AcceptPlan,
}

impl FrontendBuilder {
    /// Bind the listen socket(s) for `cfg.event_loops` loops. With more
    /// than one loop this tries per-loop `SO_REUSEPORT` listeners
    /// (Linux); anywhere that fails, one blocking listener plus an
    /// accept thread takes over. `addr` may name port 0; the resolved
    /// port is shared by every sibling listener.
    pub fn bind(addr: impl ToSocketAddrs, mut cfg: NetConfig) -> io::Result<FrontendBuilder> {
        if cfg.event_loops == 0 {
            cfg.event_loops = default_event_loops();
        }
        let want = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to bind"))?;
        let plan = if cfg.event_loops == 1 {
            let listener = TcpListener::bind(want)?;
            listener.set_nonblocking(true)?;
            AcceptPlan::PerLoop(vec![listener])
        } else {
            match Self::bind_per_loop(want, cfg.event_loops) {
                Ok(listeners) => AcceptPlan::PerLoop(listeners),
                Err(_) => AcceptPlan::Handoff(TcpListener::bind(want)?),
            }
        };
        let local = match &plan {
            AcceptPlan::PerLoop(listeners) => listeners[0].local_addr()?,
            AcceptPlan::Handoff(listener) => listener.local_addr()?,
        };
        Ok(FrontendBuilder {
            addr: local,
            cfg,
            plan,
        })
    }

    #[cfg(target_os = "linux")]
    fn bind_per_loop(addr: SocketAddr, n: usize) -> io::Result<Vec<TcpListener>> {
        let first = reuseport::bind_reuseport(addr)?;
        // `addr` may have named port 0; siblings must bind the port the
        // kernel actually picked.
        let resolved = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..n {
            listeners.push(reuseport::bind_reuseport(resolved)?);
        }
        Ok(listeners)
    }

    #[cfg(not(target_os = "linux"))]
    fn bind_per_loop(_addr: SocketAddr, _n: usize) -> io::Result<Vec<TcpListener>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "per-loop SO_REUSEPORT listeners are Linux-only",
        ))
    }

    /// The bound address (resolved, if `bind` was given port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Phase two: register metrics in `registry`, spawn the loops (and
    /// the accept thread, in handoff mode), and start serving `routes`.
    pub fn start(
        self,
        routes: Arc<dyn HttpRoutes>,
        registry: &Registry,
    ) -> io::Result<HttpFrontend> {
        let n = self.cfg.event_loops;
        let shared = Arc::new(FrontendShared {
            routes,
            cfg: self.cfg,
            metrics: NetMetrics::register(registry),
            open_conns: AtomicUsize::new(0),
        });

        // Every loop gets a waker pair regardless of accept mode, so
        // shutdown (and handoff delivery) never waits out a reactor
        // timeout.
        let mut wakers = Vec::with_capacity(n);
        let mut waker_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            wakers.push(tx);
            waker_rxs.push(rx);
        }

        let (feeds, accept) = match self.plan {
            AcceptPlan::PerLoop(listeners) => (
                listeners
                    .into_iter()
                    .map(LoopFeed::Listener)
                    .collect::<Vec<_>>(),
                None,
            ),
            AcceptPlan::Handoff(listener) => {
                let handoffs = wakers
                    .iter()
                    .map(|tx| {
                        Ok(Arc::new(Handoff {
                            inbox: Mutex::new(VecDeque::new()),
                            waker: tx.try_clone()?,
                        }))
                    })
                    .collect::<io::Result<Vec<_>>>()?;
                let feeds = handoffs
                    .iter()
                    .map(|h| LoopFeed::Inbox(Arc::clone(h)))
                    .collect();
                (feeds, Some((listener, handoffs)))
            }
        };

        let stop = Arc::new(AtomicBool::new(false));
        let handoff = accept.is_some();
        let mut threads = Vec::with_capacity(n + 1);
        for (i, (feed, waker_rx)) in feeds.into_iter().zip(waker_rxs).enumerate() {
            let reactor = Reactor::new()?;
            let ctx = LoopCtx {
                shared: Arc::clone(&shared),
                lm: LoopMetrics::register(registry, i),
            };
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("net-loop-{i}"))
                    .spawn(move || event_loop(feed, waker_rx, reactor, &ctx, &stop))?,
            );
        }
        if let Some((listener, handoffs)) = accept {
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name("net-accept".into())
                    .spawn(move || accept_thread(&listener, &handoffs, &stop))?,
            );
        }

        Ok(HttpFrontend {
            addr: self.addr,
            shared,
            stop,
            wakers,
            threads,
            handoff,
        })
    }
}

/// A running multi-loop HTTP frontend serving an [`HttpRoutes`]
/// router. [`NetServer`] wraps one for the screening node; the cluster
/// coordinator mounts its own routes on the same machinery.
pub struct HttpFrontend {
    addr: SocketAddr,
    shared: Arc<FrontendShared>,
    stop: Arc<AtomicBool>,
    wakers: Vec<UnixStream>,
    threads: Vec<JoinHandle<()>>,
    handoff: bool,
}

impl HttpFrontend {
    /// The bound address (resolves the port for `…:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connection gauges as of now, aggregated across loops.
    pub fn connection_stats(&self) -> ConnectionStats {
        self.shared.metrics.snapshot()
    }

    /// Stop every loop (and the accept thread) and join them; open
    /// connections are dropped. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        for tx in &self.wakers {
            let _ = (&mut &*tx).write(&[1]);
        }
        if self.handoff {
            // Unblock the accept thread with one last connection.
            let _ = TcpStream::connect(self.addr);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HttpFrontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The portable accept path: a blocking accept loop dealing
/// connections round-robin into per-loop inboxes, waking each loop's
/// reactor as it delivers.
fn accept_thread(listener: &TcpListener, loops: &[Arc<Handoff>], stop: &AtomicBool) {
    let mut next = 0usize;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let handoff = &loops[next % loops.len()];
                next = next.wrapping_add(1);
                handoff.inbox.lock().unwrap().push_back(stream);
                let _ = (&mut &handoff.waker).write(&[1]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept failures (ECONNABORTED, fd exhaustion):
            // back off briefly instead of spinning.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// `SO_REUSEPORT` listener sockets via direct FFI — `std` exposes no
/// pre-bind socket options, and the whole point is setting the option
/// *before* `bind(2)`. Linux-only: the kernel's REUSEPORT flow hash is
/// what spreads connections across the per-loop listeners.
#[cfg(target_os = "linux")]
pub(crate) mod reuseport {
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::fd::{FromRawFd, OwnedFd};
    use std::os::raw::{c_int, c_void};

    const AF_INET: c_int = 2;
    const AF_INET6: c_int = 10;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOCK_NONBLOCK: c_int = 0o4000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;
    const SO_REUSEPORT: c_int = 15;
    const IPPROTO_IPV6: c_int = 41;
    const IPV6_V6ONLY: c_int = 26;

    /// `struct sockaddr_in`; `port` and `addr` in network byte order.
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: [u8; 4],
        zero: [u8; 8],
    }

    /// `struct sockaddr_in6`.
    #[repr(C)]
    struct SockAddrIn6 {
        family: u16,
        port: u16,
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
    }

    fn opt(fd: c_int, level: c_int, name: c_int, value: c_int) -> io::Result<()> {
        let rc = unsafe {
            setsockopt(
                fd,
                level,
                name,
                &value as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as u32,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Bind a non-blocking `SO_REUSEPORT` listener on `addr`. Several
    /// listeners bound this way to one port each receive a
    /// kernel-hashed share of incoming connections.
    pub(crate) fn bind_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
        let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
        let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // Owns the fd from here: every early return closes it.
        let owned = unsafe { OwnedFd::from_raw_fd(fd) };
        opt(fd, SOL_SOCKET, SO_REUSEADDR, 1)?;
        opt(fd, SOL_SOCKET, SO_REUSEPORT, 1)?;
        let rc = match addr {
            SocketAddr::V4(v4) => {
                let sa = SockAddrIn {
                    family: AF_INET as u16,
                    port: v4.port().to_be(),
                    addr: v4.ip().octets(),
                    zero: [0; 8],
                };
                unsafe {
                    bind(
                        fd,
                        &sa as *const SockAddrIn as *const c_void,
                        std::mem::size_of::<SockAddrIn>() as u32,
                    )
                }
            }
            SocketAddr::V6(v6) => {
                opt(fd, IPPROTO_IPV6, IPV6_V6ONLY, 1)?;
                let sa = SockAddrIn6 {
                    family: AF_INET6 as u16,
                    port: v6.port().to_be(),
                    flowinfo: v6.flowinfo().to_be(),
                    addr: v6.ip().octets(),
                    scope_id: v6.scope_id(),
                };
                unsafe {
                    bind(
                        fd,
                        &sa as *const SockAddrIn6 as *const c_void,
                        std::mem::size_of::<SockAddrIn6>() as u32,
                    )
                }
            }
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        if unsafe { listen(fd, 1024) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(TcpListener::from(owned))
    }
}

/// A running HTTP listener bound to a [`ScreenService`].
pub struct NetServer {
    frontend: HttpFrontend,
    node_id: u64,
    shed: Arc<Counter>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the event-loop pool. The service is shared — in-process
    /// submissions keep working alongside network ones.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<ScreenService>,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        std::fs::create_dir_all(&cfg.results_dir)?;
        let registry = service.registry();
        let builder = FrontendBuilder::bind(addr, cfg.clone())?;
        let node_id = boot_node_id(builder.local_addr());
        let metrics = NetMetrics::register(&registry);
        let shed = Arc::clone(&metrics.shed);
        let routes = Arc::new(NodeRoutes {
            service,
            jobs: Mutex::new(HashMap::new()),
            cfg,
            metrics,
            node_id,
        });
        let frontend = builder.start(routes, &registry)?;
        Ok(NetServer {
            frontend,
            node_id,
            shed,
        })
    }

    /// The bound address (resolves the port for `…:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.frontend.local_addr()
    }

    /// This server's boot-random identity, as served in `/healthz`.
    pub fn node_id(&self) -> u64 {
        self.node_id
    }

    /// Connections shed with the canned `503` so far (kept under its
    /// historical name; equals [`ConnectionStats::shed`]).
    pub fn rejected_connections(&self) -> u64 {
        self.shed.get()
    }

    /// Connection gauges as of now.
    pub fn connection_stats(&self) -> ConnectionStats {
        self.frontend.connection_stats()
    }

    /// Stop the event loops and join them; every open connection is
    /// dropped. The underlying [`ScreenService`] is left running (it
    /// may have in-process users); shut it down separately.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.frontend.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

const LISTENER: Token = Token(0);
/// The read end of the loop's waker pair: poked by [`HttpFrontend::shutdown`]
/// and, in handoff mode, by the accept thread when it delivers into the
/// loop's inbox.
const WAKER: Token = Token(1);
/// Connection tokens start above the reserved ones.
const FIRST_CONN_TOKEN: usize = 2;

/// One request/header line. Long enough for any payload this API
/// carries; short enough that a line-free byte stream cannot grow a
/// connection's memory.
const MAX_LINE_BYTES: usize = 16 << 10;
/// The whole request head (request line + headers + terminator).
const MAX_HEAD_BYTES: usize = 32 << 10;
/// Header-line count cap.
const MAX_HEADERS: usize = 128;
/// Responses queued behind one connection beyond this pause its reads:
/// a client pipelining requests faster than it drains responses gets
/// TCP backpressure, not server memory growth.
const MAX_PENDING_OUT: usize = 1 << 20;
/// Result files stream to the socket in chunks of this size.
const FILE_CHUNK: usize = 64 << 10;
/// Bytes a closing connection will still drain so the final response
/// is not lost to a reset while the client is mid-write.
const DRAIN_BUDGET: usize = 256 << 10;
/// How long a closing connection lingers draining after its last
/// response flushed.
const LINGER: Duration = Duration::from_secs(1);

/// Parsed request head.
struct RequestHead {
    method: String,
    path: String,
    content_length: usize,
    keep_alive: bool,
}

/// Where a connection is in its request/response cycle.
enum Phase {
    /// Keep-alive, between requests.
    Idle,
    /// Accumulating head bytes (first byte seen, terminator not yet).
    Header,
    /// Streaming the body: `parser` is fed incrementally for routes
    /// that take JSON (`POST /jobs`); other bodies are discarded for
    /// framing. A parse error is latched so the remaining body still
    /// drains and the connection stays usable.
    Body {
        head: RequestHead,
        remaining: usize,
        /// Boxed: the parser's state dwarfs the other phases, and most
        /// connections sit in `Idle`/`Header`.
        parser: Option<Box<PushParser>>,
        parse_err: Option<WireError>,
    },
    /// Close-bound: drain (bounded) whatever the peer still sends so
    /// the final response is delivered, then close.
    Lingering { budget: usize },
}

/// One queued slice of response data.
enum OutItem {
    Bytes(Vec<u8>),
    /// A results file streamed in [`FILE_CHUNK`]s; `remaining` is the
    /// advertised `Content-Length` tail still to send.
    File {
        file: std::fs::File,
        remaining: u64,
    },
    /// Zero-byte end-of-response marker: when the writer reaches it,
    /// the oldest in-flight request's latency is recorded. Pipelined
    /// requests match FIFO because responses are queued in order.
    Mark,
}

struct Conn {
    stream: TcpStream,
    token: Token,
    buf: Vec<u8>,
    phase: Phase,
    deadline: Instant,
    out: VecDeque<OutItem>,
    /// Bytes of `out.front()` already written.
    front_off: usize,
    close_after_flush: bool,
    /// Interest currently registered with the reactor.
    interest: Interest,
    /// Header-first-byte stamps of requests awaiting a flushed
    /// response, oldest first (pipelining keeps several in flight).
    /// The `u64` is the wall-clock ns for the latency histogram; the
    /// `Instant` anchors the request-level deadline.
    req_starts: VecDeque<(u64, Instant)>,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out
            .iter()
            .map(|i| match i {
                OutItem::Bytes(b) => b.len(),
                OutItem::File { remaining, .. } => *remaining as usize,
                OutItem::Mark => 0,
            })
            .sum::<usize>()
            .saturating_sub(self.front_off)
    }

    /// The nearest of the phase deadline and the oldest unanswered
    /// request's end-to-end bound. The phase deadlines reset as the
    /// connection changes state; the request bound does not, so a
    /// response wedged behind a slow route cannot be kept alive forever
    /// by a peer that keeps the phase clocks fresh.
    fn effective_deadline(&self, request_timeout: Duration) -> Instant {
        match self.req_starts.front() {
            Some(&(_, started)) => self.deadline.min(started + request_timeout),
            None => self.deadline,
        }
    }
}

/// What to do with a connection after handling an event.
#[derive(PartialEq)]
enum Action {
    Keep,
    Close,
}

/// Everything one event loop needs: the frontend-wide shared state
/// plus this loop's labelled metric slice.
struct LoopCtx {
    shared: Arc<FrontendShared>,
    lm: LoopMetrics,
}

fn event_loop(
    feed: LoopFeed,
    waker_rx: UnixStream,
    mut reactor: Reactor,
    ctx: &LoopCtx,
    stop: &AtomicBool,
) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events: Vec<Event> = Vec::new();
    if let LoopFeed::Listener(listener) = &feed {
        if reactor
            .register(listener.as_raw_fd(), LISTENER, Interest::READ)
            .is_err()
        {
            return;
        }
    }
    if reactor
        .register(waker_rx.as_raw_fd(), WAKER, Interest::READ)
        .is_err()
    {
        return;
    }
    let request_timeout = ctx.shared.cfg.request_timeout;
    let metrics = &ctx.shared.metrics;
    // Cache of the earliest effective deadline across the table; `None`
    // forces a rescan. This keeps a wakeup's work proportional to the
    // events it carries, not the table it guards: a deadline only moves
    // for a connection an event touched (folded below as they are
    // handled), so the O(connections) expiry sweep runs when the cached
    // deadline actually comes due — never as a per-request tax on a
    // 10k-connection herd. The cache may run early (a closed or
    // re-phased connection can leave a stale earlier value); the cost
    // is one spurious sweep, never a missed eviction.
    let mut next_deadline: Option<Instant> = None;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        // Deadlines: a connection past its phase deadline (or its
        // oldest request's end-to-end bound) is closed — that is the
        // slow-loris/dead-peer/wedged-response bound.
        if next_deadline.is_none_or(|d| now >= d) {
            let expired: Vec<usize> = conns
                .iter()
                .filter(|(_, c)| now >= c.effective_deadline(request_timeout))
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                close_conn(&mut reactor, &mut conns, id, ctx);
            }
            next_deadline = conns
                .values()
                .map(|c| c.effective_deadline(request_timeout))
                .min();
        }
        // Sleep until the nearest deadline (capped for robustness).
        let timeout = next_deadline
            .map(|d| d.saturating_duration_since(now))
            .unwrap_or(Duration::from_secs(1))
            .min(Duration::from_secs(1));
        let wait_t0 = now_ns();
        let n_events = match reactor.wait(&mut events, Some(timeout)) {
            Ok(n) => n,
            Err(_) => break, // reactor fd gone — unrecoverable
        };
        let wake_ns = now_ns();
        metrics
            .reactor_wait
            .record_ns(wake_ns.saturating_sub(wait_t0));
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        let mut adopted_any = false;
        for &ev in &events {
            if ev.token == LISTENER {
                if let LoopFeed::Listener(listener) = &feed {
                    accept_all(listener, &mut reactor, &mut conns, &mut next_token, ctx);
                    adopted_any = true;
                }
                continue;
            }
            if ev.token == WAKER {
                drain_waker(&waker_rx);
                if let LoopFeed::Inbox(handoff) = &feed {
                    drain_inbox(handoff, &mut reactor, &mut conns, &mut next_token, ctx);
                    adopted_any = true;
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token.0) else {
                continue; // closed earlier this batch
            };
            let mut action = Action::Keep;
            if ev.readable || ev.hangup {
                action = do_read(conn, ctx, now);
            }
            if action == Action::Keep && (ev.writable || !conn.out.is_empty()) {
                action = do_write(conn, now, ctx);
            }
            if action == Action::Close {
                close_conn(&mut reactor, &mut conns, ev.token.0, ctx);
            } else if let Some(conn) = conns.get_mut(&ev.token.0) {
                // Re-arm interest for the connection this event
                // touched: read unless output backpressure says pause,
                // write only while output is queued. Untouched
                // connections kept their interest — no table scan.
                let want = Interest {
                    readable: conn.pending_out() <= MAX_PENDING_OUT,
                    writable: !conn.out.is_empty(),
                };
                if want != conn.interest
                    && reactor
                        .modify(conn.stream.as_raw_fd(), conn.token, want)
                        .is_ok()
                {
                    conn.interest = want;
                }
                // Fold the (possibly now earlier) deadline into the
                // cache — a fresh request start binds it to
                // `request_timeout` even under a lazier phase deadline.
                let d = conn.effective_deadline(request_timeout);
                next_deadline = Some(next_deadline.map_or(d, |nd| nd.min(d)));
            }
        }
        if adopted_any {
            // Freshly adopted connections start at `now + idle_timeout`;
            // folding that bound keeps the cache exact without a rescan.
            let d = now + ctx.shared.cfg.idle_timeout;
            next_deadline = Some(next_deadline.map_or(d, |nd| nd.min(d)));
        }
        // Empty wakeups are pure timer ticks; folding them in would
        // drown the dispatch/iteration histograms in near-zeros.
        if n_events > 0 {
            let done = now_ns();
            metrics
                .reactor_dispatch
                .record_ns(done.saturating_sub(wake_ns));
            metrics
                .reactor_iteration
                .record_ns(done.saturating_sub(wait_t0));
        }
    }
    // Per-connection teardown, not `open.set(0)`: sibling loops are
    // still counting in the same gauge.
    for (_, conn) in conns.drain() {
        let _ = reactor.deregister(conn.stream.as_raw_fd());
        ctx.shared.metrics.open.sub(1);
        ctx.lm.open.sub(1);
        ctx.shared.open_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

fn close_conn(reactor: &mut Reactor, conns: &mut HashMap<usize, Conn>, id: usize, ctx: &LoopCtx) {
    if let Some(conn) = conns.remove(&id) {
        let _ = reactor.deregister(conn.stream.as_raw_fd());
        ctx.shared.metrics.open.sub(1);
        ctx.lm.open.sub(1);
        ctx.shared.open_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Swallow whatever bytes are queued on the waker pair; each byte was
/// only ever a "wake up and look around" signal.
fn drain_waker(rx: &UnixStream) {
    let mut buf = [0u8; 64];
    while matches!((&mut &*rx).read(&mut buf), Ok(n) if n > 0) {}
}

fn accept_all(
    listener: &TcpListener,
    reactor: &mut Reactor,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
    ctx: &LoopCtx,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Transient (ECONNABORTED, fd exhaustion): the next
            // readiness event retries; never spin.
            Err(_) => return,
        };
        adopt(stream, reactor, conns, next_token, ctx);
    }
}

/// Move every stream the accept thread queued into this loop's
/// connection table.
fn drain_inbox(
    handoff: &Handoff,
    reactor: &mut Reactor,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
    ctx: &LoopCtx,
) {
    loop {
        let Some(stream) = handoff.inbox.lock().unwrap().pop_front() else {
            return;
        };
        adopt(stream, reactor, conns, next_token, ctx);
    }
}

/// Pin a freshly accepted connection to this loop: count it against
/// the frontend-wide cap, register it, insert it. From here on only
/// this loop ever touches it.
fn adopt(
    stream: TcpStream,
    reactor: &mut Reactor,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
    ctx: &LoopCtx,
) {
    ctx.shared.metrics.accepted.inc();
    ctx.lm.accepted.inc();
    // The cap is exact and frontend-wide: reserve a slot first, give it
    // back on any failure path. (A per-loop split would be cheaper but
    // REUSEPORT's flow hash is uneven enough at 10k connections that
    // one loop would breach its share early.)
    let cap = ctx.shared.cfg.max_connections.max(1);
    let prev = ctx.shared.open_conns.fetch_add(1, Ordering::AcqRel);
    if prev >= cap {
        ctx.shared.open_conns.fetch_sub(1, Ordering::AcqRel);
        // Graceful shedding: the overload answer reaches the client
        // instead of a backlog timeout.
        ctx.shared.metrics.shed.inc();
        ctx.lm.shed.inc();
        shed_503(stream);
        return;
    }
    if stream.set_nonblocking(true).is_err() {
        ctx.shared.open_conns.fetch_sub(1, Ordering::AcqRel);
        return;
    }
    let _ = stream.set_nodelay(true);
    let token = Token(*next_token);
    *next_token += 1;
    if reactor
        .register(stream.as_raw_fd(), token, Interest::READ)
        .is_err()
    {
        ctx.shared.open_conns.fetch_sub(1, Ordering::AcqRel);
        return;
    }
    ctx.shared.metrics.open.add(1);
    ctx.lm.open.add(1);
    conns.insert(
        token.0,
        Conn {
            stream,
            token,
            buf: Vec::new(),
            phase: Phase::Idle,
            deadline: Instant::now() + ctx.shared.cfg.idle_timeout,
            out: VecDeque::new(),
            front_off: 0,
            close_after_flush: false,
            interest: Interest::READ,
            req_starts: VecDeque::new(),
        },
    );
}

/// Best-effort canned `503` at the connection cap: one non-blocking
/// write (the payload is far below a socket send buffer), then drop.
/// The accept path must NEVER block on a rejected client.
fn shed_503(stream: TcpStream) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let body = Json::Obj(vec![(
        "error".into(),
        Json::str("server is saturated; retry later"),
    )])
    .encode();
    let msg = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = (&stream).write(msg.as_bytes());
    let _ = stream.shutdown(Shutdown::Write);
}

/// Drain the socket into the connection buffer and run the request
/// state machine over whatever arrived.
fn do_read(conn: &mut Conn, ctx: &LoopCtx, now: Instant) -> Action {
    let mut tmp = [0u8; 16 << 10];
    loop {
        // Backpressure: stop pulling bytes while responses are backed
        // up (interest re-arming pauses the readiness events too).
        if conn.pending_out() > MAX_PENDING_OUT {
            return Action::Keep;
        }
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                // EOF. Clean between requests; abrupt mid-request.
                return Action::Close;
            }
            Ok(n) => {
                if let Phase::Lingering { budget } = &mut conn.phase {
                    *budget = budget.saturating_sub(n);
                    if *budget == 0 {
                        return Action::Close;
                    }
                    continue;
                }
                conn.buf.extend_from_slice(&tmp[..n]);
                if process_input(conn, ctx, now) == Action::Close {
                    return Action::Close;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Action::Keep,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Action::Close,
        }
    }
}

/// Advance the request state machine over `conn.buf`. Loops so that
/// pipelined requests already buffered are answered back-to-back.
fn process_input(conn: &mut Conn, ctx: &LoopCtx, now: Instant) -> Action {
    loop {
        match &mut conn.phase {
            Phase::Idle => {
                if conn.buf.is_empty() {
                    return Action::Keep;
                }
                // Request latency (and the request-level deadline)
                // starts at the header's first byte.
                conn.req_starts.push_back((now_ns(), now));
                conn.phase = Phase::Header;
                conn.deadline = now + ctx.shared.cfg.header_timeout;
            }
            Phase::Header => {
                let Some(head_len) = find_head_end(&conn.buf) else {
                    if conn.buf.len() > MAX_HEAD_BYTES {
                        return refuse(
                            conn,
                            ctx,
                            now,
                            400,
                            format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                        );
                    }
                    return Action::Keep; // need more bytes
                };
                let head_bytes: Vec<u8> = conn.buf.drain(..head_len).collect();
                let head = match parse_head(&head_bytes) {
                    Ok(h) => h,
                    Err((status, msg)) => return refuse(conn, ctx, now, status, msg),
                };
                if head.content_length > ctx.shared.cfg.max_body_bytes {
                    return refuse(
                        conn,
                        ctx,
                        now,
                        413,
                        format!(
                            "body of {} bytes exceeds the {}-byte limit",
                            head.content_length, ctx.shared.cfg.max_body_bytes
                        ),
                    );
                }
                let parse_body = ctx.shared.routes.wants_body(&head.method, &head.path);
                conn.deadline = now + ctx.shared.cfg.body_timeout;
                conn.phase = Phase::Body {
                    remaining: head.content_length,
                    parser: parse_body.then(|| Box::new(PushParser::new())),
                    parse_err: None,
                    head,
                };
            }
            Phase::Body {
                remaining,
                parser,
                parse_err,
                ..
            } => {
                let take = (*remaining).min(conn.buf.len());
                if take > 0 {
                    // Incremental parse: the body never waits, whole,
                    // for a parse pass — and a malformed one is known
                    // bad at its first wrong byte.
                    if parse_err.is_none() {
                        if let Some(p) = parser.as_mut() {
                            if let Err(e) = p.feed(&conn.buf[..take]) {
                                *parse_err = Some(e);
                            }
                        }
                    }
                    conn.buf.drain(..take);
                    *remaining -= take;
                }
                if *remaining > 0 {
                    return Action::Keep; // need more bytes
                }
                let (head, parser, parse_err) =
                    match std::mem::replace(&mut conn.phase, Phase::Idle) {
                        Phase::Body {
                            head,
                            parser,
                            parse_err,
                            ..
                        } => (head, parser, parse_err),
                        _ => unreachable!("we are in Body"),
                    };
                let body = parser.map(|p| match parse_err {
                    Some(e) => Err(e),
                    None => p.finish(),
                });
                if let Some(Err(WireError::Syntax { .. })) = &body {
                    ctx.shared.metrics.parse_errors.inc();
                }
                // Panic isolation: a panicking route must cost one
                // response, never the whole event loop.
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    ctx.shared.routes.route(&head.method, &head.path, body)
                }))
                .unwrap_or_else(|_| Response::error(500, "internal error"));
                ctx.shared.metrics.requests.inc();
                ctx.lm.requests.inc();
                queue_response(conn, response, head.keep_alive, now, ctx);
                if conn.close_after_flush {
                    conn.buf.clear();
                    conn.phase = Phase::Lingering {
                        budget: DRAIN_BUDGET,
                    };
                    return Action::Keep;
                }
                // Keep-alive: loop — pipelined bytes may already hold
                // the next request.
                if conn.buf.is_empty() {
                    conn.deadline = now
                        + ctx
                            .shared
                            .cfg
                            .idle_timeout
                            .max(ctx.shared.cfg.write_timeout);
                    return Action::Keep;
                }
            }
            Phase::Lingering { budget } => {
                *budget = budget.saturating_sub(conn.buf.len());
                conn.buf.clear();
                if *budget == 0 {
                    return Action::Close;
                }
                return Action::Keep;
            }
        }
    }
}

/// Queue a protocol-level refusal and mark the connection close-bound
/// (its framing can no longer be trusted).
fn refuse(conn: &mut Conn, ctx: &LoopCtx, now: Instant, status: u16, message: String) -> Action {
    ctx.shared.metrics.parse_errors.inc();
    queue_response(conn, Response::error(status, message), false, now, ctx);
    conn.buf.clear();
    conn.phase = Phase::Lingering {
        budget: DRAIN_BUDGET,
    };
    Action::Keep
}

/// Index just past the blank line ending the request head, if present.
/// Lines are `\n`-separated, tolerating the `\r` HTTP requires.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(b'\n'), _) => return Some(i + 2),
                (Some(b'\r'), Some(b'\n')) => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parse the request line + headers. `Err(status, message)` is
/// answered as-is (and closes the connection).
fn parse_head(head: &[u8]) -> Result<RequestHead, (u16, String)> {
    let mut lines = head.split(|&b| b == b'\n').map(|l| {
        let l = l.strip_suffix(b"\r").unwrap_or(l);
        if l.len() > MAX_LINE_BYTES {
            return Err((400, format!("line exceeds {MAX_LINE_BYTES} bytes")));
        }
        std::str::from_utf8(l).map_err(|_| (400, "non-UTF-8 line".to_string()))
    });
    let line = lines.next().unwrap_or(Ok(""))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or((400, "empty request line".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or((400, "request line without a path".to_string()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err((505, format!("unsupported protocol '{version}'")));
    }

    let mut content_length = 0usize;
    let mut connection = String::new();
    let mut headers_seen = 0usize;
    for header in lines {
        let header = header?;
        if header.is_empty() {
            break; // the terminator line
        }
        headers_seen += 1;
        if headers_seen > MAX_HEADERS {
            return Err((400, format!("more than {MAX_HEADERS} header lines")));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, format!("bad content-length '{}'", value.trim())))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && !value.trim().eq_ignore_ascii_case("identity")
            {
                return Err((501, "chunked bodies are not supported".to_string()));
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_ascii_lowercase();
            }
        }
    }
    // HTTP/1.1 defaults to keep-alive, 1.0 to close.
    let keep_alive = if version == "HTTP/1.0" {
        connection == "keep-alive"
    } else {
        connection != "close"
    };
    Ok(RequestHead {
        method,
        path,
        content_length,
        keep_alive,
    })
}

/// Serialize a response onto the connection's output queue and attempt
/// an optimistic flush (most responses fit the socket buffer whole, so
/// the common case never waits for a writability event).
fn queue_response(
    conn: &mut Conn,
    response: Response,
    keep_alive: bool,
    now: Instant,
    ctx: &LoopCtx,
) {
    let Response {
        status,
        content_type,
        body,
    } = response;
    let len = match &body {
        Body::Text(t) => t.len() as u64,
        Body::File(_, len) => *len,
    };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {len}\r\nConnection: {}\r\n\r\n",
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut first = head.into_bytes();
    match body {
        Body::Text(t) => first.extend_from_slice(t.as_bytes()),
        Body::File(file, remaining) => {
            conn.out.push_back(OutItem::Bytes(first));
            conn.out.push_back(OutItem::File { file, remaining });
            conn.out.push_back(OutItem::Mark);
            conn.close_after_flush |= !keep_alive;
            conn.deadline = now + ctx.shared.cfg.write_timeout;
            let _ = do_write(conn, now, ctx);
            return;
        }
    }
    conn.out.push_back(OutItem::Bytes(first));
    conn.out.push_back(OutItem::Mark);
    conn.close_after_flush |= !keep_alive;
    conn.deadline = now + ctx.shared.cfg.write_timeout;
    let _ = do_write(conn, now, ctx);
}

/// Push queued output to the socket until it blocks or drains.
fn do_write(conn: &mut Conn, now: Instant, ctx: &LoopCtx) -> Action {
    loop {
        let Some(front) = conn.out.front_mut() else {
            // Fully flushed.
            if conn.close_after_flush {
                // Half-close so the last response's bytes are
                // delivered, then linger draining (bounded) until the
                // peer hangs up — closing with unread input would RST
                // the response away.
                let _ = conn.stream.shutdown(Shutdown::Write);
                if !matches!(conn.phase, Phase::Lingering { .. }) {
                    conn.phase = Phase::Lingering {
                        budget: DRAIN_BUDGET,
                    };
                }
                conn.deadline = now + LINGER;
            }
            return Action::Keep;
        };
        match front {
            OutItem::Bytes(bytes) => {
                while conn.front_off < bytes.len() {
                    match conn.stream.write(&bytes[conn.front_off..]) {
                        Ok(0) => return Action::Close,
                        Ok(n) => conn.front_off += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return Action::Keep;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => return Action::Close,
                    }
                }
                conn.front_off = 0;
                conn.out.pop_front();
            }
            OutItem::File { file, remaining } => {
                if *remaining == 0 {
                    conn.out.pop_front();
                    continue;
                }
                let want = (*remaining).min(FILE_CHUNK as u64) as usize;
                let mut chunk = vec![0u8; want];
                match file.read(&mut chunk) {
                    // Truncated under us: the advertised Content-Length
                    // cannot be met — the framing is broken, close.
                    Ok(0) => return Action::Close,
                    Ok(n) => {
                        chunk.truncate(n);
                        *remaining -= n as u64;
                        // The chunk is the file's next bytes: it goes
                        // *in front of* the file item it came from.
                        conn.out.push_front(OutItem::Bytes(chunk));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Action::Close,
                }
            }
            OutItem::Mark => {
                // Everything queued for this response hit the socket:
                // the oldest in-flight request is answered.
                conn.out.pop_front();
                if let Some((t0, _)) = conn.req_starts.pop_front() {
                    ctx.shared
                        .metrics
                        .request_seconds
                        .record_ns(now_ns().saturating_sub(t0));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// A response body: in-memory text, or a file streamed straight from
/// disk (results can be large — they must not be buffered whole).
pub enum Body {
    Text(String),
    /// The file plus the length to advertise; the copy is capped at
    /// that length so a sink appending mid-response cannot overrun the
    /// declared `Content-Length`.
    File(std::fs::File, u64),
}

/// One HTTP response as an [`HttpRoutes`] router produces it.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Body,
}

impl Response {
    /// A JSON body with the given status.
    pub fn json(status: u16, v: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: Body::Text(v.encode()),
        }
    }

    /// The standard `{"error": …}` envelope.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(
            status,
            &Json::Obj(vec![("error".into(), Json::str(message.into()))]),
        )
    }

    /// A [`WireError`] mapped to its HTTP status.
    pub fn wire_error(e: &WireError) -> Response {
        Response::error(e.http_status(), e.to_string())
    }

    /// An arbitrary body under an explicit content type.
    pub fn text(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            body: Body::Text(body),
        }
    }
}

impl HttpRoutes for NodeRoutes {
    fn wants_body(&self, method: &str, path: &str) -> bool {
        let path = path.split('?').next().unwrap_or("");
        method == "POST" && path.split('/').filter(|s| !s.is_empty()).eq(["jobs"])
    }

    fn route(
        &self,
        method: &str,
        raw_path: &str,
        body: Option<Result<Json, WireError>>,
    ) -> Response {
        let path = raw_path.split('?').next().unwrap_or("");
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (method, segments.as_slice()) {
            ("GET", ["healthz"]) => {
                // Still a plain 200 for old clients that only check the
                // status; the body now carries the boot-random node id (a
                // restart behind the same address changes it) and version.
                Response::json(
                    200,
                    &Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("node".into(), Json::str(format!("{:016x}", self.node_id))),
                        ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
                    ]),
                )
            }
            ("GET", ["stats"]) => {
                // One ordered snapshot feeds every connection field, so a
                // scrape can never see `open > accepted` torn views.
                let conns = self.metrics.snapshot();
                let mut v = wire::stats_to_json(&self.service.stats());
                if let Json::Obj(members) = &mut v {
                    members.push(("rejected_connections".into(), Json::u64(conns.shed)));
                    members.push((
                        "queue_capacity".into(),
                        Json::usize(self.service.queue_capacity()),
                    ));
                    members.push((
                        "connections".into(),
                        Json::Obj(vec![
                            ("open".into(), Json::u64(conns.open)),
                            ("accepted".into(), Json::u64(conns.accepted)),
                            ("shed".into(), Json::u64(conns.shed)),
                            ("parse_errors".into(), Json::u64(conns.parse_errors)),
                            ("requests".into(), Json::u64(conns.requests)),
                        ]),
                    ));
                }
                Response::json(200, &v)
            }
            ("GET", ["metrics"]) => {
                // Prometheus text exposition, rendered from the same
                // registry `/stats` reads — one source of truth.
                Response::text(
                    200,
                    "text/plain; version=0.0.4",
                    self.metrics.registry.render_prometheus(),
                )
            }
            ("POST", ["jobs"]) => self.submit_job(body),
            ("GET", ["jobs", id]) => self.with_job(id, job_status),
            ("GET", ["jobs", id, "results"]) => self.with_job(id, job_results),
            ("DELETE", ["jobs", id]) => self.with_job(id, cancel_job),
            (_, ["jobs", ..]) | (_, ["healthz"]) | (_, ["stats"]) | (_, ["metrics"]) => {
                Response::error(405, format!("method {method} not allowed on {path}"))
            }
            _ => Response::error(404, format!("no route for {path}")),
        }
    }
}

impl NodeRoutes {
    fn submit_job(&self, body: Option<Result<Json, WireError>>) -> Response {
        let parsed = match body {
            Some(Ok(v)) => v,
            Some(Err(e)) => return Response::wire_error(&e),
            None => return Response::error(400, "POST /jobs requires a JSON body"),
        };
        let sub = match wire::submission_from_json(&parsed) {
            Ok(s) => s,
            Err(e) => return Response::wire_error(&e),
        };
        // Path sources make *this* process read the named file; on an
        // unauthenticated socket that is a filesystem probe. Refuse before
        // any I/O happens unless the operator opted in.
        if !self.cfg.allow_path_sources && sub.uses_path_sources() {
            return Response::error(
                403,
                "server-side 'path' sources are disabled on this server; \
                 ship the PDBQT text inline instead",
            );
        }
        let receptor = match sub.load_receptor() {
            Ok(r) => r,
            Err(e) => return Response::wire_error(&e),
        };
        let file_no = NEXT_FILE.fetch_add(1, Ordering::Relaxed);
        let results = self.cfg.results_dir.join(format!("job-{file_no}.jsonl"));
        let name = sub.campaign.name.clone();
        let spec = JobSpec {
            receptor,
            ligands: sub.ligands,
            slice: sub.slice,
            priority: sub.priority,
            jsonl: Some(results.clone()),
            ..JobSpec::from(sub.campaign)
        };
        // try_submit, not submit: a full queue must become backpressure on
        // the wire (503 + retry), never the event loop blocked on a
        // condvar while every other connection starves.
        match self.service.try_submit(spec) {
            Ok(handle) => {
                let id = handle.id();
                let evicted = {
                    let mut jobs = self.jobs.lock().unwrap();
                    jobs.insert(
                        id,
                        NetJob {
                            handle,
                            name,
                            results,
                        },
                    );
                    evict_terminal_jobs(&mut jobs, self.cfg.max_retained_jobs)
                };
                for path in evicted {
                    std::fs::remove_file(path).ok();
                }
                Response::json(
                    201,
                    &Json::Obj(vec![
                        ("id".into(), Json::u64(id)),
                        (
                            "state".into(),
                            Json::str(wire::state_name(JobState::Queued)),
                        ),
                        ("results".into(), Json::str(format!("/jobs/{id}/results"))),
                    ]),
                )
            }
            Err(e @ (SubmitError::Full | SubmitError::Shutdown)) => {
                Response::error(503, e.to_string())
            }
        }
    }

    /// Look a job up and run `f` on a clone of its tracking entry, or
    /// 404. The clone means the global map lock is held only for the
    /// lookup — never across `f` (which may open a large results file).
    fn with_job(&self, id: &str, f: fn(&NetJob, JobId) -> Response) -> Response {
        let Ok(id) = id.parse::<JobId>() else {
            return Response::error(404, format!("job id '{id}' is not a number"));
        };
        let job = {
            let jobs = self.jobs.lock().unwrap();
            jobs.get(&id).map(|j| NetJob {
                handle: j.handle.clone(),
                name: j.name.clone(),
                results: j.results.clone(),
            })
        };
        match job {
            Some(job) => f(&job, id),
            None => Response::error(404, format!("no job {id}")),
        }
    }
}

/// Drop the oldest *terminal* jobs beyond `max_retained` so a
/// long-running server does not grow per submission forever; returns
/// their result-file paths for deletion outside the lock. Running and
/// queued jobs are never touched, so the map can exceed the cap while
/// that many jobs are genuinely in flight.
fn evict_terminal_jobs(jobs: &mut HashMap<JobId, NetJob>, max_retained: usize) -> Vec<PathBuf> {
    let mut terminal: Vec<JobId> = jobs
        .iter()
        .filter(|(_, j)| j.handle.try_outcome().is_some())
        .map(|(&id, _)| id)
        .collect();
    // The cap applies to *terminal* jobs alone (as NetConfig documents):
    // in-flight jobs must neither be evicted nor crowd finished ones
    // out of their retention window.
    let excess = terminal.len().saturating_sub(max_retained.max(1));
    if excess == 0 {
        return Vec::new();
    }
    terminal.sort_unstable();
    terminal
        .into_iter()
        .take(excess)
        .filter_map(|id| jobs.remove(&id).map(|j| j.results))
        .collect()
}

fn job_status(job: &NetJob, id: JobId) -> Response {
    let outcome = job.handle.try_outcome();
    let v = wire::status_to_json(
        id,
        &job.name,
        job.handle.state(),
        job.handle.ligands_done(),
        job.handle.chunks_done(),
        &job.handle.stage_timings(),
        outcome.as_ref(),
    );
    Response::json(200, &v)
}

fn job_results(job: &NetJob, _id: JobId) -> Response {
    // The sink appends + flushes at chunk boundaries, so serving the
    // file mid-run streams every completed chunk — same contract as
    // tailing the JSONL locally. Streamed from disk in chunks, never
    // buffered whole: results files grow with the campaign. The length
    // is snapshotted up front so a chunk landing mid-response cannot
    // overrun the declared Content-Length.
    match std::fs::File::open(&job.results) {
        Ok(file) => match file.metadata() {
            Ok(meta) => Response {
                status: 200,
                content_type: "application/x-ndjson",
                body: Body::File(file, meta.len()),
            },
            Err(e) => Response::error(500, format!("results file: {e}")),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Response::text(200, "application/x-ndjson", String::new())
        }
        Err(e) => Response::error(500, format!("results file: {e}")),
    }
}

fn cancel_job(job: &NetJob, id: JobId) -> Response {
    job.handle.cancel();
    let v = wire::status_to_json(
        id,
        &job.name,
        job.handle.state(),
        job.handle.ligands_done(),
        job.handle.chunks_done(),
        &job.handle.stage_timings(),
        job.handle.try_outcome().as_ref(),
    );
    Response::json(202, &v)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// The matching blocking HTTP client. [`Client`](client::Client) keeps its connection
/// open across requests (HTTP/1.1 keep-alive), so a poll loop pays one
/// TCP handshake total instead of one per poll; the free functions are
/// one-shot conveniences over it. Used by the CLI (`mudock submit`,
/// `mudock poll`), the loopback bench mode, and the integration tests.
pub mod client {
    use super::*;
    use crate::ingest::LigandSource;
    use crate::job::{LigandSlice, Priority};
    use crate::wire::{JobStatus, ReceptorSource};
    use mudock_core::CampaignSpec;
    use std::io::{BufRead, BufReader};

    /// A client-side failure.
    ///
    /// Connect-refused and timeout are split out of the generic I/O
    /// arm because a coordinator's dead-node detection treats them
    /// differently: refused means nothing is listening (node down or
    /// restarting — act now), a timeout means *something* answered the
    /// handshake but stalled (overloaded or wedged — back off first).
    #[derive(Debug)]
    pub enum ClientError {
        /// Nothing is listening at the address.
        ConnectRefused(std::io::Error),
        /// A connect/read/write deadline expired.
        Timeout(std::io::Error),
        /// Any other connect/read/write failure.
        Io(std::io::Error),
        /// The server answered with a non-2xx status.
        Http { status: u16, body: String },
        /// The response body did not decode.
        Wire(WireError),
    }

    impl std::fmt::Display for ClientError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                ClientError::ConnectRefused(e) => write!(f, "connection failed (refused): {e}"),
                ClientError::Timeout(e) => write!(f, "connection failed (timed out): {e}"),
                ClientError::Io(e) => write!(f, "connection failed: {e}"),
                ClientError::Http { status, body } => {
                    // Surface the server's JSON error message when present.
                    let detail = wire::parse(body)
                        .ok()
                        .and_then(|v| match v.get("error") {
                            Some(Json::Str(s)) => Some(s.clone()),
                            _ => None,
                        })
                        .unwrap_or_else(|| body.clone());
                    write!(f, "HTTP {status}: {detail}")
                }
                ClientError::Wire(e) => write!(f, "bad response body: {e}"),
            }
        }
    }

    impl std::error::Error for ClientError {}

    impl From<std::io::Error> for ClientError {
        fn from(e: std::io::Error) -> Self {
            use std::io::ErrorKind;
            match e.kind() {
                ErrorKind::ConnectionRefused => ClientError::ConnectRefused(e),
                // Blocking sockets with SO_RCVTIMEO/SO_SNDTIMEO report
                // an expired deadline as WouldBlock on Unix (TimedOut
                // on Windows) — both are "the peer stalled".
                ErrorKind::TimedOut | ErrorKind::WouldBlock => ClientError::Timeout(e),
                _ => ClientError::Io(e),
            }
        }
    }

    impl From<WireError> for ClientError {
        fn from(e: WireError) -> Self {
            ClientError::Wire(e)
        }
    }

    /// A raw HTTP exchange.
    #[derive(Clone, Debug)]
    pub struct HttpResponse {
        pub status: u16,
        pub body: String,
    }

    impl HttpResponse {
        /// Error on non-2xx, pass through otherwise.
        pub fn ok(self) -> Result<HttpResponse, ClientError> {
            if (200..300).contains(&self.status) {
                Ok(self)
            } else {
                Err(ClientError::Http {
                    status: self.status,
                    body: self.body,
                })
            }
        }
    }

    /// A keep-alive HTTP client bound to one server address.
    ///
    /// The connection is opened lazily, reused across requests, and
    /// dropped when the server answers `Connection: close` (or on any
    /// I/O error). A request that fails on a *reused* connection is
    /// retried once on a fresh one: the usual cause is the server's
    /// idle timeout racing the request, and the retry makes that race
    /// invisible to callers.
    pub struct Client {
        addr: String,
        conn: Option<BufReader<TcpStream>>,
    }

    impl Client {
        pub fn new(addr: impl Into<String>) -> Client {
            Client {
                addr: addr.into(),
                conn: None,
            }
        }

        fn connect(addr: &str) -> Result<BufReader<TcpStream>, ClientError> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_write_timeout(Some(Duration::from_secs(30)))?;
            let _ = stream.set_nodelay(true);
            Ok(BufReader::new(stream))
        }

        /// One blocking request; reuses the held connection when
        /// possible.
        pub fn request(
            &mut self,
            method: &str,
            path: &str,
            body: Option<&str>,
        ) -> Result<HttpResponse, ClientError> {
            let reused = self.conn.is_some();
            if self.conn.is_none() {
                self.conn = Some(Self::connect(&self.addr)?);
            }
            let conn = self.conn.as_mut().expect("just ensured");
            match Self::exchange(conn, &self.addr, method, path, body) {
                Ok((resp, keep)) => {
                    if !keep {
                        self.conn = None;
                    }
                    Ok(resp)
                }
                Err(e) => {
                    self.conn = None;
                    if reused {
                        // Stale keep-alive connection (server idle
                        // timeout won the race): retry once, fresh.
                        // Timeouts retry too — the old socket may have
                        // died under us; refused never does, a fresh
                        // connect would have failed identically.
                        if let ClientError::Io(_) | ClientError::Timeout(_) = e {
                            let mut fresh = Self::connect(&self.addr)?;
                            let (resp, keep) =
                                Self::exchange(&mut fresh, &self.addr, method, path, body)?;
                            if keep {
                                self.conn = Some(fresh);
                            }
                            return Ok(resp);
                        }
                    }
                    Err(e)
                }
            }
        }

        fn exchange(
            reader: &mut BufReader<TcpStream>,
            addr: &str,
            method: &str,
            path: &str,
            body: Option<&str>,
        ) -> Result<(HttpResponse, bool), ClientError> {
            let body = body.unwrap_or("");
            let head = format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                body.len(),
            );
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;

            let mut status_line = String::new();
            if reader.read_line(&mut status_line)? == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before the status line",
                )));
            }
            let status: u16 = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad status line '{}'", status_line.trim_end()),
                    ))
                })?;
            let mut content_length: Option<usize> = None;
            let mut close = false;
            loop {
                let mut header = String::new();
                let n = reader.read_line(&mut header)?;
                let header = header.trim_end();
                if n == 0 || header.is_empty() {
                    break;
                }
                if let Some((name, value)) = header.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().ok();
                    } else if name.eq_ignore_ascii_case("connection") {
                        close = value.trim().eq_ignore_ascii_case("close");
                    }
                }
            }
            let body = match content_length {
                Some(len) => {
                    let mut buf = vec![0u8; len];
                    reader.read_exact(&mut buf)?;
                    String::from_utf8_lossy(&buf).into_owned()
                }
                None => {
                    // No framing: the exchange only ends at EOF, so
                    // the connection cannot be reused.
                    close = true;
                    let mut buf = String::new();
                    reader.read_to_string(&mut buf)?;
                    buf
                }
            };
            Ok((HttpResponse { status, body }, !close))
        }

        /// `POST /jobs`: submit a campaign; returns the assigned job id.
        pub fn submit(
            &mut self,
            campaign: &CampaignSpec,
            receptor: &ReceptorSource,
            ligands: &LigandSource,
            priority: Priority,
        ) -> Result<JobId, ClientError> {
            self.submit_sliced(campaign, receptor, ligands, None, priority)
        }

        /// [`Client::submit`] with an optional sub-job window — the
        /// coordinator's scatter path. The server docks only
        /// `slice.take` ligands starting at global index `slice.skip`,
        /// seeding each by its global index, so the window's results
        /// are bit-identical to the same ligands of an unsliced run.
        pub fn submit_sliced(
            &mut self,
            campaign: &CampaignSpec,
            receptor: &ReceptorSource,
            ligands: &LigandSource,
            slice: Option<LigandSlice>,
            priority: Priority,
        ) -> Result<JobId, ClientError> {
            let body =
                wire::sliced_submission_to_json(campaign, receptor, ligands, slice, priority)?
                    .encode();
            let resp = self.request("POST", "/jobs", Some(&body))?.ok()?;
            let v = wire::parse(&resp.body)?;
            match v.get("id") {
                Some(Json::Num(n)) => n.as_u64().ok_or_else(|| {
                    ClientError::Wire(WireError::invalid("id", "expected an integer"))
                }),
                _ => Err(ClientError::Wire(WireError::Missing { field: "id" })),
            }
        }

        /// `GET /jobs/{id}`: one status snapshot.
        pub fn poll(&mut self, id: JobId) -> Result<JobStatus, ClientError> {
            let resp = self.request("GET", &format!("/jobs/{id}"), None)?.ok()?;
            Ok(wire::status_from_json(&wire::parse(&resp.body)?)?)
        }

        /// Poll until the job reaches a terminal state — over one
        /// connection, not one per poll.
        pub fn wait(&mut self, id: JobId, interval: Duration) -> Result<JobStatus, ClientError> {
            loop {
                let status = self.poll(id)?;
                if status.is_terminal() {
                    return Ok(status);
                }
                std::thread::sleep(interval);
            }
        }

        /// `GET /jobs/{id}/results`: the JSONL produced so far.
        pub fn results(&mut self, id: JobId) -> Result<String, ClientError> {
            Ok(self
                .request("GET", &format!("/jobs/{id}/results"), None)?
                .ok()?
                .body)
        }

        /// `DELETE /jobs/{id}`: request cancellation.
        pub fn cancel(&mut self, id: JobId) -> Result<JobStatus, ClientError> {
            let resp = self.request("DELETE", &format!("/jobs/{id}"), None)?.ok()?;
            Ok(wire::status_from_json(&wire::parse(&resp.body)?)?)
        }

        /// `GET /healthz`, as a boolean.
        pub fn healthy(&mut self) -> bool {
            matches!(self.request("GET", "/healthz", None), Ok(r) if r.status == 200)
        }

        /// `GET /healthz`, decoded. Tolerates pre-node-id servers: a
        /// plain `200` with no recognizable body still reports healthy,
        /// just without an identity.
        pub fn health(&mut self) -> Result<NodeHealth, ClientError> {
            let resp = self.request("GET", "/healthz", None)?.ok()?;
            let v = wire::parse(&resp.body).unwrap_or(Json::Null);
            let node = match v.get("node") {
                Some(Json::Str(s)) => u64::from_str_radix(s, 16).ok(),
                _ => None,
            };
            let version = match v.get("version") {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            };
            Ok(NodeHealth { node, version })
        }
    }

    /// A decoded `/healthz` body: the node's boot-random identity and
    /// crate version (both `None` when talking to an old server).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct NodeHealth {
        pub node: Option<u64>,
        pub version: Option<String>,
    }

    /// One-shot request against `addr` (e.g. `"127.0.0.1:7979"`).
    pub fn request(
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, ClientError> {
        Client::new(addr).request(method, path, body)
    }

    /// `POST /jobs`: submit a campaign; returns the assigned job id.
    pub fn submit(
        addr: &str,
        campaign: &CampaignSpec,
        receptor: &ReceptorSource,
        ligands: &LigandSource,
        priority: Priority,
    ) -> Result<JobId, ClientError> {
        Client::new(addr).submit(campaign, receptor, ligands, priority)
    }

    /// `GET /jobs/{id}`: one status snapshot.
    pub fn poll(addr: &str, id: JobId) -> Result<JobStatus, ClientError> {
        Client::new(addr).poll(id)
    }

    /// Poll until the job reaches a terminal state (one keep-alive
    /// connection for the whole loop).
    pub fn wait(addr: &str, id: JobId, interval: Duration) -> Result<JobStatus, ClientError> {
        Client::new(addr).wait(id, interval)
    }

    /// `GET /jobs/{id}/results`: the JSONL produced so far.
    pub fn results(addr: &str, id: JobId) -> Result<String, ClientError> {
        Client::new(addr).results(id)
    }

    /// `DELETE /jobs/{id}`: request cancellation.
    pub fn cancel(addr: &str, id: JobId) -> Result<JobStatus, ClientError> {
        Client::new(addr).cancel(id)
    }

    /// `GET /healthz`, as a boolean.
    pub fn healthy(addr: &str) -> bool {
        Client::new(addr).healthy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use std::io::{BufRead, BufReader};

    fn tiny_service() -> Arc<ScreenService> {
        Arc::new(ScreenService::start(ServeConfig {
            total_threads: 1,
            job_slots: 1,
            queue_capacity: 2,
            cache_capacity: 1,
            ..ServeConfig::default()
        }))
    }

    fn bind(service: &Arc<ScreenService>) -> NetServer {
        NetServer::bind("127.0.0.1:0", Arc::clone(service), NetConfig::default())
            .expect("loopback bind")
    }

    /// Read one HTTP response (status + Content-Length framed body)
    /// off a raw reader, leaving the stream positioned at the next
    /// pipelined response.
    fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut len = 0usize;
        loop {
            let mut header = String::new();
            let n = reader.read_line(&mut header).unwrap();
            let header = header.trim_end();
            if n == 0 || header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    len = value.trim().parse().unwrap();
                }
            }
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8_lossy(&body).into_owned())
    }

    #[test]
    fn healthz_and_stats_respond() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        assert!(client::healthy(&addr));
        let resp = client::request(&addr, "GET", "/stats", None)
            .unwrap()
            .ok()
            .unwrap();
        let v = wire::parse(&resp.body).unwrap();
        assert!(v.get("cache").is_some());
        assert!(v.get("queue_capacity").is_some());
        // Sharding and spill telemetry is part of the stats contract.
        assert_eq!(v.get("shard_count"), Some(&wire::Json::usize(0)));
        assert!(matches!(v.get("shards"), Some(wire::Json::Arr(a)) if a.is_empty()));
        let cache = v.get("cache").unwrap();
        assert!(cache.get("spills").is_some());
        assert!(cache.get("reloads").is_some());
        assert!(cache.get("spilled").is_some());
        // Connection gauges are part of the stats contract too.
        let conns = v.get("connections").expect("connections gauges");
        for gauge in ["open", "accepted", "shed", "parse_errors", "requests"] {
            assert!(conns.get(gauge).is_some(), "missing gauge {gauge}");
        }
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn unknown_routes_and_methods_are_typed_errors() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        assert_eq!(
            client::request(&addr, "GET", "/nope", None).unwrap().status,
            404
        );
        assert_eq!(
            client::request(&addr, "DELETE", "/healthz", None)
                .unwrap()
                .status,
            405
        );
        assert_eq!(
            client::request(&addr, "GET", "/jobs/999", None)
                .unwrap()
                .status,
            404
        );
        assert_eq!(
            client::request(&addr, "GET", "/jobs/not-a-number", None)
                .unwrap()
                .status,
            404
        );
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some("{not json"))
                .unwrap()
                .status,
            400
        );
        // Structurally fine, semantically invalid campaign → 422.
        let body = r#"{"campaign": {"name": "x", "top_k": 0},
                       "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                       "ligands": {"synth": {"seed": 1, "count": 2}}}"#;
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some(body))
                .unwrap()
                .status,
            422
        );
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn path_sources_are_refused_unless_enabled() {
        let body = r#"{"campaign": {"name": "p"},
                       "receptor": {"path": "/nonexistent/receptor.pdbqt"},
                       "ligands": {"synth": {"seed": 1, "count": 2}}}"#;
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        // Default policy: 403 before any filesystem access.
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some(body))
                .unwrap()
                .status,
            403
        );
        server.shutdown();

        // Opted in: the path is now attempted — and since it does not
        // exist, the failure is the loader's 400, not the policy 403.
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                allow_path_sources: true,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some(body))
                .unwrap()
                .status,
            400
        );
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn eviction_drops_only_the_oldest_terminal_jobs() {
        use crate::job::{JobOutcome, JobShared};
        fn job(id: u64, terminal: bool) -> NetJob {
            let shared = JobShared::new(id);
            if terminal {
                shared.finish(JobOutcome {
                    id,
                    name: String::new(),
                    state: JobState::Completed,
                    ligands_done: 0,
                    chunks_done: 0,
                    replayed_chunks: 0,
                    grid_cache_hit: false,
                    stopped_early: false,
                    top: Vec::new(),
                    elapsed: Duration::ZERO,
                    error: None,
                });
            }
            NetJob {
                handle: JobHandle { shared },
                name: format!("j{id}"),
                results: PathBuf::from(format!("/nonexistent/none-{id}.jsonl")),
            }
        }
        let mut jobs = HashMap::new();
        for id in 1..=4u64 {
            jobs.insert(id, job(id, id != 3)); // job 3 is still running
        }
        // Three *terminal* jobs (1, 2, 4) against a cap of 2 → the
        // oldest terminal job (1) goes. The running job neither counts
        // toward the cap nor gets evicted, even though it is older
        // than 4.
        let evicted = evict_terminal_jobs(&mut jobs, 2);
        assert_eq!(evicted.len(), 1);
        assert!(jobs.contains_key(&3), "running jobs are never evicted");
        assert!(jobs.contains_key(&2) && jobs.contains_key(&4));
        assert!(!jobs.contains_key(&1));
        // Exactly at the cap now: nothing further to do.
        assert!(evict_terminal_jobs(&mut jobs, 2).is_empty());
        // A sea of running jobs cannot push terminal ones out early.
        for id in 10..=30u64 {
            jobs.insert(id, job(id, false));
        }
        assert!(evict_terminal_jobs(&mut jobs, 2).is_empty());
    }

    #[test]
    fn overlong_header_lines_are_refused_not_buffered() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        // A request line far beyond the head budget: the server must
        // answer 400 (it read a bounded prefix), not buffer it all.
        let mut conn = TcpStream::connect(&addr).unwrap();
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 << 10));
        conn.write_all(huge.as_bytes()).unwrap();
        conn.flush().unwrap();
        let mut resp = String::new();
        let mut reader = BufReader::new(conn);
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("400"), "got: {resp}");
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let service = tiny_service();
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                max_body_bytes: 64,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let body = "x".repeat(256);
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some(&body))
                .unwrap()
                .status,
            413
        );
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        let mut c = client::Client::new(&addr);
        for _ in 0..5 {
            assert!(c.healthy());
        }
        let resp = c.request("GET", "/stats", None).unwrap().ok().unwrap();
        assert!(resp.body.contains("connections"));
        // All six requests rode one accepted connection.
        let stats = server.connection_stats();
        assert_eq!(stats.accepted, 1, "handshake per request: {stats:?}");
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.open, 1);
        drop(c);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        let mut conn = TcpStream::connect(&addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Two requests in one write: both must be answered, in order,
        // on the same connection.
        conn.write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /stats HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .unwrap();
        let mut reader = BufReader::new(conn);
        let (status1, body1) = read_response(&mut reader);
        let (status2, body2) = read_response(&mut reader);
        assert_eq!(status1, 200);
        assert!(body1.contains("ok"), "healthz first: {body1}");
        assert_eq!(status2, 200);
        assert!(body2.contains("cache"), "stats second: {body2}");
        assert_eq!(server.connection_stats().accepted, 1);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn slow_header_writers_are_deadlined() {
        let service = tiny_service();
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                header_timeout: Duration::from_millis(150),
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut conn = TcpStream::connect(&addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // A slow-loris writer: partial headers, then silence. The
        // header deadline must close the connection.
        conn.write_all(b"GET /healthz HTTP/1.1\r\nX-Drip: ")
            .unwrap();
        let t0 = Instant::now();
        let mut buf = [0u8; 64];
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "expected EOF, got {n} bytes");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "deadline did not fire promptly"
        );
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn connection_cap_sheds_with_a_503() {
        let service = tiny_service();
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                max_connections: 1,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        // Occupy the only slot (a completed request guarantees the
        // connection is registered, not just in the backlog).
        let mut holder = client::Client::new(&addr);
        assert!(holder.healthy());
        // The next connection is accepted, told 503, and closed.
        let resp = client::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 503);
        let stats = server.connection_stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(server.rejected_connections(), 1);
        // The held connection is unaffected.
        assert!(holder.healthy());
        drop(holder);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn body_parse_errors_keep_the_connection_alive() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        let mut c = client::Client::new(&addr);
        // Bad JSON poisons the request, not the connection: the body
        // framing was intact, so the next request still works.
        let resp = c.request("POST", "/jobs", Some("{broken")).unwrap();
        assert_eq!(resp.status, 400);
        assert!(c.healthy());
        let stats = server.connection_stats();
        assert_eq!(stats.accepted, 1);
        assert!(stats.parse_errors >= 1);
        drop(c);
        server.shutdown();
        service.shutdown();
    }

    /// Full cycle (submit → wait → results → stats → metrics): the
    /// status reports a per-stage breakdown, `/metrics` is well-formed
    /// Prometheus text, and its counters agree with `/stats`.
    #[test]
    fn metrics_expose_prometheus_text_that_agrees_with_stats() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        let mut c = client::Client::new(&addr);
        let body = r#"{"campaign": {"name": "obs", "population": 6, "generations": 1,
                                    "search_radius": 3.0, "top_k": 2},
                       "receptor": {"synth": {"seed": 3, "atoms": 30, "radius": 5.0}},
                       "ligands": {"synth": {"seed": 7, "count": 2}}}"#;
        let resp = c
            .request("POST", "/jobs", Some(body))
            .unwrap()
            .ok()
            .unwrap();
        let id = match wire::parse(&resp.body).unwrap().get("id") {
            Some(Json::Num(n)) => n.as_u64().unwrap(),
            other => panic!("no id in submit response: {other:?}"),
        };
        let status = c.wait(id, Duration::from_millis(20)).unwrap();
        assert_eq!(status.state, JobState::Completed);
        let stages = status.stages.expect("status carries stage timings");
        assert!(stages.queue_wait_ns.is_some(), "queue wait unstamped");
        assert!(stages.grid_ns.is_some() && stages.grid_source.is_some());
        assert!(stages.dock_ns.is_some() && stages.dock_chunks >= 1);
        assert!(stages.total_ns.is_some(), "terminal stamp missing");
        assert!(!c.results(id).unwrap().is_empty());

        let stats_body = c.request("GET", "/stats", None).unwrap().ok().unwrap().body;
        let stats = wire::parse(&stats_body).unwrap();
        let stats_requests = match stats.get("connections").and_then(|c| c.get("requests")) {
            Some(Json::Num(n)) => n.as_u64().unwrap(),
            other => panic!("no request count in /stats: {other:?}"),
        };

        let metrics = c
            .request("GET", "/metrics", None)
            .unwrap()
            .ok()
            .unwrap()
            .body;
        // Every line must be a HELP/TYPE comment or `series value`
        // with a numeric value — the Prometheus text contract.
        for line in metrics.lines().filter(|l| !l.is_empty()) {
            if let Some(comment) = line.strip_prefix('#') {
                assert!(
                    comment.starts_with(" HELP ") || comment.starts_with(" TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (series, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("sample without value: {line}"));
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
            let name = series.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|ch| ch.is_ascii_alphanumeric() || ch == '_'),
                "bad series name: {line}"
            );
        }
        for needle in [
            "mudock_requests_total ",
            "mudock_jobs_total{event=\"submitted\"} 1\n",
            "mudock_jobs_total{event=\"completed\"} 1\n",
            "mudock_job_stage_seconds_count{stage=\"total\"} 1\n",
            "mudock_job_stage_seconds_bucket{stage=\"dock\"",
            "mudock_request_seconds_count ",
            "mudock_reactor_wait_seconds_count ",
            "mudock_connections_accepted_total 1\n",
        ] {
            assert!(metrics.contains(needle), "missing series {needle:?}");
        }
        // Requests counted on the wire and in the registry are the same
        // atomics. The counter ticks *after* a route runs, so the
        // /metrics render sees exactly one more request (the /stats
        // call) than the /stats body reported.
        let requests_line = metrics
            .lines()
            .find(|l| l.starts_with("mudock_requests_total "))
            .expect("requests series");
        let metrics_requests: u64 = requests_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(metrics_requests, stats_requests + 1);
        drop(c);
        server.shutdown();
        service.shutdown();
    }

    /// Sum every `name{loop="i"}` sample and read the unlabelled
    /// `name` total from a Prometheus render.
    fn loop_sum_and_total(metrics: &str, name: &str) -> (i64, i64, usize) {
        let mut sum = 0i64;
        let mut loops_hit = 0usize;
        let mut total = 0i64;
        for line in metrics.lines() {
            if let Some(rest) = line.strip_prefix(name) {
                if let Some(value) = rest.strip_prefix(' ') {
                    total = value.trim().parse::<f64>().unwrap() as i64;
                } else if rest.starts_with("{loop=") {
                    let value = rest.rsplit(' ').next().unwrap();
                    let v = value.trim().parse::<f64>().unwrap() as i64;
                    sum += v;
                    loops_hit += usize::from(v > 0);
                }
            }
        }
        (sum, total, loops_hit)
    }

    /// The tentpole invariants: with four loops, connections spread
    /// across them (REUSEPORT hashing on Linux, round-robin handoff
    /// elsewhere), every connection still gets correct answers, and the
    /// per-loop labelled series sum to the unlabelled totals.
    #[test]
    fn four_loops_spread_connections_and_aggregate_metrics() {
        let service = tiny_service();
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                event_loops: 4,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        // Enough connections that all of them landing on one loop is
        // (astronomically) improbable under REUSEPORT hashing, and
        // impossible under round-robin.
        let mut herd: Vec<client::Client> = (0..24).map(|_| client::Client::new(&addr)).collect();
        for c in &mut herd {
            assert!(c.healthy(), "connection unanswered under 4 loops");
        }
        let stats = server.connection_stats();
        assert_eq!(stats.accepted, 24);
        assert_eq!(stats.open, 24);
        assert_eq!(stats.shed, 0);

        let metrics = herd[0]
            .request("GET", "/metrics", None)
            .unwrap()
            .ok()
            .unwrap()
            .body;
        for name in [
            "mudock_connections_accepted_total",
            "mudock_connections_open",
            "mudock_requests_total",
        ] {
            let (sum, total, loops_hit) = loop_sum_and_total(&metrics, name);
            assert_eq!(sum, total, "per-loop {name} series do not sum to the total");
            assert!(
                loops_hit >= 2,
                "{name}: all traffic landed on one loop ({loops_hit} loops hit)"
            );
        }
        drop(herd);
        server.shutdown();
        service.shutdown();
    }

    /// A response that can never flush (the route is fine; the *peer*
    /// never reads and keeps the connection busy) is bounded by the
    /// request-level deadline even though every per-phase deadline
    /// keeps being met.
    #[test]
    fn request_deadline_reaps_a_wedged_request() {
        let service = tiny_service();
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                request_timeout: Duration::from_millis(300),
                // Per-phase clocks far beyond the request bound: only
                // the end-to-end deadline can fire in this test.
                idle_timeout: Duration::from_secs(3600),
                header_timeout: Duration::from_secs(3600),
                body_timeout: Duration::from_secs(3600),
                write_timeout: Duration::from_secs(3600),
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut raw = TcpStream::connect(addr).unwrap();
        // A started-but-never-finished request: the header phase alone
        // would allow it for an hour, the request deadline does not.
        raw.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 64];
        let t0 = Instant::now();
        // EOF (Ok(0)) once the server reaps the connection.
        loop {
            match raw.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("expected server-side close, got {e}"),
            }
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(250),
            "closed before the request deadline: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "request deadline never fired: {elapsed:?}"
        );
        server.shutdown();
        service.shutdown();
    }
}
