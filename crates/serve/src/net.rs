//! The network frontend: a dependency-free HTTP/1.1 listener over
//! [`ScreenService`].
//!
//! [`NetServer::bind`] opens a [`std::net::TcpListener`] (no async
//! runtime, matching the workspace's minimal-dependency policy) and
//! serves a small JSON API speaking the [`wire`] module's codec:
//!
//! | Method   | Path                 | Meaning                                   |
//! |----------|----------------------|-------------------------------------------|
//! | `POST`   | `/jobs`              | submit a campaign + receptor + ligands    |
//! | `GET`    | `/jobs/{id}`         | status / progress / terminal outcome      |
//! | `GET`    | `/jobs/{id}/results` | the job's per-ligand JSONL stream so far  |
//! | `DELETE` | `/jobs/{id}`         | request cancellation                      |
//! | `GET`    | `/healthz`           | liveness (`200 {"ok":true}`)              |
//! | `GET`    | `/stats`             | service + grid-cache counters             |
//!
//! The connection path reuses the service's pool/backpressure
//! discipline: a fixed set of handler threads pulls accepted
//! connections from a *bounded* hand-off channel, so a connection burst
//! beyond [`NetConfig::pending_connections`] is answered `503` by the
//! accept loop instead of growing memory; job submission uses
//! [`ScreenService::try_submit`], so a full job queue is `503` too, and
//! the client retries rather than wedging an executor. Requests are
//! `Connection: close` — one exchange per connection keeps the server
//! state machine trivial, and screening jobs are many orders of
//! magnitude longer than a TCP handshake.
//!
//! Error mapping: malformed HTTP or JSON → `400`, unknown job → `404`,
//! wrong method → `405`, oversized body → `413`, campaign validation
//! ([`CampaignError`](mudock_core::CampaignError)) → `422`, queue full
//! or shutting down → `503`.
//!
//! The [`client`] module is the matching blocking client (used by the
//! `mudock submit`/`mudock poll` CLI, the loopback bench mode, and the
//! end-to-end tests).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::job::{JobHandle, JobId, JobSpec, JobState};
use crate::queue::SubmitError;
use crate::server::ScreenService;
use crate::wire::{self, Json, WireError};

/// Network-frontend sizing. `Default` fits a CI host.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Threads answering requests (each request is short: submit,
    /// poll, or a results-file read — docking itself runs on the
    /// service's executors).
    pub handler_threads: usize,
    /// Accepted connections waiting for a handler; beyond this the
    /// accept loop answers `503` immediately (backpressure, not
    /// buffering).
    pub pending_connections: usize,
    /// Request bodies larger than this are refused with `413`.
    pub max_body_bytes: usize,
    /// Per-job JSONL result files are written here (served back by
    /// `GET /jobs/{id}/results`). Created on bind.
    pub results_dir: PathBuf,
    /// Finished jobs kept queryable (status + results). When more
    /// than this many *terminal* jobs are retained, the oldest are
    /// evicted and their result files deleted, so a long-running
    /// server does not grow memory and disk per submission. Running
    /// and queued jobs are never evicted.
    pub max_retained_jobs: usize,
    /// Accept `{"path": …}` receptor/ligand sources, which make the
    /// *server* read the named file. Off by default: on an
    /// unauthenticated socket they are a filesystem probe (error
    /// responses would reveal whether arbitrary paths exist). Enable
    /// only on trusted networks where clients legitimately share the
    /// server's filesystem; inline `pdbqt` text always works.
    pub allow_path_sources: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            handler_threads: 4,
            pending_connections: 16,
            max_body_bytes: 8 << 20,
            results_dir: std::env::temp_dir().join(format!("mudock-net-{}", std::process::id())),
            max_retained_jobs: 256,
            allow_path_sources: false,
        }
    }
}

/// One submitted job as the frontend tracks it.
struct NetJob {
    handle: JobHandle,
    name: String,
    results: PathBuf,
}

struct NetState {
    service: Arc<ScreenService>,
    jobs: Mutex<HashMap<JobId, NetJob>>,
    cfg: NetConfig,
    /// Connections refused with 503 (accept-side backpressure).
    rejected: AtomicU64,
}

/// Monotonic counter naming result files (assigned pre-submit, before
/// the service id exists). Process-global, not per-server: two
/// frontends in one process can share the default (pid-derived)
/// `results_dir`, and per-server counters would both hand out
/// `job-1.jsonl` — one server's eviction would then delete the other's
/// live results.
static NEXT_FILE: AtomicU64 = AtomicU64::new(1);

/// A running HTTP listener bound to a [`ScreenService`].
pub struct NetServer {
    addr: SocketAddr,
    state: Arc<NetState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handler_threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the accept loop plus handler threads. The service is
    /// shared — in-process submissions keep working alongside network
    /// ones.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<ScreenService>,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        std::fs::create_dir_all(&cfg.results_dir)?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(NetState {
            service,
            jobs: Mutex::new(HashMap::new()),
            cfg: cfg.clone(),
            rejected: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.pending_connections.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut handler_threads = Vec::new();
        for _ in 0..cfg.handler_threads.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            handler_threads.push(std::thread::spawn(move || handler_loop(&rx, &state)));
        }
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&listener, &tx, &stop, &state))
        };
        Ok(NetServer {
            addr: local,
            state,
            stop,
            accept_thread: Some(accept_thread),
            handler_threads,
        })
    }

    /// The bound address (resolves the port for `…:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections answered `503` at the accept edge so far.
    pub fn rejected_connections(&self) -> u64 {
        self.state.rejected.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain the handler threads, and join everything.
    /// The underlying [`ScreenService`] is left running (it may have
    /// in-process users); shut it down separately. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Dropping the sender (owned by the accept loop) ends handler
        // `recv`s; join them.
        for t in self.handler_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    stop: &AtomicBool,
    state: &NetState,
) {
    loop {
        let Ok((conn, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            // Transient accept failures (fd exhaustion under a
            // connection flood, ECONNABORTED) must shed load, not
            // busy-spin the accept thread at 100 % CPU.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return; // the wake-up connection; tx drops, handlers drain
        }
        match tx.try_send(conn) {
            Ok(()) => {}
            Err(TrySendError::Full(conn)) => {
                // Backpressure at the edge: refuse loudly instead of
                // queueing without bound.
                state.rejected.fetch_add(1, Ordering::Relaxed);
                respond_best_effort(
                    conn,
                    503,
                    &Json::Obj(vec![(
                        "error".into(),
                        Json::str("server is saturated; retry later"),
                    )]),
                );
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn handler_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<NetState>) {
    loop {
        // Hold the lock only for the dequeue, not the request.
        let conn = match rx.lock().unwrap().recv() {
            Ok(c) => c,
            Err(_) => return, // accept loop gone
        };
        // Panic isolation: the pool is fixed-size, so a panicking
        // request path must cost one connection, not one handler
        // thread for the rest of the server's life.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = handle_connection(conn, state);
        }));
    }
}

/// Parsed request line + the bits of the message we use.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// One request/status/header line (request line, header). Long enough
/// for any payload this API carries; short enough that a line-free
/// byte stream cannot grow a handler's memory (the body is the only
/// large region, and it is bounded separately).
const MAX_LINE_BYTES: usize = 16 << 10;

/// Wall-clock budget for reading one complete request (request line,
/// headers, and body together). Bounds what the byte caps and per-read
/// timeouts cannot: a client dripping one byte every 29 s keeps every
/// 30 s read alive, and would otherwise hold a handler thread for days
/// within the byte budget alone.
const REQUEST_DEADLINE: Duration = Duration::from_secs(60);

fn deadline_error() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::TimedOut,
        format!(
            "request not complete within {}s",
            REQUEST_DEADLINE.as_secs()
        ),
    )
}

/// `read_line` with a hard cap: a line longer than `MAX_LINE_BYTES`
/// (or one that never ends, or arrives slower than the request
/// deadline allows) is an error, not unbounded buffering.
fn read_capped_line(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
) -> std::io::Result<Option<String>> {
    let mut bytes = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if Instant::now() > deadline {
            return Err(deadline_error());
        }
        match reader.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                bytes.push(byte[0]);
                if bytes.len() > MAX_LINE_BYTES {
                    // Discard (bounded, nothing buffered) to the end of
                    // the line so the 400 reaches a client mid-write
                    // instead of a connection reset; past the discard
                    // cap it is an attack, not a request — just close.
                    let mut discarded = 0usize;
                    while discarded < 16 * MAX_LINE_BYTES {
                        match reader.read(&mut byte) {
                            Ok(1..) if byte[0] != b'\n' => discarded += 1,
                            _ => break,
                        }
                    }
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("line exceeds {MAX_LINE_BYTES} bytes"),
                    ));
                }
            }
        }
    }
    if bytes.is_empty() {
        return Ok(None); // EOF or a bare newline: both end the headers
    }
    if bytes.last() == Some(&b'\r') {
        bytes.pop();
    }
    if bytes.is_empty() {
        return Ok(None);
    }
    String::from_utf8(bytes)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 line"))
}

/// Read one HTTP/1.1 request. `Err(status, message)` is answered as-is.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, (u16, String)> {
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let line = read_capped_line(reader, deadline)
        .map_err(|e| (400, format!("bad request line: {e}")))?
        .ok_or((400, "empty request line".to_string()))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or((400, "empty request line".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or((400, "request line without a path".to_string()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err((505, format!("unsupported protocol '{version}'")));
    }

    let mut content_length = 0usize;
    let mut headers_seen = 0usize;
    while let Some(header) =
        read_capped_line(reader, deadline).map_err(|e| (400, format!("bad header: {e}")))?
    {
        headers_seen += 1;
        // Per-line bytes are capped above; cap the *count* too, or a
        // client drip-feeding `X: y` lines holds a handler forever.
        if headers_seen > 128 {
            return Err((400, "more than 128 header lines".to_string()));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| (400, format!("bad content-length '{}'", value.trim())))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && !value.trim().eq_ignore_ascii_case("identity")
            {
                return Err((501, "chunked bodies are not supported".to_string()));
            }
        }
    }
    if content_length > max_body {
        // Best-effort drain (bounded) before answering: the client is
        // mid-write; closing with unread data RSTs the socket and the
        // typed 413 never reaches it. Draining more than a few bufs
        // past the limit is pointless — give up and let them see the
        // reset instead of relaying an attacker-declared length.
        let mut sink = [0u8; 16 << 10];
        let mut left = content_length.min(4 * max_body);
        while left > 0 {
            let take = left.min(sink.len());
            match reader.read(&mut sink[..take]) {
                Ok(0) | Err(_) => break,
                Ok(n) => left -= n,
            }
        }
        return Err((
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        if Instant::now() > deadline {
            return Err((400, deadline_error().to_string()));
        }
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err((400, "truncated body".to_string())),
            Ok(n) => filled += n,
            Err(e) => return Err((400, format!("truncated body: {e}"))),
        }
    }
    let body = String::from_utf8(body).map_err(|_| (400, "body is not valid UTF-8".to_string()))?;
    Ok(Request { method, path, body })
}

fn handle_connection(conn: TcpStream, state: &Arc<NetState>) -> std::io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_secs(30)))?;
    conn.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let (status, content_type, body) = match read_request(&mut reader, state.cfg.max_body_bytes) {
        Ok(req) => route(&req, state),
        Err((status, message)) => (
            status,
            "application/json",
            Body::Text(Json::Obj(vec![("error".into(), Json::str(message))]).encode()),
        ),
    };
    write_response(conn, status, content_type, body)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// A response body: in-memory JSON, or a file streamed straight from
/// disk (results can be large — they must not be buffered whole on a
/// handler thread per request).
enum Body {
    Text(String),
    /// The file plus the length to advertise; the copy is capped at
    /// that length so a sink appending mid-response cannot overrun the
    /// declared `Content-Length`.
    File(std::fs::File, u64),
}

fn write_response(
    mut conn: TcpStream,
    status: u16,
    content_type: &str,
    body: Body,
) -> std::io::Result<()> {
    let len = match &body {
        Body::Text(t) => t.len() as u64,
        Body::File(_, len) => *len,
    };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {len}\r\nConnection: close\r\n\r\n",
        reason(status),
    );
    conn.write_all(head.as_bytes())?;
    match body {
        Body::Text(t) => conn.write_all(t.as_bytes())?,
        Body::File(file, len) => {
            std::io::copy(&mut file.take(len), &mut conn)?;
        }
    }
    conn.flush()
}

/// Answer a connection from the accept thread (the 503 backpressure
/// path) without EVER blocking it — an accept loop that waits on a
/// rejected client is an accept loop not accepting. The drain is
/// non-blocking: it consumes whatever the client already delivered
/// (the whole request, for the common small-submission case, so the
/// 503 arrives instead of a connection reset) and gives up at the
/// first would-block. A client still mid-write of a large body may
/// see the reset — that is the overload signal doing its job.
fn respond_best_effort(conn: TcpStream, status: u16, body: &Json) {
    let mut sink = [0u8; 16 << 10];
    let mut drained = 0usize;
    if conn.set_nonblocking(true).is_ok() {
        if let Ok(mut reader) = conn.try_clone() {
            while drained < (64 << 10) {
                match reader.read(&mut sink) {
                    Ok(n @ 1..) => drained += n,
                    _ => break, // EOF, WouldBlock, or error: stop
                }
            }
        }
        let _ = conn.set_nonblocking(false);
    }
    // The 503 body is far below a socket send buffer; the write never
    // meaningfully blocks, but cap it to be safe.
    let _ = conn.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = write_response(conn, status, "application/json", Body::Text(body.encode()));
}

type Response = (u16, &'static str, Body);

fn json_response(status: u16, v: &Json) -> Response {
    (status, "application/json", Body::Text(v.encode()))
}

fn error_response(status: u16, message: impl Into<String>) -> Response {
    json_response(
        status,
        &Json::Obj(vec![("error".into(), Json::str(message.into()))]),
    )
}

fn wire_error_response(e: &WireError) -> Response {
    json_response(
        e.http_status(),
        &Json::Obj(vec![("error".into(), Json::str(e.to_string()))]),
    )
}

fn route(req: &Request, state: &Arc<NetState>) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            json_response(200, &Json::Obj(vec![("ok".into(), Json::Bool(true))]))
        }
        ("GET", ["stats"]) => {
            let mut v = wire::stats_to_json(&state.service.stats());
            if let Json::Obj(members) = &mut v {
                members.push((
                    "rejected_connections".into(),
                    Json::u64(state.rejected.load(Ordering::Relaxed)),
                ));
                members.push((
                    "queue_capacity".into(),
                    Json::usize(state.service.queue_capacity()),
                ));
            }
            json_response(200, &v)
        }
        ("POST", ["jobs"]) => submit_job(&req.body, state),
        ("GET", ["jobs", id]) => with_job(state, id, job_status),
        ("GET", ["jobs", id, "results"]) => with_job(state, id, job_results),
        ("DELETE", ["jobs", id]) => with_job(state, id, cancel_job),
        (_, ["jobs", ..]) | (_, ["healthz"]) | (_, ["stats"]) => {
            error_response(405, format!("method {} not allowed on {path}", req.method))
        }
        _ => error_response(404, format!("no route for {path}")),
    }
}

fn submit_job(body: &str, state: &Arc<NetState>) -> Response {
    let sub = match wire::parse(body).and_then(|v| wire::submission_from_json(&v)) {
        Ok(s) => s,
        Err(e) => return wire_error_response(&e),
    };
    // Path sources make *this* process read the named file; on an
    // unauthenticated socket that is a filesystem probe. Refuse before
    // any I/O happens unless the operator opted in.
    if !state.cfg.allow_path_sources && sub.uses_path_sources() {
        return error_response(
            403,
            "server-side 'path' sources are disabled on this server; \
             ship the PDBQT text inline instead",
        );
    }
    let receptor = match sub.load_receptor() {
        Ok(r) => r,
        Err(e) => return wire_error_response(&e),
    };
    let file_no = NEXT_FILE.fetch_add(1, Ordering::Relaxed);
    let results = state.cfg.results_dir.join(format!("job-{file_no}.jsonl"));
    let name = sub.campaign.name.clone();
    let spec = JobSpec {
        receptor,
        ligands: sub.ligands,
        priority: sub.priority,
        jsonl: Some(results.clone()),
        ..JobSpec::from(sub.campaign)
    };
    // try_submit, not submit: a full queue must become backpressure on
    // the wire (503 + retry), never a handler thread blocked on a
    // condvar while holding a connection open.
    match state.service.try_submit(spec) {
        Ok(handle) => {
            let id = handle.id();
            let evicted = {
                let mut jobs = state.jobs.lock().unwrap();
                jobs.insert(
                    id,
                    NetJob {
                        handle,
                        name,
                        results,
                    },
                );
                evict_terminal_jobs(&mut jobs, state.cfg.max_retained_jobs)
            };
            for path in evicted {
                std::fs::remove_file(path).ok();
            }
            json_response(
                201,
                &Json::Obj(vec![
                    ("id".into(), Json::u64(id)),
                    (
                        "state".into(),
                        Json::str(wire::state_name(JobState::Queued)),
                    ),
                    ("results".into(), Json::str(format!("/jobs/{id}/results"))),
                ]),
            )
        }
        Err(e @ (SubmitError::Full | SubmitError::Shutdown)) => error_response(503, e.to_string()),
    }
}

/// Drop the oldest *terminal* jobs beyond `max_retained` so a
/// long-running server does not grow per submission forever; returns
/// their result-file paths for deletion outside the lock. Running and
/// queued jobs are never touched, so the map can exceed the cap while
/// that many jobs are genuinely in flight.
fn evict_terminal_jobs(jobs: &mut HashMap<JobId, NetJob>, max_retained: usize) -> Vec<PathBuf> {
    let mut terminal: Vec<JobId> = jobs
        .iter()
        .filter(|(_, j)| j.handle.try_outcome().is_some())
        .map(|(&id, _)| id)
        .collect();
    // The cap applies to *terminal* jobs alone (as NetConfig documents):
    // in-flight jobs must neither be evicted nor crowd finished ones
    // out of their retention window.
    let excess = terminal.len().saturating_sub(max_retained.max(1));
    if excess == 0 {
        return Vec::new();
    }
    terminal.sort_unstable();
    terminal
        .into_iter()
        .take(excess)
        .filter_map(|id| jobs.remove(&id).map(|j| j.results))
        .collect()
}

/// Look a job up and run `f` on a clone of its tracking entry, or 404.
/// The clone means the global map lock is held only for the lookup —
/// never across `f` (which may read a large results file from disk).
fn with_job(state: &Arc<NetState>, id: &str, f: fn(&NetJob, JobId) -> Response) -> Response {
    let Ok(id) = id.parse::<JobId>() else {
        return error_response(404, format!("job id '{id}' is not a number"));
    };
    let job = {
        let jobs = state.jobs.lock().unwrap();
        jobs.get(&id).map(|j| NetJob {
            handle: j.handle.clone(),
            name: j.name.clone(),
            results: j.results.clone(),
        })
    };
    match job {
        Some(job) => f(&job, id),
        None => error_response(404, format!("no job {id}")),
    }
}

fn job_status(job: &NetJob, id: JobId) -> Response {
    let outcome = job.handle.try_outcome();
    let v = wire::status_to_json(
        id,
        &job.name,
        job.handle.state(),
        job.handle.ligands_done(),
        job.handle.chunks_done(),
        outcome.as_ref(),
    );
    json_response(200, &v)
}

fn job_results(job: &NetJob, _id: JobId) -> Response {
    // The sink appends + flushes at chunk boundaries, so serving the
    // file mid-run streams every completed chunk — same contract as
    // tailing the JSONL locally. Streamed from disk, never buffered
    // whole: results files grow with the campaign. The length is
    // snapshotted up front so a chunk landing mid-response cannot
    // overrun the declared Content-Length.
    match std::fs::File::open(&job.results) {
        Ok(file) => match file.metadata() {
            Ok(meta) => (200, "application/x-ndjson", Body::File(file, meta.len())),
            Err(e) => error_response(500, format!("results file: {e}")),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            (200, "application/x-ndjson", Body::Text(String::new()))
        }
        Err(e) => error_response(500, format!("results file: {e}")),
    }
}

fn cancel_job(job: &NetJob, id: JobId) -> Response {
    job.handle.cancel();
    let v = wire::status_to_json(
        id,
        &job.name,
        job.handle.state(),
        job.handle.ligands_done(),
        job.handle.chunks_done(),
        job.handle.try_outcome().as_ref(),
    );
    json_response(202, &v)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// The matching blocking HTTP client: one request per connection,
/// exactly what the server speaks. Used by the CLI (`mudock submit`,
/// `mudock poll`), the loopback bench mode, and the integration tests.
pub mod client {
    use super::*;
    use crate::ingest::LigandSource;
    use crate::job::Priority;
    use crate::wire::{JobStatus, ReceptorSource};
    use mudock_core::CampaignSpec;

    /// A client-side failure.
    #[derive(Debug)]
    pub enum ClientError {
        /// Connect/read/write failed.
        Io(std::io::Error),
        /// The server answered with a non-2xx status.
        Http { status: u16, body: String },
        /// The response body did not decode.
        Wire(WireError),
    }

    impl std::fmt::Display for ClientError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                ClientError::Io(e) => write!(f, "connection failed: {e}"),
                ClientError::Http { status, body } => {
                    // Surface the server's JSON error message when present.
                    let detail = wire::parse(body)
                        .ok()
                        .and_then(|v| match v.get("error") {
                            Some(Json::Str(s)) => Some(s.clone()),
                            _ => None,
                        })
                        .unwrap_or_else(|| body.clone());
                    write!(f, "HTTP {status}: {detail}")
                }
                ClientError::Wire(e) => write!(f, "bad response body: {e}"),
            }
        }
    }

    impl std::error::Error for ClientError {}

    impl From<std::io::Error> for ClientError {
        fn from(e: std::io::Error) -> Self {
            ClientError::Io(e)
        }
    }

    impl From<WireError> for ClientError {
        fn from(e: WireError) -> Self {
            ClientError::Wire(e)
        }
    }

    /// A raw HTTP exchange.
    #[derive(Clone, Debug)]
    pub struct HttpResponse {
        pub status: u16,
        pub body: String,
    }

    impl HttpResponse {
        /// Error on non-2xx, pass through otherwise.
        pub fn ok(self) -> Result<HttpResponse, ClientError> {
            if (200..300).contains(&self.status) {
                Ok(self)
            } else {
                Err(ClientError::Http {
                    status: self.status,
                    body: self.body,
                })
            }
        }
    }

    /// One blocking request against `addr` (e.g. `"127.0.0.1:7979"`).
    pub fn request(
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, ClientError> {
        let mut conn = TcpStream::connect(addr)?;
        conn.set_read_timeout(Some(Duration::from_secs(30)))?;
        conn.set_write_timeout(Some(Duration::from_secs(30)))?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len(),
        );
        conn.write_all(head.as_bytes())?;
        conn.write_all(body.as_bytes())?;
        conn.flush()?;

        let mut reader = BufReader::new(conn);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line '{}'", status_line.trim_end()),
                ))
            })?;
        let mut content_length: Option<usize> = None;
        loop {
            let mut header = String::new();
            let n = reader.read_line(&mut header)?;
            let header = header.trim_end();
            if n == 0 || header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok();
                }
            }
        }
        let body = match content_length {
            Some(len) => {
                let mut buf = vec![0u8; len];
                reader.read_exact(&mut buf)?;
                String::from_utf8_lossy(&buf).into_owned()
            }
            None => {
                // Connection: close — read to EOF.
                let mut buf = String::new();
                reader.read_to_string(&mut buf)?;
                buf
            }
        };
        Ok(HttpResponse { status, body })
    }

    /// `POST /jobs`: submit a campaign; returns the assigned job id.
    pub fn submit(
        addr: &str,
        campaign: &CampaignSpec,
        receptor: &ReceptorSource,
        ligands: &LigandSource,
        priority: Priority,
    ) -> Result<JobId, ClientError> {
        let body = wire::submission_to_json(campaign, receptor, ligands, priority)?.encode();
        let resp = request(addr, "POST", "/jobs", Some(&body))?.ok()?;
        let v = wire::parse(&resp.body)?;
        match v.get("id") {
            Some(Json::Num(n)) => n
                .as_u64()
                .ok_or_else(|| ClientError::Wire(WireError::invalid("id", "expected an integer"))),
            _ => Err(ClientError::Wire(WireError::Missing { field: "id" })),
        }
    }

    /// `GET /jobs/{id}`: one status snapshot.
    pub fn poll(addr: &str, id: JobId) -> Result<JobStatus, ClientError> {
        let resp = request(addr, "GET", &format!("/jobs/{id}"), None)?.ok()?;
        Ok(wire::status_from_json(&wire::parse(&resp.body)?)?)
    }

    /// Poll until the job reaches a terminal state.
    pub fn wait(addr: &str, id: JobId, interval: Duration) -> Result<JobStatus, ClientError> {
        loop {
            let status = poll(addr, id)?;
            if status.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(interval);
        }
    }

    /// `GET /jobs/{id}/results`: the JSONL produced so far.
    pub fn results(addr: &str, id: JobId) -> Result<String, ClientError> {
        Ok(request(addr, "GET", &format!("/jobs/{id}/results"), None)?
            .ok()?
            .body)
    }

    /// `DELETE /jobs/{id}`: request cancellation.
    pub fn cancel(addr: &str, id: JobId) -> Result<JobStatus, ClientError> {
        let resp = request(addr, "DELETE", &format!("/jobs/{id}"), None)?.ok()?;
        Ok(wire::status_from_json(&wire::parse(&resp.body)?)?)
    }

    /// `GET /healthz`, as a boolean.
    pub fn healthy(addr: &str) -> bool {
        matches!(request(addr, "GET", "/healthz", None), Ok(r) if r.status == 200)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;

    fn tiny_service() -> Arc<ScreenService> {
        Arc::new(ScreenService::start(ServeConfig {
            total_threads: 1,
            job_slots: 1,
            queue_capacity: 2,
            cache_capacity: 1,
            ..ServeConfig::default()
        }))
    }

    fn bind(service: &Arc<ScreenService>) -> NetServer {
        NetServer::bind("127.0.0.1:0", Arc::clone(service), NetConfig::default())
            .expect("loopback bind")
    }

    #[test]
    fn healthz_and_stats_respond() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        assert!(client::healthy(&addr));
        let resp = client::request(&addr, "GET", "/stats", None)
            .unwrap()
            .ok()
            .unwrap();
        let v = wire::parse(&resp.body).unwrap();
        assert!(v.get("cache").is_some());
        assert!(v.get("queue_capacity").is_some());
        // Sharding and spill telemetry is part of the stats contract.
        assert_eq!(v.get("shard_count"), Some(&wire::Json::usize(0)));
        assert!(matches!(v.get("shards"), Some(wire::Json::Arr(a)) if a.is_empty()));
        let cache = v.get("cache").unwrap();
        assert!(cache.get("spills").is_some());
        assert!(cache.get("reloads").is_some());
        assert!(cache.get("spilled").is_some());
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn unknown_routes_and_methods_are_typed_errors() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        assert_eq!(
            client::request(&addr, "GET", "/nope", None).unwrap().status,
            404
        );
        assert_eq!(
            client::request(&addr, "DELETE", "/healthz", None)
                .unwrap()
                .status,
            405
        );
        assert_eq!(
            client::request(&addr, "GET", "/jobs/999", None)
                .unwrap()
                .status,
            404
        );
        assert_eq!(
            client::request(&addr, "GET", "/jobs/not-a-number", None)
                .unwrap()
                .status,
            404
        );
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some("{not json"))
                .unwrap()
                .status,
            400
        );
        // Structurally fine, semantically invalid campaign → 422.
        let body = r#"{"campaign": {"name": "x", "top_k": 0},
                       "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                       "ligands": {"synth": {"seed": 1, "count": 2}}}"#;
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some(body))
                .unwrap()
                .status,
            422
        );
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn path_sources_are_refused_unless_enabled() {
        let body = r#"{"campaign": {"name": "p"},
                       "receptor": {"path": "/nonexistent/receptor.pdbqt"},
                       "ligands": {"synth": {"seed": 1, "count": 2}}}"#;
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        // Default policy: 403 before any filesystem access.
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some(body))
                .unwrap()
                .status,
            403
        );
        server.shutdown();

        // Opted in: the path is now attempted — and since it does not
        // exist, the failure is the loader's 400, not the policy 403.
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                allow_path_sources: true,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some(body))
                .unwrap()
                .status,
            400
        );
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn eviction_drops_only_the_oldest_terminal_jobs() {
        use crate::job::{JobOutcome, JobShared};
        fn job(id: u64, terminal: bool) -> NetJob {
            let shared = JobShared::new(id);
            if terminal {
                shared.finish(JobOutcome {
                    id,
                    name: String::new(),
                    state: JobState::Completed,
                    ligands_done: 0,
                    chunks_done: 0,
                    replayed_chunks: 0,
                    grid_cache_hit: false,
                    stopped_early: false,
                    top: Vec::new(),
                    elapsed: Duration::ZERO,
                    error: None,
                });
            }
            NetJob {
                handle: JobHandle { shared },
                name: format!("j{id}"),
                results: PathBuf::from(format!("/nonexistent/none-{id}.jsonl")),
            }
        }
        let mut jobs = HashMap::new();
        for id in 1..=4u64 {
            jobs.insert(id, job(id, id != 3)); // job 3 is still running
        }
        // Three *terminal* jobs (1, 2, 4) against a cap of 2 → the
        // oldest terminal job (1) goes. The running job neither counts
        // toward the cap nor gets evicted, even though it is older
        // than 4.
        let evicted = evict_terminal_jobs(&mut jobs, 2);
        assert_eq!(evicted.len(), 1);
        assert!(jobs.contains_key(&3), "running jobs are never evicted");
        assert!(jobs.contains_key(&2) && jobs.contains_key(&4));
        assert!(!jobs.contains_key(&1));
        // Exactly at the cap now: nothing further to do.
        assert!(evict_terminal_jobs(&mut jobs, 2).is_empty());
        // A sea of running jobs cannot push terminal ones out early.
        for id in 10..=30u64 {
            jobs.insert(id, job(id, false));
        }
        assert!(evict_terminal_jobs(&mut jobs, 2).is_empty());
    }

    #[test]
    fn overlong_header_lines_are_refused_not_buffered() {
        let service = tiny_service();
        let mut server = bind(&service);
        let addr = server.local_addr().to_string();
        // A request line far beyond MAX_LINE_BYTES: the server must
        // answer 400 (it read a bounded prefix), not buffer it all.
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 << 10));
        conn.write_all(huge.as_bytes()).unwrap();
        conn.flush().unwrap();
        let mut resp = String::new();
        let mut reader = BufReader::new(conn);
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("400"), "got: {resp}");
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let service = tiny_service();
        let mut server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                max_body_bytes: 64,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let body = "x".repeat(256);
        assert_eq!(
            client::request(&addr, "POST", "/jobs", Some(&body))
                .unwrap()
                .status,
            413
        );
        server.shutdown();
        service.shutdown();
    }
}
