//! A dependency-free readiness reactor for the network frontend.
//!
//! The workspace's no-deps discipline rules out `mio`/`tokio`, so this
//! module speaks to the kernel directly: on Linux, `epoll(7)` through
//! three `extern "C"` declarations against the libc that `std` already
//! links; on macOS and the BSDs, `kqueue(2)` through two more; and on
//! any remaining unix, a portable `poll(2)` fallback with the same
//! API. All three are level-triggered — the event loop in
//! [`crate::net`] re-arms interest explicitly (read always, write only
//! while a response is queued), which keeps the state machine simple
//! and makes missed-wakeup bugs structurally impossible.
//!
//! The surface is the minimal readiness vocabulary an event loop
//! needs: [`Reactor::register`] / [`Reactor::modify`] /
//! [`Reactor::deregister`] a file descriptor with a caller-chosen
//! [`Token`], then [`Reactor::wait`] for [`Event`]s. Timeouts are the
//! caller's problem (the net loop passes its nearest deadline), and
//! `EINTR` surfaces as an empty wakeup rather than an error.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

#[cfg(not(unix))]
compile_error!("the serve reactor requires a unix-like host (epoll or poll)");

/// Caller-chosen identifier attached to a registered fd and echoed
/// back in every [`Event`] for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Which readiness classes to watch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification. `hangup` folds `EPOLLHUP`/`EPOLLERR`
/// (and their `poll` equivalents): the fd needs attention and the next
/// read/write will report the specific condition.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

/// A readiness selector over many file descriptors.
pub struct Reactor {
    sys: sys::Selector,
}

impl Reactor {
    pub fn new() -> io::Result<Reactor> {
        Ok(Reactor {
            sys: sys::Selector::new()?,
        })
    }

    /// Start watching `fd`. The fd must stay valid until
    /// [`Reactor::deregister`] (the reactor never closes it).
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.sys.register(fd, token, interest)
    }

    /// Change the interest set (and token) of a registered fd.
    pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.sys.modify(fd, token, interest)
    }

    /// Stop watching `fd`. Must precede closing the fd.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.sys.deregister(fd)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` waits forever). Events are appended to `out`
    /// (cleared first); the count of delivered events is returned so
    /// callers can split wait-time from dispatch-time without touching
    /// `out`. A signal interruption returns `Ok(0)` with no events —
    /// callers already loop.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        self.sys.wait(out, timeout)?;
        Ok(out.len())
    }
}

/// Clamp a timeout to the millisecond `int` the kernel interfaces
/// take, rounding up so a 100 µs deadline does not busy-spin at 0 ms.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! `epoll(7)` via direct FFI: O(ready) wakeups, no per-wait scan of
    //! the registration table, which is what makes the 1k-connection
    //! bench leg cheap.

    use super::{timeout_ms, Event, Interest, Token};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the ABI
    /// quirk epoll is famous for); natural alignment elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    pub struct Selector {
        ep: OwnedFd,
        buf: Vec<EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector {
                ep: unsafe { OwnedFd::from_raw_fd(fd) },
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, ev: Option<EpollEvent>) -> io::Result<()> {
            let mut ev = ev;
            let p = ev
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            if unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, p) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent {
                    events: mask(interest),
                    data: token.0 as u64,
                }),
            )
        }

        pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent {
                    events: mask(interest),
                    data: token.0 as u64,
                }),
            )
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(
                    self.ep.as_raw_fd(),
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                let (events, data) = (ev.events, ev.data);
                out.push(Event {
                    token: Token(data as usize),
                    readable: events & EPOLLIN != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

/// The operating systems whose selector is `kqueue(2)`.
#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "openbsd",
    target_os = "dragonfly",
))]
mod sys {
    //! `kqueue(2)` via direct FFI: the mac/BSD arm of the portability
    //! story, with the same O(ready) wakeup cost as epoll. Interest is
    //! expressed as one kevent per readiness filter (`EVFILT_READ` /
    //! `EVFILT_WRITE`), so `modify` diffs the previous interest set and
    //! submits only the adds/deletes that changed; a small registration
    //! map remembers what each fd currently watches.

    use super::{timeout_ms, Event, Interest, Token};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::raw::{c_int, c_void};
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_ERROR: u16 = 0x4000;
    const EV_EOF: u16 = 0x8000;

    /// The kernel's `struct kevent`. FreeBSD ≥ 12 grew an `ext[4]`
    /// tail; the Darwin/OpenBSD/Dragonfly layout has none. The leading
    /// fields agree everywhere this module compiles: `uintptr_t ident`,
    /// `int16_t filter`, `uint16_t flags`, `uint32_t fflags`,
    /// 64-bit `data`, pointer `udata`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
        #[cfg(target_os = "freebsd")]
        ext: [u64; 4],
    }

    impl KEvent {
        fn change(fd: RawFd, filter: i16, flags: u16, token: Token) -> KEvent {
            KEvent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token.0 as *mut c_void,
                #[cfg(target_os = "freebsd")]
                ext: [0; 4],
            }
        }
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: isize,
        tv_nsec: isize,
    }

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const KEvent,
            nchanges: c_int,
            eventlist: *mut KEvent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
    }

    pub struct Selector {
        kq: OwnedFd,
        /// fd → currently-submitted interest, so `modify` knows which
        /// filters to EV_DELETE (deleting a never-added filter is
        /// ENOENT, which `kevent` reports as a hard error).
        reg: HashMap<RawFd, (Token, Interest)>,
        buf: Vec<KEvent>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let fd = unsafe { kqueue() };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector {
                kq: unsafe { OwnedFd::from_raw_fd(fd) },
                reg: HashMap::new(),
                buf: vec![KEvent::change(0, 0, 0, Token(0)); 256],
            })
        }

        /// Submit a changelist eagerly (no eventlist), so a bad change
        /// surfaces here as an error instead of polluting a later wait.
        fn submit(&self, changes: &[KEvent]) -> io::Result<()> {
            if changes.is_empty() {
                return Ok(());
            }
            let n = unsafe {
                kevent(
                    self.kq.as_raw_fd(),
                    changes.as_ptr(),
                    changes.len() as c_int,
                    std::ptr::null_mut(),
                    0,
                    std::ptr::null(),
                )
            };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// The kevent changes taking `fd` from interest `have` to
        /// `want` (either may be "nothing" — registration/removal).
        fn diff(fd: RawFd, token: Token, have: Interest, want: Interest, out: &mut Vec<KEvent>) {
            for (filter, had, wants) in [
                (EVFILT_READ, have.readable, want.readable),
                (EVFILT_WRITE, have.writable, want.writable),
            ] {
                match (had, wants) {
                    (false, true) => out.push(KEvent::change(fd, filter, EV_ADD, token)),
                    (true, false) => out.push(KEvent::change(fd, filter, EV_DELETE, token)),
                    _ => {}
                }
            }
        }

        const NONE: Interest = Interest {
            readable: false,
            writable: false,
        };

        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            if self.reg.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            let mut changes = Vec::new();
            Self::diff(fd, token, Self::NONE, interest, &mut changes);
            self.submit(&changes)?;
            self.reg.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let &(_, have) = self
                .reg
                .get(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            let mut changes = Vec::new();
            Self::diff(fd, token, have, interest, &mut changes);
            // A re-ADD of an existing filter is how the token changes.
            for (filter, wants) in [
                (EVFILT_READ, interest.readable),
                (EVFILT_WRITE, interest.writable),
            ] {
                if wants && !changes.iter().any(|c| c.filter == filter) {
                    changes.push(KEvent::change(fd, filter, EV_ADD, token));
                }
            }
            self.submit(&changes)?;
            self.reg.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let (token, have) = self
                .reg
                .remove(&fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            let mut changes = Vec::new();
            Self::diff(fd, token, have, Self::NONE, &mut changes);
            self.submit(&changes)
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            // Millisecond resolution matches the epoll/poll arms (and
            // keeps `timeout_ms`'s round-up-never-spin behavior).
            let ms = timeout_ms(timeout);
            let ts = Timespec {
                tv_sec: (ms / 1000) as isize,
                tv_nsec: ((ms % 1000) as isize) * 1_000_000,
            };
            let ts_ptr = if ms < 0 {
                std::ptr::null()
            } else {
                &ts as *const Timespec
            };
            let n = unsafe {
                kevent(
                    self.kq.as_raw_fd(),
                    std::ptr::null(),
                    0,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    ts_ptr,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                out.push(Event {
                    token: Token(ev.udata as usize),
                    readable: ev.filter == EVFILT_READ,
                    writable: ev.filter == EVFILT_WRITE,
                    hangup: ev.flags & (EV_ERROR | EV_EOF) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(all(
    unix,
    not(any(
        target_os = "linux",
        target_os = "macos",
        target_os = "ios",
        target_os = "freebsd",
        target_os = "openbsd",
        target_os = "dragonfly",
    ))
))]
mod sys {
    //! Portable `poll(2)` fallback: O(registered) per wait, fine for
    //! development hosts; production deployments are Linux.

    use super::{timeout_ms, Event, Interest, Token};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_ulong};
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub struct Selector {
        reg: BTreeMap<RawFd, (Token, Interest)>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Ok(Selector {
                reg: BTreeMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            if self.reg.insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            match self.reg.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match self.reg.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .reg
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms(timeout)) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for pfd in fds.iter().filter(|p| p.revents != 0) {
                let (token, _) = self.reg[&pfd.fd];
                out.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn wait_times_out_with_no_ready_fds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut r = Reactor::new().unwrap();
        r.register(listener.as_raw_fd(), Token(1), Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        let t0 = Instant::now();
        r.wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn readable_and_writable_events_carry_their_tokens() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut r = Reactor::new().unwrap();
        r.register(listener.as_raw_fd(), Token(7), Interest::READ)
            .unwrap();

        // A connect makes the listener readable (acceptable).
        let mut clientside = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        r.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == Token(7) && e.readable));

        let (mut serverside, _) = listener.accept().unwrap();
        serverside.set_nonblocking(true).unwrap();
        r.register(serverside.as_raw_fd(), Token(9), Interest::BOTH)
            .unwrap();

        // A fresh socket with room in its send buffer is writable; once
        // the peer sends, it turns readable too.
        clientside.write_all(b"ping").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let (mut saw_read, mut saw_write) = (false, false);
        while !(saw_read && saw_write) && Instant::now() < deadline {
            r.wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for e in &events {
                if e.token == Token(9) {
                    saw_read |= e.readable;
                    saw_write |= e.writable;
                }
            }
        }
        assert!(saw_read && saw_write);
        let mut buf = [0u8; 8];
        assert_eq!(serverside.read(&mut buf).unwrap(), 4);

        // After deregistering, the fd produces no further events.
        r.deregister(serverside.as_raw_fd()).unwrap();
        clientside.write_all(b"more").unwrap();
        r.wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != Token(9)));
    }

    /// Two reactors, each watching its own `SO_REUSEPORT` listener on
    /// one port, must *both* see accepts: this is the property the
    /// multi-loop frontend's per-loop listeners stand on.
    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_listeners_spread_accepts_across_reactors() {
        use crate::net::reuseport::bind_reuseport;

        let l1 = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = l1.local_addr().unwrap();
        let l2 = bind_reuseport(addr).unwrap();
        let mut r1 = Reactor::new().unwrap();
        let mut r2 = Reactor::new().unwrap();
        r1.register(l1.as_raw_fd(), Token(1), Interest::READ)
            .unwrap();
        r2.register(l2.as_raw_fd(), Token(2), Interest::READ)
            .unwrap();

        // Enough connections that the kernel's flow hash landing all of
        // them on one listener is (astronomically) improbable.
        const CONNS: usize = 64;
        let _clients: Vec<TcpStream> = (0..CONNS)
            .map(|_| TcpStream::connect(addr).unwrap())
            .collect();

        let mut got = [0usize; 2];
        let mut accepted = Vec::new();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got[0] + got[1] < CONNS && Instant::now() < deadline {
            r1.wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            if events.iter().any(|e| e.token == Token(1) && e.readable) {
                while let Ok((s, _)) = l1.accept() {
                    accepted.push(s);
                    got[0] += 1;
                }
            }
            r2.wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            if events.iter().any(|e| e.token == Token(2) && e.readable) {
                while let Ok((s, _)) = l2.accept() {
                    accepted.push(s);
                    got[1] += 1;
                }
            }
        }
        assert_eq!(got[0] + got[1], CONNS, "accepts lost: {got:?}");
        assert!(
            got[0] > 0 && got[1] > 0,
            "kernel never spread accepts across the listeners: {got:?}"
        );
    }

    #[test]
    fn modify_toggles_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut r = Reactor::new().unwrap();
        // Read-only: an idle writable socket must NOT wake the loop.
        r.register(server.as_raw_fd(), Token(3), Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        r.wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty(), "level-triggered write storm: {events:?}");
        // Now ask for write readiness: an empty send buffer reports
        // immediately.
        r.modify(server.as_raw_fd(), Token(3), Interest::BOTH)
            .unwrap();
        r.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == Token(3) && e.writable));
    }
}
