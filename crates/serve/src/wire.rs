//! The network wire codec: hand-rolled JSON for campaign submissions
//! and job reports.
//!
//! The workspace is offline/shim-only, so instead of `serde` this module
//! carries a small, dependency-free JSON stack: a [`Json`] value tree, a
//! serializer built over [`json_escape`], a
//! tolerant recursive-descent [`parse`] (arbitrary whitespace, trailing
//! commas in arrays and objects, `_ns`/`_ms`/`_s` duration aliases), and
//! typed conversions between the tree and the service's domain types.
//! Numbers keep their source text ([`Json::Num`]), so `u64` seeds and
//! exact `f32` score bits survive a round trip that a lossy `f64`-only
//! representation would corrupt.
//!
//! Every decode failure is a typed [`WireError`] that maps onto an HTTP
//! status ([`WireError::http_status`]): malformed JSON and missing or
//! ill-typed fields are `400`, a structurally valid campaign that fails
//! [`Campaign::builder`](mudock_core::Campaign) validation is `422`
//! (carrying the [`CampaignError`]), and an unserializable payload is
//! `400`.
//!
//! # JSON schema
//!
//! A **submission** (`POST /jobs` body) is an object:
//!
//! ```json
//! {
//!   "campaign": { ... },
//!   "receptor": {"synth": {"seed": 7, "atoms": 120, "radius": 8.0}},
//!   "ligands":  {"synth": {"seed": 42, "count": 24}},
//!   "priority": "normal"
//! }
//! ```
//!
//! `receptor` also accepts `{"pdbqt": "<multi-line PDBQT text>"}` or
//! `{"path": "/server-side/file.pdbqt"}`; `ligands` accepts the same
//! three forms (its `pdbqt` text may hold many `MODEL`/`ENDMDL` blocks).
//! `path` sources make the **server** read the named file and are
//! refused with `403` unless the operator enabled them
//! (`NetConfig::allow_path_sources` / `mudock serve
//! --allow-path-sources`); inline `pdbqt` text always works.
//! `priority` is `"low" | "normal" | "high"` and defaults to `normal`.
//!
//! A **campaign** mirrors [`CampaignSpec`] field by field; every member
//! is optional and defaults like `Campaign::builder()` (`name` defaults
//! to the empty string):
//!
//! ```json
//! {
//!   "name": "screen-1",
//!   "seed": 42,
//!   "top_k": 10,
//!   "search_radius": 3.5,
//!   "ga": {"population": 100, "generations": 150, "tournament": 3,
//!          "crossover_rate": 0.8, "mutation_rate": 0.08,
//!          "sigma_translation": 0.6, "sigma_rotation": 0.15,
//!          "sigma_torsion": 0.4, "elitism": 2},
//!   "local_search": {"max_evals": 300, "rho_start": 0.5, "rho_min": 0.01,
//!                    "expand_after": 4, "contract_after": 4, "fraction": 0.06},
//!   "backend": "detect",
//!   "stop": "complete",
//!   "chunk": {"fixed": 16},
//!   "grid_dims": {"npts": [31, 31, 31], "spacing": 0.6,
//!                 "origin": [-9.0, -9.0, -9.0]}
//! }
//! ```
//!
//! The three policy fields are tagged unions:
//!
//! * `backend` — `"detect"`, `{"fixed": "reference" | "autovec" | "scalar"
//!   | "sse2" | "avx2" | "avx512"}`, or `{"pinned": "<simd level>"}`;
//! * `stop` — `"complete"`, `{"max_evaluations": N}`, `{"deadline_ns": N}`
//!   (also `deadline_ms` / `deadline_s`), or
//!   `{"ranking_stable": {"window": W, "epsilon": E}}`;
//! * `chunk` — `{"fixed": N}` or `{"adaptive_target_ns": N}` (also
//!   `adaptive_target_ms` / `adaptive_target_s`).
//!
//! A **job report** (`GET /jobs/{id}` body) is
//! [`status_to_json`]/[`JobStatus`]: `id`, `name`, `state`,
//! `ligands_done`, `chunks_done`, a `stages` object with the per-stage
//! wall-clock breakdown (`queue_wait_ns`, `grid_ns`, `grid_source`,
//! `dock_ns`, `dock_chunks`, `sink_ns`, `total_ns` — `null` until the
//! stage happens), and — once terminal — an `outcome` object with
//! `replayed_chunks`, `grid_cache_hit`, `stopped_early`, `elapsed_ns`,
//! `error`, and the ranked `top` array of
//! `{"index": N, "name": S, "score": F}` entries.

use std::sync::Arc;
use std::time::Duration;

use mudock_core::{
    Backend, BackendPolicy, Campaign, CampaignError, CampaignSpec, ChunkPolicy, GaParams,
    ShardPolicy, SolisWetsParams, StopPolicy,
};
use mudock_grids::GridDims;
use mudock_mol::{Molecule, Vec3};
use mudock_obs::{GridSource, StageTimings};
use mudock_simd::SimdLevel;

use crate::ingest::LigandSource;
use crate::job::{JobId, JobOutcome, JobState, LigandSlice, Priority, RankedLigand};
use crate::server::ServiceStats;
use crate::sink::json_escape;

// ---------------------------------------------------------------------------
// The JSON value tree
// ---------------------------------------------------------------------------

/// A parsed or to-be-serialized JSON value.
///
/// Numbers keep their literal text (see [`Num`]) so integer seeds above
/// 2^53 and shortest-form floats round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(Num),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered members (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

/// A JSON number as its decimal source text.
#[derive(Clone, Debug, PartialEq)]
pub struct Num(String);

impl Num {
    pub fn from_u64(v: u64) -> Num {
        Num(v.to_string())
    }

    pub fn from_usize(v: usize) -> Num {
        Num(v.to_string())
    }

    /// Shortest decimal that parses back to exactly `v` (f64 has more
    /// than twice f32's precision, so the f64 detour cannot re-round).
    pub fn from_f32(v: f32) -> Num {
        Num(fmt_float(v as f64))
    }

    pub fn from_f64(v: f64) -> Num {
        Num(fmt_float(v))
    }

    pub fn as_f64(&self) -> Option<f64> {
        self.0.parse().ok()
    }

    pub fn as_f32(&self) -> Option<f32> {
        self.as_f64().map(|v| v as f32)
    }

    /// Integer value: exact `u64` text, or an integral float in range.
    pub fn as_u64(&self) -> Option<u64> {
        if let Ok(v) = self.0.parse::<u64>() {
            return Some(v);
        }
        let f = self.as_f64()?;
        // Exclusive upper bound: `u64::MAX as f64` rounds *up* to 2^64,
        // so an inclusive range would let 1.8446744073709552e19 through
        // and `as u64` would silently saturate instead of erroring.
        (f.fract() == 0.0 && f >= 0.0 && f < u64::MAX as f64).then_some(f as u64)
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }
}

/// `{}`-format a float, forcing a `.0` onto integral values so the text
/// stays unambiguously a float to foreign parsers.
fn fmt_float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

impl Json {
    pub fn u64(v: u64) -> Json {
        Json::Num(Num::from_u64(v))
    }

    pub fn usize(v: usize) -> Json {
        Json::Num(Num::from_usize(v))
    }

    /// A float member — `null` when non-finite: JSON has no NaN/inf
    /// literal, and `format!("{}", f32::NAN)` would otherwise emit
    /// `NaN.0`, corrupting the whole document. Decoders treat `null`
    /// as absent, so a non-finite value degrades to "field not sent"
    /// rather than to unparseable output.
    pub fn f32(v: f32) -> Json {
        if v.is_finite() {
            Json::Num(Num::from_f32(v))
        } else {
            Json::Null
        }
    }

    /// See [`Json::f32`]: non-finite encodes as `null`.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(Num::from_f64(v))
        } else {
            Json::Null
        }
    }

    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Member lookup (objects only; last duplicate wins, like the parser).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&n.0),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed decode failure, each variant mapping to an HTTP status.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The body is not JSON this parser accepts (byte offset included).
    Syntax { offset: usize, message: String },
    /// A required member is absent.
    Missing { field: &'static str },
    /// A member is present but unusable (wrong type, unknown variant,
    /// out-of-range value, unparsable molecule, …).
    Invalid { field: String, message: String },
    /// The decoded campaign failed `Campaign::builder()` validation —
    /// well-formed on the wire, rejected by the domain (HTTP 422).
    Campaign(CampaignError),
}

impl WireError {
    pub fn invalid(field: impl Into<String>, message: impl Into<String>) -> WireError {
        WireError::Invalid {
            field: field.into(),
            message: message.into(),
        }
    }

    /// The HTTP status class this error belongs to.
    pub fn http_status(&self) -> u16 {
        match self {
            WireError::Campaign(_) => 422,
            _ => 400,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Syntax { offset, message } => {
                write!(f, "malformed JSON at byte {offset}: {message}")
            }
            WireError::Missing { field } => write!(f, "missing required field '{field}'"),
            WireError::Invalid { field, message } => {
                write!(f, "invalid field '{field}': {message}")
            }
            WireError::Campaign(e) => write!(f, "invalid campaign: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CampaignError> for WireError {
    fn from(e: CampaignError) -> Self {
        WireError::Campaign(e)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse JSON text into a [`Json`] tree.
///
/// Deliberately tolerant where tolerance is harmless: any amount of
/// whitespace, trailing commas in arrays and objects, and duplicate
/// object keys (last wins at [`Json::get`]). Everything else — unquoted
/// keys, comments, `NaN`, single quotes — is a [`WireError::Syntax`]
/// with the byte offset of the problem.
///
/// This is a thin wrapper over [`PushParser`]: one feed of the whole
/// text, then [`PushParser::finish`]. Incremental callers (the network
/// frontend parsing a request body as it arrives) drive the push parser
/// directly and get byte-identical results, including error offsets.
pub fn parse(text: &str) -> Result<Json, WireError> {
    let mut p = PushParser::new();
    p.feed(text.as_bytes())?;
    p.finish()
}

/// Nesting allowed before the parser refuses (stack safety on hostile
/// input — this runs on bytes straight off a socket).
const MAX_DEPTH: usize = 64;

/// What the string currently being parsed will become.
#[derive(Debug)]
enum StrRole {
    /// An object member key (a `:` and a value follow).
    Key,
    /// A value (top-level, array item, or object member value).
    Value,
}

/// Sub-state inside a JSON string.
#[derive(Debug)]
enum StrSub {
    /// Plain content bytes.
    Normal,
    /// Just consumed a `\`.
    Escape,
    /// Collecting the 4 hex digits of a `\u` escape. `start` is the
    /// global offset of the first digit (where the recursive parser
    /// reported truncated/bad escapes).
    Hex {
        digits: [u8; 4],
        n: usize,
        start: usize,
    },
    /// A high surrogate was decoded; the next byte must be `\`.
    /// `entry` is the offset right after the high unit's digits.
    LowSlash { high: u16, entry: usize },
    /// …and the byte after that must be `u`.
    LowU { high: u16, entry: usize },
    /// Collecting the low surrogate's 4 hex digits.
    LowHex {
        high: u16,
        digits: [u8; 4],
        n: usize,
        start: usize,
    },
    /// Accumulating a (potential) multi-byte UTF-8 sequence: up to 4
    /// raw bytes, validated when the run ends — exactly the recursive
    /// parser's "take up to 4 continuation bytes, then `from_utf8`".
    Utf8 { bytes: [u8; 4], n: usize },
}

/// Sub-state inside a number literal.
#[derive(Clone, Copy, Debug)]
enum NumPhase {
    /// After a leading `-`: at least one integer digit required.
    IntFirst,
    /// In the integer digits.
    Int,
    /// After `.`: at least one fraction digit required.
    FracFirst,
    /// In the fraction digits.
    Frac,
    /// After `e`/`E`: an optional sign, then at least one digit.
    ExpStart,
    /// After the exponent sign: at least one digit required.
    ExpFirst,
    /// In the exponent digits.
    Exp,
}

/// An open container on the parse stack.
enum Frame {
    Arr(Vec<Json>),
    /// Members so far + the key whose value is currently being parsed.
    Obj(Vec<(String, Json)>, Option<String>),
}

/// The parser's current activity.
enum PushState {
    /// Expecting the start of a value (whitespace skipped).
    AwaitValue,
    /// Inside an array, after `[` or `,`: an item or `]`.
    AwaitItemOrEnd,
    /// Inside an object, after `{` or `,`: a key string or `}`.
    AwaitKeyOrEnd,
    /// After an object key: expecting `:`.
    AwaitColon,
    /// After a container element: `,` or the closing bracket.
    AwaitCommaOrEnd,
    /// Inside a string literal.
    Str {
        role: StrRole,
        out: String,
        sub: StrSub,
    },
    /// Inside a number literal.
    Num { text: String, phase: NumPhase },
    /// Inside `true`/`false`/`null`. `start` is the literal's offset
    /// (where a mismatch is reported, like the recursive parser).
    Literal {
        word: &'static [u8],
        matched: usize,
        start: usize,
        value: Json,
    },
    /// The top-level value is complete; only whitespace may follow.
    Done,
}

/// A resumable push parser over the same grammar as [`parse`].
///
/// Feed bytes as they arrive ([`PushParser::feed`] — any split, down to
/// one byte at a time) and call [`PushParser::finish`] when the
/// document is complete. The result — value, or [`WireError::Syntax`]
/// with byte offset and message — is identical to a one-shot [`parse`]
/// of the concatenated bytes, regardless of how the input was chunked;
/// malformed input fails at the first erroneous byte without waiting
/// for the rest of the document. This is what lets the network frontend
/// parse a request body incrementally instead of buffering it whole and
/// parsing at the end.
pub struct PushParser {
    /// Global byte offset of the next unconsumed byte.
    pos: usize,
    stack: Vec<Frame>,
    state: PushState,
    result: Option<Json>,
    /// Sticky first error: every later feed/finish returns it again.
    err: Option<WireError>,
}

impl Default for PushParser {
    fn default() -> Self {
        Self::new()
    }
}

impl PushParser {
    pub fn new() -> PushParser {
        PushParser {
            pos: 0,
            stack: Vec::new(),
            state: PushState::AwaitValue,
            result: None,
            err: None,
        }
    }

    /// Bytes consumed so far (the offset errors are reported against).
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Has the top-level value parsed completely? (Trailing whitespace
    /// may still be fed; anything else errors.)
    pub fn is_complete(&self) -> bool {
        matches!(self.state, PushState::Done)
    }

    /// Consume `bytes`. On a syntax error the parser latches it:
    /// this and every subsequent call return the same error.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if let Some(e) = &self.err {
            return Err(e.clone());
        }
        for &b in bytes {
            loop {
                match self.step(b) {
                    Ok(true) => {
                        self.pos += 1;
                        break;
                    }
                    Ok(false) => continue, // state advanced; reprocess b
                    Err(e) => {
                        self.err = Some(e.clone());
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// End of input: return the parsed value, or the error a one-shot
    /// [`parse`] of the same bytes would have produced.
    pub fn finish(mut self) -> Result<Json, WireError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        loop {
            match &self.state {
                PushState::Done => return Ok(self.result.take().expect("Done holds a value")),
                // A number can only be known complete at end-of-input.
                PushState::Num { phase, .. } => match phase {
                    NumPhase::Int | NumPhase::Frac | NumPhase::Exp => {
                        self.complete_number();
                        continue;
                    }
                    NumPhase::IntFirst => return Err(syntax_at(self.pos, "expected digits")),
                    NumPhase::FracFirst => {
                        return Err(syntax_at(self.pos, "expected digits after '.'"))
                    }
                    NumPhase::ExpStart | NumPhase::ExpFirst => {
                        return Err(syntax_at(self.pos, "expected digits in exponent"))
                    }
                },
                PushState::AwaitValue | PushState::AwaitItemOrEnd => {
                    // The recursive parser's value(): depth check first,
                    // then "unexpected end of input" on an empty peek.
                    if self.stack.len() >= MAX_DEPTH {
                        return Err(syntax_at(
                            self.pos,
                            format!("nesting deeper than {MAX_DEPTH}"),
                        ));
                    }
                    return Err(syntax_at(self.pos, "unexpected end of input"));
                }
                PushState::AwaitKeyOrEnd => return Err(syntax_at(self.pos, "expected '\"'")),
                PushState::AwaitColon => return Err(syntax_at(self.pos, "expected ':'")),
                PushState::AwaitCommaOrEnd => {
                    let msg = match self.stack.last() {
                        Some(Frame::Obj(..)) => "expected ',' or '}' in object",
                        _ => "expected ',' or ']' in array",
                    };
                    return Err(syntax_at(self.pos, msg));
                }
                PushState::Literal { word, start, .. } => {
                    let word = std::str::from_utf8(word).expect("ASCII literal");
                    return Err(syntax_at(*start, format!("expected '{word}'")));
                }
                PushState::Str { sub, .. } => {
                    return Err(match sub {
                        StrSub::Normal => syntax_at(self.pos, "unterminated string"),
                        StrSub::Escape => syntax_at(self.pos, "unterminated escape"),
                        StrSub::Hex { start, .. } | StrSub::LowHex { start, .. } => {
                            syntax_at(*start, "truncated \\u escape")
                        }
                        StrSub::LowSlash { entry, .. } | StrSub::LowU { entry, .. } => {
                            syntax_at(*entry, "unpaired high surrogate")
                        }
                        StrSub::Utf8 { bytes, n } => {
                            // A complete sequence at EOF decodes fine and
                            // the string is merely unterminated; a partial
                            // one is the recursive parser's UTF-8 error.
                            match std::str::from_utf8(&bytes[..*n]) {
                                Ok(_) => syntax_at(self.pos, "unterminated string"),
                                Err(_) => syntax_at(self.pos, "invalid UTF-8 in string"),
                            }
                        }
                    });
                }
            }
        }
    }

    /// A value finished parsing: attach it to the enclosing container,
    /// or finish the document.
    fn value_complete(&mut self, v: Json) {
        match self.stack.last_mut() {
            None => {
                self.result = Some(v);
                self.state = PushState::Done;
            }
            Some(Frame::Arr(items)) => {
                items.push(v);
                self.state = PushState::AwaitCommaOrEnd;
            }
            Some(Frame::Obj(members, key)) => {
                members.push((key.take().expect("value follows a key"), v));
                self.state = PushState::AwaitCommaOrEnd;
            }
        }
    }

    fn close_container(&mut self) {
        match self.stack.pop().expect("close matches an open container") {
            Frame::Arr(items) => self.value_complete(Json::Arr(items)),
            Frame::Obj(members, _) => self.value_complete(Json::Obj(members)),
        }
    }

    fn complete_number(&mut self) {
        let text = match std::mem::replace(&mut self.state, PushState::Done) {
            PushState::Num { text, .. } => text,
            _ => unreachable!("complete_number only runs in Num state"),
        };
        self.value_complete(Json::Num(Num(text)));
    }

    /// Dispatch the first byte of a value (the recursive `value()`).
    fn dispatch_value(&mut self, b: u8) -> Result<bool, WireError> {
        if self.stack.len() >= MAX_DEPTH {
            return Err(syntax_at(
                self.pos,
                format!("nesting deeper than {MAX_DEPTH}"),
            ));
        }
        match b {
            b'{' => {
                self.stack.push(Frame::Obj(Vec::new(), None));
                self.state = PushState::AwaitKeyOrEnd;
            }
            b'[' => {
                self.stack.push(Frame::Arr(Vec::new()));
                self.state = PushState::AwaitItemOrEnd;
            }
            b'"' => {
                self.state = PushState::Str {
                    role: StrRole::Value,
                    out: String::new(),
                    sub: StrSub::Normal,
                };
            }
            b't' | b'f' | b'n' => {
                let (word, value): (&'static [u8], Json) = match b {
                    b't' => (b"true", Json::Bool(true)),
                    b'f' => (b"false", Json::Bool(false)),
                    _ => (b"null", Json::Null),
                };
                self.state = PushState::Literal {
                    word,
                    matched: 1,
                    start: self.pos,
                    value,
                };
            }
            b'-' => {
                self.state = PushState::Num {
                    text: "-".to_string(),
                    phase: NumPhase::IntFirst,
                };
            }
            b'0'..=b'9' => {
                self.state = PushState::Num {
                    text: (b as char).to_string(),
                    phase: NumPhase::Int,
                };
            }
            c => {
                return Err(syntax_at(
                    self.pos,
                    format!("unexpected character '{}'", c as char),
                ))
            }
        }
        Ok(true)
    }

    /// Process one byte. `Ok(true)` consumed it; `Ok(false)` changed
    /// state without consuming (the byte is re-dispatched).
    fn step(&mut self, b: u8) -> Result<bool, WireError> {
        // Whitespace is insignificant everywhere outside scalar
        // literals.
        if matches!(
            self.state,
            PushState::AwaitValue
                | PushState::AwaitItemOrEnd
                | PushState::AwaitKeyOrEnd
                | PushState::AwaitColon
                | PushState::AwaitCommaOrEnd
                | PushState::Done
        ) && matches!(b, b' ' | b'\t' | b'\n' | b'\r')
        {
            return Ok(true);
        }
        match &mut self.state {
            PushState::AwaitValue => self.dispatch_value(b),
            PushState::AwaitItemOrEnd => {
                if b == b']' {
                    self.close_container();
                    Ok(true)
                } else {
                    self.dispatch_value(b)
                }
            }
            PushState::AwaitKeyOrEnd => match b {
                b'}' => {
                    self.close_container();
                    Ok(true)
                }
                b'"' => {
                    self.state = PushState::Str {
                        role: StrRole::Key,
                        out: String::new(),
                        sub: StrSub::Normal,
                    };
                    Ok(true)
                }
                _ => Err(syntax_at(self.pos, "expected '\"'")),
            },
            PushState::AwaitColon => {
                if b == b':' {
                    self.state = PushState::AwaitValue;
                    Ok(true)
                } else {
                    Err(syntax_at(self.pos, "expected ':'"))
                }
            }
            PushState::AwaitCommaOrEnd => {
                let in_obj = matches!(self.stack.last(), Some(Frame::Obj(..)));
                match (b, in_obj) {
                    (b',', true) => {
                        self.state = PushState::AwaitKeyOrEnd;
                        Ok(true)
                    }
                    (b',', false) => {
                        self.state = PushState::AwaitItemOrEnd;
                        Ok(true)
                    }
                    (b'}', true) | (b']', false) => {
                        self.close_container();
                        Ok(true)
                    }
                    (_, true) => Err(syntax_at(self.pos, "expected ',' or '}' in object")),
                    (_, false) => Err(syntax_at(self.pos, "expected ',' or ']' in array")),
                }
            }
            PushState::Done => Err(syntax_at(
                self.pos,
                "trailing characters after the top-level value",
            )),
            PushState::Literal {
                word,
                matched,
                start,
                value,
            } => {
                if *matched < word.len() && b == word[*matched] {
                    *matched += 1;
                    if *matched == word.len() {
                        let v = value.clone();
                        self.value_complete(v);
                    }
                    Ok(true)
                } else {
                    let word = std::str::from_utf8(word).expect("ASCII literal");
                    Err(syntax_at(*start, format!("expected '{word}'")))
                }
            }
            PushState::Num { text, phase } => {
                use NumPhase::*;
                match (*phase, b) {
                    (IntFirst, b'0'..=b'9') => {
                        text.push(b as char);
                        *phase = Int;
                        Ok(true)
                    }
                    (IntFirst, _) => Err(syntax_at(self.pos, "expected digits")),
                    (Int, b'0'..=b'9') | (Frac, b'0'..=b'9') | (Exp, b'0'..=b'9') => {
                        text.push(b as char);
                        Ok(true)
                    }
                    (Int, b'.') => {
                        text.push('.');
                        *phase = FracFirst;
                        Ok(true)
                    }
                    (Int, b'e' | b'E') | (Frac, b'e' | b'E') => {
                        text.push(b as char);
                        *phase = ExpStart;
                        Ok(true)
                    }
                    (FracFirst, b'0'..=b'9') => {
                        text.push(b as char);
                        *phase = Frac;
                        Ok(true)
                    }
                    (FracFirst, _) => Err(syntax_at(self.pos, "expected digits after '.'")),
                    (ExpStart, b'+' | b'-') => {
                        text.push(b as char);
                        *phase = ExpFirst;
                        Ok(true)
                    }
                    (ExpStart, b'0'..=b'9') | (ExpFirst, b'0'..=b'9') => {
                        text.push(b as char);
                        *phase = Exp;
                        Ok(true)
                    }
                    (ExpStart, _) | (ExpFirst, _) => {
                        Err(syntax_at(self.pos, "expected digits in exponent"))
                    }
                    // A byte that cannot extend the number terminates
                    // it; re-dispatch in the enclosing state.
                    (Int, _) | (Frac, _) | (Exp, _) => {
                        self.complete_number();
                        Ok(false)
                    }
                }
            }
            PushState::Str { role, out, sub } => match sub {
                StrSub::Normal => match b {
                    b'"' => {
                        let s = std::mem::take(out);
                        match role {
                            StrRole::Value => self.value_complete(Json::Str(s)),
                            StrRole::Key => {
                                match self.stack.last_mut() {
                                    Some(Frame::Obj(_, key)) => *key = Some(s),
                                    _ => unreachable!("keys only parse inside objects"),
                                }
                                self.state = PushState::AwaitColon;
                            }
                        }
                        Ok(true)
                    }
                    b'\\' => {
                        *sub = StrSub::Escape;
                        Ok(true)
                    }
                    c if c < 0x20 => {
                        // The recursive parser consumed the byte before
                        // erroring, so the offset is one past it.
                        Err(syntax_at(
                            self.pos + 1,
                            "unescaped control character in string",
                        ))
                    }
                    c if c < 0x80 => {
                        out.push(c as char);
                        Ok(true)
                    }
                    c => {
                        *sub = StrSub::Utf8 {
                            bytes: [c, 0, 0, 0],
                            n: 1,
                        };
                        Ok(true)
                    }
                },
                StrSub::Escape => match b {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {
                        out.push(match b {
                            b'"' => '"',
                            b'\\' => '\\',
                            b'/' => '/',
                            b'b' => '\u{8}',
                            b'f' => '\u{c}',
                            b'n' => '\n',
                            b'r' => '\r',
                            _ => '\t',
                        });
                        *sub = StrSub::Normal;
                        Ok(true)
                    }
                    b'u' => {
                        *sub = StrSub::Hex {
                            digits: [0; 4],
                            n: 0,
                            start: self.pos + 1,
                        };
                        Ok(true)
                    }
                    other => Err(syntax_at(
                        self.pos + 1,
                        format!("unknown escape '\\{}'", other as char),
                    )),
                },
                StrSub::Hex { digits, n, start } => {
                    digits[*n] = b;
                    *n += 1;
                    if *n < 4 {
                        return Ok(true);
                    }
                    let (digits, start) = (*digits, *start);
                    let unit = decode_hex4(&digits)
                        .ok_or_else(|| syntax_at(start, "bad \\u escape digits"))?;
                    let after = self.pos + 1; // offset past the 4 digits
                    if (0xd800..0xdc00).contains(&unit) {
                        *sub = StrSub::LowSlash {
                            high: unit,
                            entry: after,
                        };
                    } else if (0xdc00..0xe000).contains(&unit) {
                        return Err(syntax_at(after, "unpaired low surrogate"));
                    } else {
                        let ch = char::from_u32(unit as u32)
                            .ok_or_else(|| syntax_at(after, "invalid code point"))?;
                        out.push(ch);
                        *sub = StrSub::Normal;
                    }
                    Ok(true)
                }
                StrSub::LowSlash { high, entry } => {
                    if b == b'\\' {
                        *sub = StrSub::LowU {
                            high: *high,
                            entry: *entry,
                        };
                        Ok(true)
                    } else {
                        Err(syntax_at(*entry, "unpaired high surrogate"))
                    }
                }
                StrSub::LowU { high, entry } => {
                    if b == b'u' {
                        *sub = StrSub::LowHex {
                            high: *high,
                            digits: [0; 4],
                            n: 0,
                            start: self.pos + 1,
                        };
                        Ok(true)
                    } else {
                        Err(syntax_at(*entry, "unpaired high surrogate"))
                    }
                }
                StrSub::LowHex {
                    high,
                    digits,
                    n,
                    start,
                } => {
                    digits[*n] = b;
                    *n += 1;
                    if *n < 4 {
                        return Ok(true);
                    }
                    let (high, digits, start) = (*high, *digits, *start);
                    let low = decode_hex4(&digits)
                        .ok_or_else(|| syntax_at(start, "bad \\u escape digits"))?;
                    let after = self.pos + 1;
                    if !(0xdc00..0xe000).contains(&low) {
                        return Err(syntax_at(after, "invalid low surrogate"));
                    }
                    let c = 0x10000 + ((high as u32 - 0xd800) << 10) + (low as u32 - 0xdc00);
                    let ch =
                        char::from_u32(c).ok_or_else(|| syntax_at(after, "invalid code point"))?;
                    out.push(ch);
                    *sub = StrSub::Normal;
                    Ok(true)
                }
                StrSub::Utf8 { bytes, n } => {
                    if b & 0xc0 == 0x80 && *n < 4 {
                        bytes[*n] = b;
                        *n += 1;
                        if *n == 4 {
                            let run = *bytes;
                            let s = std::str::from_utf8(&run)
                                .map_err(|_| syntax_at(self.pos + 1, "invalid UTF-8 in string"))?;
                            out.push_str(s);
                            *sub = StrSub::Normal;
                        }
                        Ok(true)
                    } else {
                        // The run ended; validate it, then re-dispatch
                        // the terminating byte as normal content.
                        let (run, len) = (*bytes, *n);
                        let s = std::str::from_utf8(&run[..len])
                            .map_err(|_| syntax_at(self.pos, "invalid UTF-8 in string"))?;
                        out.push_str(s);
                        *sub = StrSub::Normal;
                        Ok(false)
                    }
                }
            },
        }
    }
}

fn syntax_at(offset: usize, message: impl Into<String>) -> WireError {
    WireError::Syntax {
        offset,
        message: message.into(),
    }
}

/// The recursive parser's `hex4` digit decode: UTF-8, then
/// `u16::from_str_radix(…, 16)` (which tolerates a leading `+`) —
/// byte-compatible on every input.
fn decode_hex4(digits: &[u8; 4]) -> Option<u16> {
    std::str::from_utf8(digits)
        .ok()
        .and_then(|h| u16::from_str_radix(h, 16).ok())
}

// ---------------------------------------------------------------------------
// Field-access helpers (decode side)
// ---------------------------------------------------------------------------

fn require<'a>(obj: &'a Json, field: &'static str) -> Result<&'a Json, WireError> {
    obj.get(field).ok_or(WireError::Missing { field })
}

fn get_u64(obj: &Json, field: &'static str) -> Result<Option<u64>, WireError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| WireError::invalid(field, "expected a non-negative integer")),
        Some(_) => Err(WireError::invalid(field, "expected a number")),
    }
}

fn get_usize(obj: &Json, field: &'static str) -> Result<Option<usize>, WireError> {
    match get_u64(obj, field)? {
        None => Ok(None),
        // Checked, not `as`: on a 32-bit target an oversized count must
        // be a 400, not a silent truncation to a tiny value.
        Some(v) => usize::try_from(v)
            .map(Some)
            .map_err(|_| WireError::invalid(field, "value does not fit this platform's usize")),
    }
}

fn get_f32(obj: &Json, field: &'static str) -> Result<Option<f32>, WireError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        // Finite only: `1e999` parses to f64 infinity (and a finite
        // 1e300 overflows the f32 narrowing) — values the campaign
        // builder does not re-check on every field, so they must be
        // typed 400s here rather than inf smuggled into a GA sigma.
        Some(Json::Num(n)) => match n.as_f32() {
            Some(f) if f.is_finite() => Ok(Some(f)),
            _ => Err(WireError::invalid(
                field,
                "expected a number representable as a finite f32",
            )),
        },
        Some(_) => Err(WireError::invalid(field, "expected a number")),
    }
}

fn get_str<'a>(obj: &'a Json, field: &'static str) -> Result<Option<&'a str>, WireError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s)),
        Some(_) => Err(WireError::invalid(field, "expected a string")),
    }
}

fn as_num<'a>(v: &'a Json, field: &str) -> Result<&'a Num, WireError> {
    match v {
        Json::Num(n) => Ok(n),
        _ => Err(WireError::invalid(field, "expected a number")),
    }
}

/// A duration field with unit aliases: `<base>_ns` (exact integer
/// nanoseconds, the canonical encode form), `<base>_ms`, or `<base>_s`
/// (both possibly fractional).
fn get_duration(
    obj: &Json,
    base: &'static str,
    canonical: &'static str,
) -> Option<Result<Duration, WireError>> {
    let lookup = |suffix: &str, scale: f64| -> Option<Result<Duration, WireError>> {
        let key = format!("{base}{suffix}");
        let v = obj.get(&key)?;
        Some(match v {
            Json::Num(n) => match n.as_f64() {
                // try_from: a finite but absurd value (1e30 s overflows
                // Duration) must be a 400, not a handler-thread panic.
                Some(f) if f.is_finite() && f >= 0.0 => Duration::try_from_secs_f64(f * scale)
                    .map_err(|_| WireError::invalid(key.clone(), "duration is out of range")),
                _ => Err(WireError::invalid(key, "expected a non-negative number")),
            },
            _ => Err(WireError::invalid(key, "expected a number")),
        })
    };
    // Canonical form first: exact nanos, no float detour.
    if let Some(v) = obj.get(canonical) {
        return Some(match v {
            Json::Num(n) => n
                .as_u64()
                .map(Duration::from_nanos)
                .ok_or_else(|| WireError::invalid(canonical, "expected integer nanoseconds")),
            _ => Err(WireError::invalid(canonical, "expected a number")),
        });
    }
    lookup("_ms", 1e-3).or_else(|| lookup("_s", 1.0))
}

// ---------------------------------------------------------------------------
// Campaign codec
// ---------------------------------------------------------------------------

/// Encode a [`CampaignSpec`] as its wire object.
pub fn campaign_to_json(spec: &CampaignSpec) -> Json {
    let ga = &spec.ga;
    let mut members = vec![
        ("name".into(), Json::str(&spec.name)),
        ("seed".into(), Json::u64(spec.seed)),
        ("top_k".into(), Json::usize(spec.top_k)),
        (
            "ga".into(),
            Json::Obj(vec![
                ("population".into(), Json::usize(ga.population)),
                ("generations".into(), Json::usize(ga.generations)),
                ("tournament".into(), Json::usize(ga.tournament)),
                ("crossover_rate".into(), Json::f32(ga.crossover_rate)),
                ("mutation_rate".into(), Json::f32(ga.mutation_rate)),
                ("sigma_translation".into(), Json::f32(ga.sigma_translation)),
                ("sigma_rotation".into(), Json::f32(ga.sigma_rotation)),
                ("sigma_torsion".into(), Json::f32(ga.sigma_torsion)),
                ("elitism".into(), Json::usize(ga.elitism)),
            ]),
        ),
        ("backend".into(), backend_to_json(spec.backend)),
        ("stop".into(), stop_to_json(spec.stop)),
        ("chunk".into(), chunk_to_json(spec.chunk)),
        ("shard".into(), shard_to_json(spec.shard)),
    ];
    if let Some(r) = spec.search_radius {
        members.push(("search_radius".into(), Json::f32(r)));
    }
    if let Some(ls) = spec.local_search {
        members.push((
            "local_search".into(),
            Json::Obj(vec![
                ("max_evals".into(), Json::usize(ls.max_evals)),
                ("rho_start".into(), Json::f32(ls.rho_start)),
                ("rho_min".into(), Json::f32(ls.rho_min)),
                ("expand_after".into(), Json::usize(ls.expand_after)),
                ("contract_after".into(), Json::usize(ls.contract_after)),
                ("fraction".into(), Json::f32(ls.fraction)),
            ]),
        ));
    }
    if let Some(d) = spec.grid_dims {
        members.push((
            "grid_dims".into(),
            Json::Obj(vec![
                (
                    "npts".into(),
                    Json::Arr(d.npts.iter().map(|&n| Json::u64(n as u64)).collect()),
                ),
                ("spacing".into(), Json::f32(d.spacing)),
                (
                    "origin".into(),
                    Json::Arr(vec![
                        Json::f32(d.origin.x),
                        Json::f32(d.origin.y),
                        Json::f32(d.origin.z),
                    ]),
                ),
            ]),
        ));
    }
    Json::Obj(members)
}

fn backend_to_json(policy: BackendPolicy) -> Json {
    match policy {
        BackendPolicy::Detect => Json::str("detect"),
        BackendPolicy::Fixed(b) => Json::Obj(vec![("fixed".into(), Json::str(b.name()))]),
        BackendPolicy::Pinned(l) => Json::Obj(vec![("pinned".into(), Json::str(l.name()))]),
    }
}

fn stop_to_json(policy: StopPolicy) -> Json {
    match policy {
        StopPolicy::Complete => Json::str("complete"),
        StopPolicy::MaxEvaluations(n) => Json::Obj(vec![("max_evaluations".into(), Json::u64(n))]),
        StopPolicy::Deadline(d) => {
            Json::Obj(vec![("deadline_ns".into(), Json::u64(duration_nanos(d)))])
        }
        StopPolicy::RankingStable { window, epsilon } => Json::Obj(vec![(
            "ranking_stable".into(),
            Json::Obj(vec![
                ("window".into(), Json::usize(window)),
                ("epsilon".into(), Json::f32(epsilon)),
            ]),
        )]),
    }
}

fn shard_to_json(policy: ShardPolicy) -> Json {
    match policy {
        ShardPolicy::FairShare => Json::str("fair_share"),
        ShardPolicy::SingleQueue => Json::str("single_queue"),
        ShardPolicy::Weighted(w) => Json::Obj(vec![("weighted".into(), Json::f32(w))]),
    }
}

fn chunk_to_json(policy: ChunkPolicy) -> Json {
    match policy {
        ChunkPolicy::Fixed(n) => Json::Obj(vec![("fixed".into(), Json::usize(n))]),
        ChunkPolicy::Adaptive { target } => Json::Obj(vec![(
            "adaptive_target_ns".into(),
            Json::u64(duration_nanos(target)),
        )]),
    }
}

/// Whole nanoseconds, saturating — a >584-year policy duration encodes
/// as the maximum rather than wrapping.
fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Decode a campaign object and validate it through
/// [`Campaign::builder`]; builder rejections surface as
/// [`WireError::Campaign`] (HTTP 422).
pub fn campaign_from_json(v: &Json) -> Result<CampaignSpec, WireError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(WireError::invalid("campaign", "expected an object"));
    }
    let mut builder = Campaign::builder().name(get_str(v, "name")?.unwrap_or_default());
    if let Some(seed) = get_u64(v, "seed")? {
        builder = builder.seed(seed);
    }
    if let Some(k) = get_usize(v, "top_k")? {
        builder = builder.top_k(k);
    }
    if let Some(r) = get_f32(v, "search_radius")? {
        builder = builder.search_radius(r);
    }
    if let Some(ga) = v.get("ga").filter(|g| !matches!(g, Json::Null)) {
        builder = builder.ga(ga_from_json(ga)?);
    }
    if let Some(ls) = v.get("local_search").filter(|g| !matches!(g, Json::Null)) {
        builder = builder.local_search(local_search_from_json(ls)?);
    }
    if let Some(b) = v.get("backend").filter(|g| !matches!(g, Json::Null)) {
        builder = builder.backend(backend_from_json(b)?);
    }
    if let Some(s) = v.get("stop").filter(|g| !matches!(g, Json::Null)) {
        builder = builder.stop(stop_from_json(s)?);
    }
    if let Some(c) = v.get("chunk").filter(|g| !matches!(g, Json::Null)) {
        builder = builder.chunk(chunk_from_json(c)?);
    }
    if let Some(s) = v.get("shard").filter(|g| !matches!(g, Json::Null)) {
        builder = builder.shard(shard_from_json(s)?);
    }
    if let Some(d) = v.get("grid_dims").filter(|g| !matches!(g, Json::Null)) {
        builder = builder.grid_dims(grid_dims_from_json(d)?);
    }
    Ok(builder.build()?)
}

fn ga_from_json(v: &Json) -> Result<GaParams, WireError> {
    let d = GaParams::default();
    Ok(GaParams {
        population: get_usize(v, "population")?.unwrap_or(d.population),
        generations: get_usize(v, "generations")?.unwrap_or(d.generations),
        tournament: get_usize(v, "tournament")?.unwrap_or(d.tournament),
        crossover_rate: get_f32(v, "crossover_rate")?.unwrap_or(d.crossover_rate),
        mutation_rate: get_f32(v, "mutation_rate")?.unwrap_or(d.mutation_rate),
        sigma_translation: get_f32(v, "sigma_translation")?.unwrap_or(d.sigma_translation),
        sigma_rotation: get_f32(v, "sigma_rotation")?.unwrap_or(d.sigma_rotation),
        sigma_torsion: get_f32(v, "sigma_torsion")?.unwrap_or(d.sigma_torsion),
        elitism: get_usize(v, "elitism")?.unwrap_or(d.elitism),
    })
}

fn local_search_from_json(v: &Json) -> Result<SolisWetsParams, WireError> {
    let d = SolisWetsParams::default();
    Ok(SolisWetsParams {
        max_evals: get_usize(v, "max_evals")?.unwrap_or(d.max_evals),
        rho_start: get_f32(v, "rho_start")?.unwrap_or(d.rho_start),
        rho_min: get_f32(v, "rho_min")?.unwrap_or(d.rho_min),
        expand_after: get_usize(v, "expand_after")?.unwrap_or(d.expand_after),
        contract_after: get_usize(v, "contract_after")?.unwrap_or(d.contract_after),
        fraction: get_f32(v, "fraction")?.unwrap_or(d.fraction),
    })
}

fn backend_from_json(v: &Json) -> Result<BackendPolicy, WireError> {
    match v {
        Json::Str(s) if s == "detect" => Ok(BackendPolicy::Detect),
        Json::Str(s) => Err(WireError::invalid(
            "backend",
            format!(
                "unknown policy '{s}' (use \"detect\", {{\"fixed\": …}}, or {{\"pinned\": …}})"
            ),
        )),
        Json::Obj(_) => {
            if let Some(name) = get_str(v, "fixed")? {
                let b = Backend::parse(name).ok_or_else(|| {
                    WireError::invalid("backend.fixed", format!("unknown backend '{name}'"))
                })?;
                Ok(BackendPolicy::Fixed(b))
            } else if let Some(name) = get_str(v, "pinned")? {
                let l = SimdLevel::parse(name).ok_or_else(|| {
                    WireError::invalid("backend.pinned", format!("unknown SIMD level '{name}'"))
                })?;
                Ok(BackendPolicy::Pinned(l))
            } else {
                Err(WireError::invalid(
                    "backend",
                    "expected a 'fixed' or 'pinned' member",
                ))
            }
        }
        _ => Err(WireError::invalid("backend", "expected a string or object")),
    }
}

fn stop_from_json(v: &Json) -> Result<StopPolicy, WireError> {
    match v {
        Json::Str(s) if s == "complete" => Ok(StopPolicy::Complete),
        Json::Str(s) => Err(WireError::invalid(
            "stop",
            format!("unknown policy '{s}' (use \"complete\" or a tagged object)"),
        )),
        Json::Obj(_) => {
            if let Some(n) = get_u64(v, "max_evaluations")? {
                Ok(StopPolicy::MaxEvaluations(n))
            } else if let Some(d) = get_duration(v, "deadline", "deadline_ns") {
                Ok(StopPolicy::Deadline(d?))
            } else if let Some(rs) = v.get("ranking_stable") {
                Ok(StopPolicy::RankingStable {
                    window: get_usize(rs, "window")?.ok_or(WireError::Missing {
                        field: "stop.ranking_stable.window",
                    })?,
                    epsilon: get_f32(rs, "epsilon")?.unwrap_or(0.0),
                })
            } else {
                Err(WireError::invalid(
                    "stop",
                    "expected 'max_evaluations', 'deadline_ns', or 'ranking_stable'",
                ))
            }
        }
        _ => Err(WireError::invalid("stop", "expected a string or object")),
    }
}

fn shard_from_json(v: &Json) -> Result<ShardPolicy, WireError> {
    match v {
        Json::Str(s) if s == "fair_share" => Ok(ShardPolicy::FairShare),
        Json::Str(s) if s == "single_queue" => Ok(ShardPolicy::SingleQueue),
        Json::Str(s) => Err(WireError::invalid(
            "shard",
            format!(
                "unknown policy '{s}' (use \"fair_share\", \"single_queue\", or \
                 {{\"weighted\": w}})"
            ),
        )),
        Json::Obj(_) => match get_f32(v, "weighted")? {
            Some(w) => Ok(ShardPolicy::Weighted(w)),
            None => Err(WireError::invalid("shard", "expected a 'weighted' member")),
        },
        _ => Err(WireError::invalid("shard", "expected a string or object")),
    }
}

fn chunk_from_json(v: &Json) -> Result<ChunkPolicy, WireError> {
    match v {
        Json::Obj(_) => {
            if let Some(n) = get_usize(v, "fixed")? {
                Ok(ChunkPolicy::Fixed(n))
            } else if let Some(d) = get_duration(v, "adaptive_target", "adaptive_target_ns") {
                Ok(ChunkPolicy::Adaptive { target: d? })
            } else {
                Err(WireError::invalid(
                    "chunk",
                    "expected 'fixed' or 'adaptive_target_ns'",
                ))
            }
        }
        _ => Err(WireError::invalid("chunk", "expected an object")),
    }
}

fn grid_dims_from_json(v: &Json) -> Result<GridDims, WireError> {
    let npts = match require(v, "npts")? {
        Json::Arr(items) if items.len() == 3 => {
            let mut out = [0u32; 3];
            for (i, item) in items.iter().enumerate() {
                let n = as_num(item, "grid_dims.npts")?
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| WireError::invalid("grid_dims.npts", "expected u32 counts"))?;
                if n == 0 {
                    return Err(WireError::invalid(
                        "grid_dims.npts",
                        "counts must be positive",
                    ));
                }
                out[i] = n;
            }
            out
        }
        _ => {
            return Err(WireError::invalid(
                "grid_dims.npts",
                "expected [nx, ny, nz]",
            ))
        }
    };
    let spacing = get_f32(v, "spacing")?.ok_or(WireError::Missing {
        field: "grid_dims.spacing",
    })?;
    if !spacing.is_finite() || spacing <= 0.0 {
        return Err(WireError::invalid(
            "grid_dims.spacing",
            "must be finite and positive",
        ));
    }
    let origin = match require(v, "origin")? {
        Json::Arr(items) if items.len() == 3 => {
            let mut xyz = [0f32; 3];
            for (i, item) in items.iter().enumerate() {
                xyz[i] = as_num(item, "grid_dims.origin")?
                    .as_f32()
                    .ok_or_else(|| WireError::invalid("grid_dims.origin", "expected numbers"))?;
            }
            Vec3::new(xyz[0], xyz[1], xyz[2])
        }
        _ => return Err(WireError::invalid("grid_dims.origin", "expected [x, y, z]")),
    };
    Ok(GridDims {
        npts,
        spacing,
        origin,
    })
}

// ---------------------------------------------------------------------------
// Submission codec (receptor + ligands + priority)
// ---------------------------------------------------------------------------

/// A decoded `POST /jobs` payload, ready to bind into a
/// [`JobSpec`](crate::job::JobSpec).
///
/// The receptor stays an *unloaded* [`ReceptorSource`]: decoding a
/// submission performs no filesystem access, so the server can apply
/// its source policy (path sources are a server-side read and disabled
/// by default — see `NetConfig::allow_path_sources`) before calling
/// [`ReceptorSource::load`].
#[derive(Clone, Debug)]
pub struct Submission {
    pub campaign: CampaignSpec,
    pub receptor: ReceptorSource,
    pub ligands: LigandSource,
    /// Optional sub-job window: dock only `take` ligands starting at
    /// global index `skip`. Set by a cluster coordinator fanning one
    /// campaign out; absent for whole-stream submissions.
    pub slice: Option<LigandSlice>,
    pub priority: Priority,
}

impl Submission {
    /// Does this submission name any server-side filesystem path?
    pub fn uses_path_sources(&self) -> bool {
        matches!(self.receptor, ReceptorSource::Path(_))
            || matches!(self.ligands, LigandSource::PdbqtFile(_))
    }

    /// Materialize the receptor (shared allocation for the executor).
    pub fn load_receptor(&self) -> Result<Arc<Molecule>, WireError> {
        self.receptor.load().map(Arc::new)
    }
}

/// Decode a submission body (already-parsed JSON). Performs no I/O —
/// see [`Submission`] for why the receptor stays a source.
pub fn submission_from_json(v: &Json) -> Result<Submission, WireError> {
    let campaign = campaign_from_json(require(v, "campaign")?)?;
    let receptor = receptor_from_json(require(v, "receptor")?)?;
    let ligands = ligands_from_json(require(v, "ligands")?)?;
    let priority = match get_str(v, "priority")? {
        None => Priority::Normal,
        Some(s) => priority_parse(s)
            .ok_or_else(|| WireError::invalid("priority", format!("unknown priority '{s}'")))?,
    };
    let slice = match v.get("slice") {
        None | Some(Json::Null) => None,
        Some(s) => {
            let skip = get_usize(s, "skip")?.ok_or(WireError::Missing {
                field: "slice.skip",
            })?;
            let take = get_usize(s, "take")?.ok_or(WireError::Missing {
                field: "slice.take",
            })?;
            if take == 0 {
                return Err(WireError::invalid("slice.take", "must be positive"));
            }
            Some(LigandSlice { skip, take })
        }
    };
    Ok(Submission {
        campaign,
        receptor,
        ligands,
        slice,
        priority,
    })
}

/// Encode the submission for a campaign + molecule bindings (the client
/// side of `POST /jobs`).
pub fn submission_to_json(
    campaign: &CampaignSpec,
    receptor: &ReceptorSource,
    ligands: &LigandSource,
    priority: Priority,
) -> Result<Json, WireError> {
    sliced_submission_to_json(campaign, receptor, ligands, None, priority)
}

/// [`submission_to_json`] plus an optional sub-job window (`slice`) —
/// the coordinator side of cluster scatter.
pub fn sliced_submission_to_json(
    campaign: &CampaignSpec,
    receptor: &ReceptorSource,
    ligands: &LigandSource,
    slice: Option<LigandSlice>,
    priority: Priority,
) -> Result<Json, WireError> {
    let mut members = vec![
        ("campaign".into(), campaign_to_json(campaign)),
        ("receptor".into(), receptor_to_json(receptor)),
        ("ligands".into(), ligands_to_json(ligands)?),
        ("priority".into(), Json::str(priority_name(priority))),
    ];
    if let Some(s) = slice {
        members.push((
            "slice".into(),
            Json::Obj(vec![
                ("skip".into(), Json::usize(s.skip)),
                ("take".into(), Json::usize(s.take)),
            ]),
        ));
    }
    Ok(Json::Obj(members))
}

/// Where a submission's receptor comes from (the wire-side mirror of
/// [`LigandSource`], for the single target molecule).
#[derive(Clone, Debug, PartialEq)]
pub enum ReceptorSource {
    /// `mudock_molio::synthetic_receptor(seed, atoms, radius)`.
    Synth {
        seed: u64,
        atoms: usize,
        radius: f32,
    },
    /// Inline PDBQT text.
    Pdbqt(String),
    /// A path readable by the *server* process.
    Path(String),
}

impl ReceptorSource {
    /// Materialize the molecule (server side).
    pub fn load(&self) -> Result<Molecule, WireError> {
        match self {
            ReceptorSource::Synth {
                seed,
                atoms,
                radius,
            } => Ok(mudock_molio::synthetic_receptor(*seed, *atoms, *radius)),
            ReceptorSource::Pdbqt(text) => mudock_molio::parse(text)
                .map_err(|e| WireError::invalid("receptor.pdbqt", e.to_string())),
            ReceptorSource::Path(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| WireError::invalid("receptor.path", format!("{path}: {e}")))?;
                mudock_molio::parse(&text)
                    .map_err(|e| WireError::invalid("receptor.path", e.to_string()))
            }
        }
    }
}

fn receptor_to_json(src: &ReceptorSource) -> Json {
    match src {
        ReceptorSource::Synth {
            seed,
            atoms,
            radius,
        } => Json::Obj(vec![(
            "synth".into(),
            Json::Obj(vec![
                ("seed".into(), Json::u64(*seed)),
                ("atoms".into(), Json::usize(*atoms)),
                ("radius".into(), Json::f32(*radius)),
            ]),
        )]),
        ReceptorSource::Pdbqt(text) => Json::Obj(vec![("pdbqt".into(), Json::str(text))]),
        ReceptorSource::Path(path) => Json::Obj(vec![("path".into(), Json::str(path))]),
    }
}

fn receptor_from_json(v: &Json) -> Result<ReceptorSource, WireError> {
    let src = if let Some(synth) = v.get("synth") {
        ReceptorSource::Synth {
            seed: get_u64(synth, "seed")?.unwrap_or(0),
            atoms: get_usize(synth, "atoms")?.ok_or(WireError::Missing {
                field: "receptor.synth.atoms",
            })?,
            radius: get_f32(synth, "radius")?.ok_or(WireError::Missing {
                field: "receptor.synth.radius",
            })?,
        }
    } else if let Some(text) = get_str(v, "pdbqt")? {
        ReceptorSource::Pdbqt(text.to_string())
    } else if let Some(path) = get_str(v, "path")? {
        ReceptorSource::Path(path.to_string())
    } else {
        return Err(WireError::invalid(
            "receptor",
            "expected a 'synth', 'pdbqt', or 'path' member",
        ));
    };
    Ok(src)
}

/// Encode a [`LigandSource`]. Pre-materialized
/// [`LigandSource::Molecules`] have no wire form — ship them as PDBQT
/// text instead.
pub fn ligands_to_json(src: &LigandSource) -> Result<Json, WireError> {
    match src {
        LigandSource::Synth { seed, count } => Ok(Json::Obj(vec![(
            "synth".into(),
            Json::Obj(vec![
                ("seed".into(), Json::u64(*seed)),
                ("count".into(), Json::usize(*count)),
            ]),
        )])),
        LigandSource::PdbqtText(text) => {
            Ok(Json::Obj(vec![("pdbqt".into(), Json::str(text.as_str()))]))
        }
        LigandSource::PdbqtFile(path) => Ok(Json::Obj(vec![(
            "path".into(),
            Json::str(path.to_string_lossy()),
        )])),
        LigandSource::Molecules(_) => Err(WireError::invalid(
            "ligands",
            "pre-materialized molecules have no wire form; send PDBQT text",
        )),
    }
}

/// Decode a [`LigandSource`] from its wire object.
pub fn ligands_from_json(v: &Json) -> Result<LigandSource, WireError> {
    if let Some(synth) = v.get("synth") {
        Ok(LigandSource::Synth {
            seed: get_u64(synth, "seed")?.unwrap_or(0),
            count: get_usize(synth, "count")?.ok_or(WireError::Missing {
                field: "ligands.synth.count",
            })?,
        })
    } else if let Some(text) = get_str(v, "pdbqt")? {
        Ok(LigandSource::from_pdbqt(text))
    } else if let Some(path) = get_str(v, "path")? {
        Ok(LigandSource::from_file(path))
    } else {
        Err(WireError::invalid(
            "ligands",
            "expected a 'synth', 'pdbqt', or 'path' member",
        ))
    }
}

// ---------------------------------------------------------------------------
// Job status / outcome codec
// ---------------------------------------------------------------------------

/// Wire name of a [`JobState`].
pub fn state_name(state: JobState) -> &'static str {
    match state {
        JobState::Queued => "queued",
        JobState::Running => "running",
        JobState::Completed => "completed",
        JobState::Cancelled => "cancelled",
        JobState::Failed => "failed",
    }
}

/// Parse a [`JobState`] wire name.
pub fn state_parse(s: &str) -> Option<JobState> {
    Some(match s {
        "queued" => JobState::Queued,
        "running" => JobState::Running,
        "completed" => JobState::Completed,
        "cancelled" => JobState::Cancelled,
        "failed" => JobState::Failed,
        _ => return None,
    })
}

/// Wire name of a [`Priority`].
pub fn priority_name(p: Priority) -> &'static str {
    match p {
        Priority::Low => "low",
        Priority::Normal => "normal",
        Priority::High => "high",
    }
}

/// Parse a [`Priority`] wire name.
pub fn priority_parse(s: &str) -> Option<Priority> {
    Some(match s {
        "low" => Priority::Low,
        "normal" => Priority::Normal,
        "high" => Priority::High,
        _ => return None,
    })
}

/// One `GET /jobs/{id}` response, decoded.
#[derive(Clone, Debug)]
pub struct JobStatus {
    pub id: JobId,
    pub name: String,
    pub state: JobState,
    pub ligands_done: usize,
    pub chunks_done: usize,
    /// Per-stage wall-clock breakdown; `None` when the peer predates
    /// stage tracing.
    pub stages: Option<StageTimings>,
    /// Present once the job reached a terminal state.
    pub outcome: Option<JobOutcome>,
}

impl JobStatus {
    /// Has the job reached a terminal state?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self.state,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Encode a status snapshot (server side of `GET /jobs/{id}`).
pub fn status_to_json(
    id: JobId,
    name: &str,
    state: JobState,
    ligands_done: usize,
    chunks_done: usize,
    stages: &StageTimings,
    outcome: Option<&JobOutcome>,
) -> Json {
    let mut members = vec![
        ("id".into(), Json::u64(id)),
        ("name".into(), Json::str(name)),
        ("state".into(), Json::str(state_name(state))),
        ("ligands_done".into(), Json::usize(ligands_done)),
        ("chunks_done".into(), Json::usize(chunks_done)),
        ("stages".into(), stages_to_json(stages)),
    ];
    if let Some(o) = outcome {
        members.push(("outcome".into(), outcome_to_json(o)));
    }
    Json::Obj(members)
}

/// Encode a [`StageTimings`] breakdown: one key per stage, `null`
/// until that stage has happened.
fn stages_to_json(s: &StageTimings) -> Json {
    let opt = |v: Option<u64>| match v {
        Some(n) => Json::u64(n),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("queue_wait_ns".into(), opt(s.queue_wait_ns)),
        ("grid_ns".into(), opt(s.grid_ns)),
        (
            "grid_source".into(),
            match s.grid_source {
                Some(g) => Json::str(g.name()),
                None => Json::Null,
            },
        ),
        ("dock_ns".into(), opt(s.dock_ns)),
        ("dock_chunks".into(), Json::u64(s.dock_chunks)),
        ("sink_ns".into(), opt(s.sink_ns)),
        ("total_ns".into(), opt(s.total_ns)),
    ])
}

/// Decode a `stages` object. Tolerant by design: every field defaults
/// to "not yet", and an unknown `grid_source` decodes as absent rather
/// than failing the whole status.
fn stages_from_json(v: &Json) -> Result<StageTimings, WireError> {
    Ok(StageTimings {
        queue_wait_ns: get_u64(v, "queue_wait_ns")?,
        grid_ns: get_u64(v, "grid_ns")?,
        grid_source: get_str(v, "grid_source")?.and_then(GridSource::parse),
        dock_ns: get_u64(v, "dock_ns")?,
        dock_chunks: get_u64(v, "dock_chunks")?.unwrap_or(0),
        sink_ns: get_u64(v, "sink_ns")?,
        total_ns: get_u64(v, "total_ns")?,
    })
}

fn outcome_to_json(o: &JobOutcome) -> Json {
    Json::Obj(vec![
        ("replayed_chunks".into(), Json::usize(o.replayed_chunks)),
        ("grid_cache_hit".into(), Json::Bool(o.grid_cache_hit)),
        ("stopped_early".into(), Json::Bool(o.stopped_early)),
        ("elapsed_ns".into(), Json::u64(duration_nanos(o.elapsed))),
        (
            "error".into(),
            match &o.error {
                Some(e) => Json::str(e),
                None => Json::Null,
            },
        ),
        (
            "top".into(),
            Json::Arr(
                o.top
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("index".into(), Json::usize(r.index)),
                            ("name".into(), Json::str(&r.name)),
                            ("score".into(), Json::f32(r.score)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode a status response (client side of `GET /jobs/{id}`).
pub fn status_from_json(v: &Json) -> Result<JobStatus, WireError> {
    let id = get_u64(v, "id")?.ok_or(WireError::Missing { field: "id" })?;
    let name = get_str(v, "name")?.unwrap_or_default().to_string();
    let state_str = get_str(v, "state")?.ok_or(WireError::Missing { field: "state" })?;
    let state = state_parse(state_str)
        .ok_or_else(|| WireError::invalid("state", format!("unknown state '{state_str}'")))?;
    let ligands_done = get_usize(v, "ligands_done")?.unwrap_or(0);
    let chunks_done = get_usize(v, "chunks_done")?.unwrap_or(0);
    let stages = match v.get("stages") {
        None | Some(Json::Null) => None,
        Some(s) => Some(stages_from_json(s)?),
    };
    let outcome = match v.get("outcome") {
        None | Some(Json::Null) => None,
        Some(o) => Some(JobOutcome {
            id,
            name: name.clone(),
            state,
            ligands_done,
            chunks_done,
            replayed_chunks: get_usize(o, "replayed_chunks")?.unwrap_or(0),
            grid_cache_hit: matches!(o.get("grid_cache_hit"), Some(Json::Bool(true))),
            stopped_early: matches!(o.get("stopped_early"), Some(Json::Bool(true))),
            elapsed: Duration::from_nanos(get_u64(o, "elapsed_ns")?.unwrap_or(0)),
            error: get_str(o, "error")?.map(str::to_string),
            top: match o.get("top") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|e| {
                        Ok(RankedLigand {
                            index: get_usize(e, "index")?
                                .ok_or(WireError::Missing { field: "top.index" })?,
                            name: get_str(e, "name")?.unwrap_or_default().to_string(),
                            score: get_f32(e, "score")?
                                .ok_or(WireError::Missing { field: "top.score" })?,
                        })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?,
                _ => Vec::new(),
            },
        }),
    };
    Ok(JobStatus {
        id,
        name,
        state,
        ligands_done,
        chunks_done,
        stages,
        outcome,
    })
}

/// Encode [`ServiceStats`] (the `GET /stats` body). `shards` lists
/// every receptor shard the service has seen — depth (`queued`),
/// occupancy (`active`), weight, and cumulative submissions per shard
/// — and `shard_count` its length, so scripts can assert multi-receptor
/// behavior without walking the array.
pub fn stats_to_json(stats: &ServiceStats) -> Json {
    let shards: Vec<Json> = stats
        .shards
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("key".into(), Json::str(format!("{:016x}", s.key))),
                ("queued".into(), Json::usize(s.queued)),
                ("active".into(), Json::usize(s.active)),
                ("weight".into(), Json::f32(s.weight)),
                ("submitted".into(), Json::u64(s.submitted)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("jobs_submitted".into(), Json::u64(stats.jobs_submitted)),
        ("jobs_completed".into(), Json::u64(stats.jobs_completed)),
        ("jobs_cancelled".into(), Json::u64(stats.jobs_cancelled)),
        ("jobs_failed".into(), Json::u64(stats.jobs_failed)),
        ("ligands_docked".into(), Json::u64(stats.ligands_docked)),
        ("queued".into(), Json::usize(stats.queued)),
        ("active".into(), Json::usize(stats.active)),
        ("shard_count".into(), Json::usize(stats.shards.len())),
        ("shards".into(), Json::Arr(shards)),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::u64(stats.cache.hits)),
                ("misses".into(), Json::u64(stats.cache.misses)),
                ("evictions".into(), Json::u64(stats.cache.evictions)),
                ("spills".into(), Json::u64(stats.cache.spills)),
                ("reloads".into(), Json::u64(stats.cache.reloads)),
                ("prefetches".into(), Json::u64(stats.cache.prefetches)),
                ("quarantined".into(), Json::u64(stats.cache.quarantined)),
                ("entries".into(), Json::usize(stats.cache.entries)),
                ("spilled".into(), Json::usize(stats.cache.spilled)),
                ("hit_rate".into(), Json::f64(stats.cache.hit_rate())),
                ("policy".into(), Json::str(stats.cache.policy)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Json {
        let v = parse(text).expect("parses");
        let re = parse(&v.encode()).expect("re-parses");
        assert_eq!(v, re, "encode/parse round trip for {text}");
        v
    }

    #[test]
    fn parser_accepts_the_json_zoo() {
        let v = roundtrip(
            r#" { "a" : [1, -2.5, 1e3, 0.25e-2 ,], "b": {"nested": [true, false, null]},
                  "s": "q\"\\\n\u00e9\ud83d\ude00" , } "#,
        );
        assert_eq!(v.get("a").unwrap(), &parse("[1,-2.5,1e3,0.25e-2]").unwrap());
        assert_eq!(
            v.get("s").unwrap(),
            &Json::Str("q\"\\\né😀".into()),
            "escapes incl. a surrogate pair decode"
        );
    }

    #[test]
    fn parser_rejects_malformed_input_with_offsets() {
        for (text, fragment) in [
            ("", "end of input"),
            ("{", "expected '\"'"),
            ("[1 2]", "expected ','"),
            ("{\"a\" 1}", "expected ':'"),
            ("\"unterminated", "unterminated"),
            ("01x", "trailing"),
            ("1.", "digits after '.'"),
            ("1e", "exponent"),
            ("nul", "expected 'null'"),
            ("\"\\ud800none\"", "surrogate"),
            ("\"\\udc00\"", "surrogate"),
            ("\"\\q\"", "unknown escape"),
            ("{\"a\": 1} junk", "trailing"),
        ] {
            let err = parse(text).expect_err(text);
            match err {
                WireError::Syntax { message, .. } => {
                    assert!(message.contains(fragment), "{text}: {message}");
                }
                other => panic!("{text}: expected Syntax, got {other:?}"),
            }
        }
    }

    #[test]
    fn parser_bounds_nesting_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(matches!(parse(&deep), Err(WireError::Syntax { .. })));
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn numbers_preserve_u64_and_f32_exactly() {
        let big = u64::MAX - 1;
        let v = parse(&Json::u64(big).encode()).unwrap();
        assert_eq!(as_num(&v, "t").unwrap().as_u64(), Some(big));
        for f in [f32::MIN_POSITIVE, -0.1, 1.0 / 3.0, 3.4e38, -0.0] {
            let v = parse(&Json::f32(f).encode()).unwrap();
            assert_eq!(
                as_num(&v, "t").unwrap().as_f32().unwrap().to_bits(),
                f.to_bits()
            );
        }
        // u64::MAX as f64 rounds up to 2^64: that float is *out* of
        // range and must be rejected, not saturated to u64::MAX.
        let v = parse("1.8446744073709552e19").unwrap();
        assert_eq!(as_num(&v, "t").unwrap().as_u64(), None);
        // The largest f64 below 2^64 still converts.
        let v = parse("1.8446744073709550e19").unwrap();
        assert!(as_num(&v, "t").unwrap().as_u64().is_some());
    }

    #[test]
    fn integral_floats_stay_floats_on_the_wire() {
        assert_eq!(Json::f32(2.0).encode(), "2.0");
        assert_eq!(Json::f32(-17.0).encode(), "-17.0");
        let v = parse(&Json::f64(1e300).encode()).unwrap();
        assert_eq!(as_num(&v, "t").unwrap().as_f64(), Some(1e300));
    }

    #[test]
    fn campaign_defaults_round_trip() {
        let spec = Campaign::builder().name("rt").build().unwrap();
        let back = campaign_from_json(&parse(&campaign_to_json(&spec).encode()).unwrap()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn minimal_campaign_object_uses_builder_defaults() {
        let back = campaign_from_json(&parse(r#"{"name":"tiny"}"#).unwrap()).unwrap();
        assert_eq!(back, Campaign::builder().name("tiny").build().unwrap());
    }

    #[test]
    fn duration_unit_aliases_are_accepted() {
        let ms = parse(r#"{"deadline_ms": 1500}"#).unwrap();
        assert_eq!(
            stop_from_json(&ms).unwrap(),
            StopPolicy::Deadline(Duration::from_millis(1500))
        );
        let s = parse(r#"{"deadline_s": 2}"#).unwrap();
        assert_eq!(
            stop_from_json(&s).unwrap(),
            StopPolicy::Deadline(Duration::from_secs(2))
        );
        let chunk = parse(r#"{"adaptive_target_ms": 50}"#).unwrap();
        assert_eq!(
            chunk_from_json(&chunk).unwrap(),
            ChunkPolicy::Adaptive {
                target: Duration::from_millis(50)
            }
        );
    }

    #[test]
    fn invalid_campaign_maps_to_422_and_syntax_to_400() {
        let bad = campaign_from_json(&parse(r#"{"name":"x","top_k":0}"#).unwrap()).unwrap_err();
        assert_eq!(bad, WireError::Campaign(CampaignError::InvalidTopK(0)));
        assert_eq!(bad.http_status(), 422);
        assert_eq!(parse("{nope}").unwrap_err().http_status(), 400);
        let missing = submission_from_json(&parse("{}").unwrap()).unwrap_err();
        assert_eq!(missing, WireError::Missing { field: "campaign" });
        assert_eq!(missing.http_status(), 400);
    }

    #[test]
    fn submission_round_trips_through_text() {
        let campaign = Campaign::builder()
            .name("sub")
            .population(8)
            .generations(4)
            .top_k(3)
            .build()
            .unwrap();
        let body = submission_to_json(
            &campaign,
            &ReceptorSource::Synth {
                seed: 7,
                atoms: 60,
                radius: 6.0,
            },
            &LigandSource::synth(42, 5),
            Priority::High,
        )
        .unwrap()
        .encode();
        let sub = submission_from_json(&parse(&body).unwrap()).unwrap();
        assert_eq!(sub.campaign, campaign);
        assert_eq!(sub.priority, Priority::High);
        assert_eq!(sub.ligands.len_hint(), Some(5));
        assert!(!sub.uses_path_sources());
        assert_eq!(
            sub.receptor,
            ReceptorSource::Synth {
                seed: 7,
                atoms: 60,
                radius: 6.0,
            }
        );
        assert_eq!(
            sub.load_receptor().unwrap().atoms.len(),
            mudock_molio::synthetic_receptor(7, 60, 6.0).atoms.len()
        );
    }

    #[test]
    fn path_sources_decode_without_touching_the_filesystem() {
        // Decoding must not read the named file — the server applies
        // its source policy first. A nonexistent path therefore
        // decodes fine and only load() fails.
        let body = r#"{"campaign": {"name": "p"},
                       "receptor": {"path": "/nonexistent/receptor.pdbqt"},
                       "ligands": {"path": "/nonexistent/library.pdbqt"}}"#;
        let sub = submission_from_json(&parse(body).unwrap()).unwrap();
        assert!(sub.uses_path_sources());
        assert!(matches!(
            sub.load_receptor(),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn status_with_outcome_round_trips() {
        let outcome = JobOutcome {
            id: 9,
            name: "job".into(),
            state: JobState::Completed,
            ligands_done: 12,
            chunks_done: 2,
            replayed_chunks: 1,
            grid_cache_hit: true,
            stopped_early: true,
            top: vec![RankedLigand {
                index: 3,
                name: "lig \"x\"".into(),
                score: -4.75,
            }],
            elapsed: Duration::from_nanos(123_456_789),
            error: None,
        };
        let stages = StageTimings {
            queue_wait_ns: Some(1_500),
            grid_ns: Some(2_000_000),
            grid_source: Some(GridSource::Reloaded),
            dock_ns: Some(40_000_000),
            dock_chunks: 2,
            sink_ns: None,
            total_ns: Some(45_000_000),
        };
        let text = status_to_json(
            9,
            "job",
            JobState::Completed,
            12,
            2,
            &stages,
            Some(&outcome),
        )
        .encode();
        let status = status_from_json(&parse(&text).unwrap()).unwrap();
        assert!(status.is_terminal());
        assert_eq!(status.stages, Some(stages), "stage breakdown round-trips");
        let got = status.outcome.expect("terminal outcome");
        assert_eq!(got.top, outcome.top);
        assert_eq!(got.elapsed, outcome.elapsed);
        assert_eq!(got.stopped_early, outcome.stopped_early);
        assert_eq!(got.replayed_chunks, outcome.replayed_chunks);
    }

    #[test]
    fn status_without_stages_still_decodes() {
        // A status from a peer that predates stage tracing.
        let text = r#"{"id": 1, "name": "old", "state": "running",
                       "ligands_done": 4, "chunks_done": 1}"#;
        let status = status_from_json(&parse(text).unwrap()).unwrap();
        assert_eq!(status.stages, None);
        assert_eq!(status.ligands_done, 4);
    }

    #[test]
    fn materialized_molecules_refuse_a_wire_form() {
        let src = LigandSource::from_molecules(vec![]);
        assert!(matches!(
            ligands_to_json(&src),
            Err(WireError::Invalid { .. })
        ));
    }
}
