//! Service-wide observability wiring: one [`Registry`], the per-stage
//! job histograms, grid/pool counters, and the optional JSONL trace.
//!
//! A single [`ServeObs`] is built at service start and shared (`Arc`)
//! between the executors and every thread of the network frontend's
//! event-loop pool, so `/metrics` and `/stats` read the same atomics
//! the hot paths write. Loops never aggregate through locks: each
//! writes the shared unlabelled totals *and* its own `{loop="i"}`
//! labelled series at the same call sites, so the per-loop samples sum
//! to the totals by construction and any `/metrics` scrape — served by
//! whichever loop owns that connection — sees one consistent registry.
//! All handles are pre-registered here — the job critical path never
//! touches the registry lock, only lock-free counters and histograms.

use std::path::PathBuf;
use std::sync::Arc;

use mudock_obs::{Counter, GridSource, Histogram, JobTrace, Registry, SpanRecord, TraceWriter};

use crate::job::JobId;

/// Where (and how much) to trace: one JSONL line per closed job stage,
/// bounded on disk by periodic compaction.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Trace file path (created/truncated at service start).
    pub path: PathBuf,
    /// Lines retained across compactions (file is bounded at 2×).
    pub capacity: usize,
}

impl TraceConfig {
    pub fn new(path: impl Into<PathBuf>) -> TraceConfig {
        TraceConfig {
            path: path.into(),
            capacity: TraceWriter::DEFAULT_CAPACITY,
        }
    }
}

/// The stage histogram family, `mudock_job_stage_seconds{stage=...}`.
const STAGE_METRIC: &str = "mudock_job_stage_seconds";
const STAGE_HELP: &str = "Per-job stage wall-clock (queue_wait, grid, dock, sink, total)";

/// Shared observability state for one [`ScreenService`](crate::ScreenService).
pub struct ServeObs {
    registry: Registry,
    stage_queue_wait: Arc<Histogram>,
    stage_grid: Arc<Histogram>,
    stage_dock: Arc<Histogram>,
    stage_sink: Arc<Histogram>,
    stage_total: Arc<Histogram>,
    grid_hit: Arc<Counter>,
    grid_built: Arc<Counter>,
    grid_reloaded: Arc<Counter>,
    grid_prefetch: Arc<Counter>,
    pool_tasks: Arc<Counter>,
    pool_steals: Arc<Counter>,
    trace: Option<TraceWriter>,
}

impl ServeObs {
    /// Register the service's metric families in `registry` and open
    /// the trace file, if one is configured.
    pub fn new(registry: Registry, trace: Option<&TraceConfig>) -> std::io::Result<ServeObs> {
        let stage = |name: &str| registry.histogram(STAGE_METRIC, &[("stage", name)], STAGE_HELP);
        let fetch = |src: GridSource| {
            registry.counter(
                "mudock_grid_fetch_total",
                &[("source", src.name())],
                "Grid-set acquisitions by source (hit, built, reloaded)",
            )
        };
        let trace = match trace {
            Some(cfg) => Some(TraceWriter::create(&cfg.path, cfg.capacity)?),
            None => None,
        };
        Ok(ServeObs {
            stage_queue_wait: stage("queue_wait"),
            stage_grid: stage("grid"),
            stage_dock: stage("dock"),
            stage_sink: stage("sink"),
            stage_total: stage("total"),
            grid_hit: fetch(GridSource::Hit),
            grid_built: fetch(GridSource::Built),
            grid_reloaded: fetch(GridSource::Reloaded),
            grid_prefetch: registry.counter(
                "mudock_grid_prefetch_total",
                &[],
                "Spilled grid sets reloaded ahead of demand on a router hint",
            ),
            pool_tasks: registry.counter(
                "mudock_pool_tasks_total",
                &[],
                "Docking tasks executed by the worker pool",
            ),
            pool_steals: registry.counter(
                "mudock_pool_steals_total",
                &[],
                "Of those, tasks stolen from a sibling worker's deque",
            ),
            registry,
            trace,
        })
    }

    /// The registry behind `/metrics`; clone handles freely.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace file path, when tracing is on.
    pub fn trace_path(&self) -> Option<&std::path::Path> {
        self.trace.as_ref().map(|t| t.path())
    }

    /// The `mudock_grid_prefetch_total` handle — the grid cache's
    /// prefetcher bumps it so `/metrics` sees ahead-of-demand reloads.
    pub fn grid_prefetch_counter(&self) -> Arc<Counter> {
        Arc::clone(&self.grid_prefetch)
    }

    fn span(&self, job: JobId, stage: &str, ns: u64, attrs: &[(&str, &str)]) {
        if let Some(t) = &self.trace {
            t.emit(&SpanRecord {
                job: Some(job),
                stage,
                dur_ns: ns,
                attrs,
            });
        }
    }

    /// A job left the queue: record its wait (if it was ever enqueued).
    pub fn job_dequeued(&self, job: JobId, trace: &JobTrace) {
        if let Some(ns) = trace.stamp_dequeued() {
            self.stage_queue_wait.record_ns(ns);
            self.span(job, "queue_wait", ns, &[]);
        }
    }

    /// A job's grid set arrived after `ns` of acquisition wall-clock.
    pub fn job_grid(&self, job: JobId, trace: &JobTrace, ns: u64, source: GridSource) {
        trace.record_grid(ns, source);
        self.stage_grid.record_ns(ns);
        match source {
            GridSource::Hit => self.grid_hit.inc(),
            GridSource::Built => self.grid_built.inc(),
            GridSource::Reloaded => self.grid_reloaded.inc(),
        }
        self.span(job, "grid", ns, &[("source", source.name())]);
    }

    /// One chunk's docking fan-out finished.
    pub fn job_dock_chunk(&self, job: JobId, trace: &JobTrace, stats: &mudock_pool::PoolStats) {
        let ns = u64::try_from(stats.elapsed.as_nanos()).unwrap_or(u64::MAX);
        trace.add_dock(ns);
        self.stage_dock.record_ns(ns);
        self.pool_tasks.add(stats.executed as u64);
        self.pool_steals.add(stats.steals as u64);
        self.span(job, "dock", ns, &[]);
    }

    /// One chunk's sink/checkpoint flush finished.
    pub fn job_sink_flush(&self, job: JobId, trace: &JobTrace, ns: u64) {
        trace.add_sink(ns);
        self.stage_sink.record_ns(ns);
        self.span(job, "sink", ns, &[]);
    }

    /// A job reached a terminal state: record queue-to-terminal time.
    pub fn job_finished(&self, job: JobId, trace: &JobTrace, state: &str) {
        if let Some(ns) = trace.stamp_finished() {
            self.stage_total.record_ns(ns);
            self.span(job, "total", ns, &[("state", state)]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_feed_the_registry_histograms() {
        let obs = ServeObs::new(Registry::new(), None).unwrap();
        let trace = JobTrace::new();
        trace.stamp_enqueued();
        obs.job_dequeued(1, &trace);
        obs.job_grid(1, &trace, 2_000_000, GridSource::Built);
        obs.job_finished(1, &trace, "completed");
        let text = obs.registry().render_prometheus();
        assert!(text.contains("mudock_job_stage_seconds_count{stage=\"queue_wait\"} 1"));
        assert!(text.contains("mudock_job_stage_seconds_count{stage=\"grid\"} 1"));
        assert!(text.contains("mudock_job_stage_seconds_count{stage=\"total\"} 1"));
        assert!(text.contains("mudock_grid_fetch_total{source=\"built\"} 1"));
        // The job's own trace agrees with what the histograms saw.
        let snap = trace.snapshot();
        assert_eq!(snap.grid_ns, Some(2_000_000));
        assert_eq!(snap.grid_source, Some(GridSource::Built));
    }

    #[test]
    fn trace_file_records_stage_spans() {
        let path = std::env::temp_dir().join(format!(
            "mudock-serve-telemetry-{}.jsonl",
            std::process::id()
        ));
        let cfg = TraceConfig {
            path: path.clone(),
            capacity: 8,
        };
        let obs = ServeObs::new(Registry::new(), Some(&cfg)).unwrap();
        let trace = JobTrace::new();
        obs.job_grid(42, &trace, 1_000, GridSource::Reloaded);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"job\":42"));
        assert!(text.contains("\"stage\":\"grid\""));
        assert!(text.contains("\"source\":\"reloaded\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dock_chunks_accumulate_pool_counters() {
        let obs = ServeObs::new(Registry::new(), None).unwrap();
        let trace = JobTrace::new();
        let stats = mudock_pool::PoolStats {
            executed: 16,
            steals: 3,
            threads: 2,
            elapsed: std::time::Duration::from_micros(500),
            shards: Vec::new(),
        };
        obs.job_dock_chunk(9, &trace, &stats);
        obs.job_dock_chunk(9, &trace, &stats);
        let text = obs.registry().render_prometheus();
        assert!(text.contains("mudock_pool_tasks_total 32"));
        assert!(text.contains("mudock_pool_steals_total 6"));
        assert_eq!(trace.snapshot().dock_chunks, 2);
        assert_eq!(trace.snapshot().dock_ns, Some(1_000_000));
    }
}
