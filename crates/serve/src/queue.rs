//! Bounded priority job queue with backpressure.
//!
//! The admission edge of the service: a fixed-capacity queue so a burst
//! of submissions degrades to queueing delay (or an explicit
//! [`SubmitError::Full`]) instead of unbounded memory growth. Dequeue
//! order is decided by the `ShardRouter` ([`crate::shard`]): the
//! least-served receptor
//! shard first, then [`Priority`](crate::job::Priority), then
//! submission order (FIFO) — with a single receptor in play this is
//! exactly priority-then-FIFO. Cancellation is lazy — a cancelled job
//! stays queued and is discarded by the executor when popped, which
//! keeps the hot path free of queue surgery.

use std::sync::{Arc, Condvar, Mutex};

use crate::job::{JobShared, JobSpec};
use crate::shard::{shard_info, ShardInfo, ShardRouter};

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (only from `try_submit`; `submit` blocks).
    Full,
    /// The service is shutting down and accepts no new work.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "job queue is full"),
            SubmitError::Shutdown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A job waiting for an executor.
pub(crate) struct QueuedJob {
    pub spec: JobSpec,
    pub shared: Arc<JobShared>,
    /// Submission sequence number — the FIFO tie-breaker.
    pub seq: u64,
    /// Which receptor shard the job belongs to (computed at push).
    pub shard: ShardInfo,
    /// The grid key + level the router expects to need *next* (the job
    /// it would select after this one), stamped at pop. The executor
    /// forwards it to [`GridCache::hint`](crate::GridCache::hint) once
    /// its own grids are acquired, so a prefetching cache overlaps the
    /// next receptor's spill reload with this job's docking.
    pub hint: Option<(u64, mudock_grids::SimdLevel)>,
}

struct Inner {
    jobs: Vec<QueuedJob>,
    next_seq: u64,
    closed: bool,
}

/// Bounded, shard/priority-ordered, thread-safe job queue.
pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    router: Arc<ShardRouter>,
}

impl JobQueue {
    /// A queue with its own router (pure priority/FIFO until shards
    /// diverge) — the unit-test constructor.
    #[cfg(test)]
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue::with_router(capacity, Arc::new(ShardRouter::new(usize::MAX, 0)))
    }

    /// A queue whose dequeue order is arbitrated by `router`.
    pub fn with_router(capacity: usize, router: Arc<ShardRouter>) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: Vec::new(),
                next_seq: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            router,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// Enqueue without blocking; refuses when full or closed.
    pub fn try_submit(&self, spec: JobSpec, shared: Arc<JobShared>) -> Result<(), SubmitError> {
        // Fingerprint before taking the lock: hashing the receptor is
        // O(atoms) and must not serialize submitters or block pop().
        let shard = shard_info(&spec);
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(SubmitError::Shutdown);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        self.push(&mut inner, spec, shared, shard);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, blocking while the queue is full (the backpressure path).
    pub fn submit(&self, spec: JobSpec, shared: Arc<JobShared>) -> Result<(), SubmitError> {
        let shard = shard_info(&spec);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(SubmitError::Shutdown);
            }
            if inner.jobs.len() < self.capacity {
                self.push(&mut inner, spec, shared, shard);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap();
        }
    }

    fn push(&self, inner: &mut Inner, spec: JobSpec, shared: Arc<JobShared>, shard: ShardInfo) {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        shared.trace.stamp_enqueued();
        self.router.enqueued(shard);
        inner.jobs.push(QueuedJob {
            spec,
            shared,
            seq,
            shard,
            hint: None,
        });
    }

    /// Dequeue the best job, blocking while the queue is empty. "Best"
    /// is the [`ShardRouter`]'s call: least-served shard, then
    /// priority, then FIFO (linear scan — the queue is bounded and
    /// small by construction). The router accounts the job as started;
    /// the executor must hand it back via
    /// [`ShardRouter::finished`] when done. Returns `None` once the
    /// queue is closed *and* drained — the executors' termination
    /// signal.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(best) = self.router.select(&inner.jobs) {
                let mut job = inner.jobs.swap_remove(best);
                // Stamp what the router would run next, *after* this
                // pop's accounting: with the popped job started, the
                // peek sees exactly the state the next pop will — the
                // best prediction available without consuming it.
                job.hint = self.router.peek(&inner.jobs).map(|i| {
                    let next = &inner.jobs[i];
                    (next.shard.key, next.spec.campaign.grid_level())
                });
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Refuse new submissions and wake every blocked submitter/popper.
    /// Already-queued jobs still drain.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;

    fn spec(priority: Priority) -> JobSpec {
        JobSpec {
            priority,
            ..JobSpec::default()
        }
    }

    fn q(capacity: usize) -> JobQueue {
        JobQueue::new(capacity)
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let queue = q(8);
        for (id, p) in [
            (0, Priority::Normal),
            (1, Priority::Low),
            (2, Priority::High),
            (3, Priority::Normal),
            (4, Priority::High),
        ] {
            queue.try_submit(spec(p), JobShared::new(id)).unwrap();
        }
        let order: Vec<u64> = (0..5).map(|_| queue.pop().unwrap().shared.id).collect();
        assert_eq!(order, vec![2, 4, 0, 3, 1]);
    }

    #[test]
    fn try_submit_refuses_when_full() {
        let queue = q(2);
        queue
            .try_submit(spec(Priority::Normal), JobShared::new(0))
            .unwrap();
        queue
            .try_submit(spec(Priority::Normal), JobShared::new(1))
            .unwrap();
        assert_eq!(
            queue
                .try_submit(spec(Priority::High), JobShared::new(2))
                .unwrap_err(),
            SubmitError::Full
        );
        queue.pop().unwrap();
        queue
            .try_submit(spec(Priority::High), JobShared::new(2))
            .unwrap();
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn blocking_submit_waits_for_space() {
        let queue = Arc::new(q(1));
        queue
            .try_submit(spec(Priority::Normal), JobShared::new(0))
            .unwrap();
        let q2 = Arc::clone(&queue);
        let submitter = std::thread::spawn(move || {
            q2.submit(spec(Priority::Normal), JobShared::new(1))
                .unwrap();
        });
        // Popping frees the slot the blocked submitter is waiting for.
        assert_eq!(queue.pop().unwrap().shared.id, 0);
        submitter.join().unwrap();
        assert_eq!(queue.pop().unwrap().shared.id, 1);
    }

    #[test]
    fn close_drains_then_terminates() {
        let queue = q(4);
        queue
            .try_submit(spec(Priority::Normal), JobShared::new(0))
            .unwrap();
        queue.close();
        assert_eq!(
            queue
                .try_submit(spec(Priority::Normal), JobShared::new(1))
                .unwrap_err(),
            SubmitError::Shutdown
        );
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none());
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let queue = Arc::new(q(1));
        let q2 = Arc::clone(&queue);
        let popper = std::thread::spawn(move || q2.pop().is_none());
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert!(popper.join().unwrap());
    }
}
