//! Ligand sources: where a job's molecules come from.
//!
//! A screening campaign's library is pulled through the pipeline lazily —
//! the executor takes [`LigandSource::stream`] and batches it with
//! [`mudock_molio::ChunkedExt`]; nothing is materialized beyond the
//! in-flight chunk. Sources are cheap to clone (shared payloads sit in
//! `Arc`s) and deterministic: the same source yields the same molecules
//! in the same order every time, which is what makes checkpoint replay
//! and seed reproducibility work.

use std::path::PathBuf;
use std::sync::Arc;

use mudock_mol::Molecule;
use mudock_molio::{split_models, MediateStream};

/// A deterministic, lazily-streamed ligand supply.
#[derive(Clone, Debug)]
pub enum LigandSource {
    /// The MEDIATE-like synthetic set: `count` ligands from `seed` (same
    /// molecules as [`mudock_molio::mediate_like_set`], generated on
    /// demand).
    Synth { seed: u64, count: usize },
    /// Pre-loaded molecules, shared across job clones.
    Molecules(Arc<Vec<Molecule>>),
    /// Multi-model PDBQT text (`MODEL`/`ENDMDL`-delimited); models are
    /// parsed lazily and malformed ones are skipped.
    PdbqtText(Arc<String>),
    /// Like `PdbqtText`, read from a file when the job starts.
    PdbqtFile(PathBuf),
}

impl LigandSource {
    /// Synthetic source of `count` ligands derived from `seed`.
    pub fn synth(seed: u64, count: usize) -> LigandSource {
        LigandSource::Synth { seed, count }
    }

    pub fn from_molecules(mols: Vec<Molecule>) -> LigandSource {
        LigandSource::Molecules(Arc::new(mols))
    }

    pub fn from_pdbqt(text: impl Into<String>) -> LigandSource {
        LigandSource::PdbqtText(Arc::new(text.into()))
    }

    pub fn from_file(path: impl Into<PathBuf>) -> LigandSource {
        LigandSource::PdbqtFile(path.into())
    }

    /// Exact ligand count when knowable without I/O or parsing.
    pub fn len_hint(&self) -> Option<usize> {
        match self {
            LigandSource::Synth { count, .. } => Some(*count),
            LigandSource::Molecules(m) => Some(m.len()),
            LigandSource::PdbqtText(_) | LigandSource::PdbqtFile(_) => None,
        }
    }

    /// Open the stream. Fails only on I/O (file sources); malformed
    /// PDBQT models are skipped, not fatal — one bad library entry must
    /// not sink the campaign.
    pub fn stream(&self) -> Result<Box<dyn Iterator<Item = Molecule> + Send>, String> {
        match self {
            LigandSource::Synth { seed, count } => Ok(Box::new(MediateStream::new(*seed, *count))),
            LigandSource::Molecules(mols) => {
                let mols = Arc::clone(mols);
                let n = mols.len();
                Ok(Box::new((0..n).map(move |i| mols[i].clone())))
            }
            LigandSource::PdbqtText(text) => Ok(parse_lazily(Arc::clone(text))),
            LigandSource::PdbqtFile(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                Ok(parse_lazily(Arc::new(text)))
            }
        }
    }
}

/// Split eagerly (a cheap line scan recording byte ranges into the
/// shared text), parse lazily (the expensive part). The text is held
/// once, in the `Arc` — no per-model copies.
fn parse_lazily(text: Arc<String>) -> Box<dyn Iterator<Item = Molecule> + Send> {
    let base = text.as_ptr() as usize;
    let ranges: Vec<(usize, usize)> = split_models(&text)
        .into_iter()
        .map(|m| {
            let start = m.as_ptr() as usize - base;
            (start, start + m.len())
        })
        .collect();
    Box::new(
        ranges
            .into_iter()
            .filter_map(move |(a, b)| mudock_molio::parse(&text[a..b]).ok()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_molio::{mediate_like_set, write};

    #[test]
    fn synth_stream_matches_materialized_set() {
        let src = LigandSource::synth(0xabc, 5);
        assert_eq!(src.len_hint(), Some(5));
        let streamed: Vec<Molecule> = src.stream().unwrap().collect();
        let set = mediate_like_set(0xabc, 5);
        assert_eq!(streamed.len(), 5);
        for (a, b) in streamed.iter().zip(&set) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.atoms.len(), b.atoms.len());
        }
    }

    #[test]
    fn stream_is_repeatable() {
        let src = LigandSource::synth(7, 4);
        let first: Vec<String> = src.stream().unwrap().map(|m| m.name).collect();
        let second: Vec<String> = src.stream().unwrap().map(|m| m.name).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn molecule_source_round_trips() {
        let mols = mediate_like_set(1, 3);
        let src = LigandSource::from_molecules(mols.clone());
        assert_eq!(src.len_hint(), Some(3));
        let out: Vec<Molecule> = src.stream().unwrap().collect();
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].name, mols[2].name);
    }

    #[test]
    fn pdbqt_text_skips_malformed_models() {
        let good = write(&mediate_like_set(3, 1).pop().unwrap());
        let text = format!(
            "MODEL 1\n{good}ENDMDL\nMODEL 2\nATOM garbage\nENDMDL\nMODEL 3\n{good}ENDMDL\n"
        );
        let src = LigandSource::from_pdbqt(text);
        assert_eq!(src.len_hint(), None);
        let parsed: Vec<Molecule> = src.stream().unwrap().collect();
        assert_eq!(parsed.len(), 2, "the malformed model is skipped");
    }

    #[test]
    fn file_source_reads_at_stream_time() {
        let mols = mediate_like_set(11, 2);
        let mut text = String::new();
        for (i, m) in mols.iter().enumerate() {
            text.push_str(&format!("MODEL {}\n{}ENDMDL\n", i + 1, write(m)));
        }
        let path = std::env::temp_dir().join(format!("mudock-ingest-{}.pdbqt", std::process::id()));
        std::fs::write(&path, &text).unwrap();
        let src = LigandSource::from_file(&path);
        let parsed: Vec<Molecule> = src.stream().unwrap().collect();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed.len(), 2);

        let missing = LigandSource::from_file("/nonexistent/never.pdbqt");
        assert!(missing.stream().is_err());
    }
}
