//! # mudock-serve — the virtual-screening service layer
//!
//! The kernels below this crate make one docking *fast*; this crate makes
//! a node full of them a *service*. It turns the one-shot
//! [`mudock_core::screen()`] call into a long-running screening server in
//! the shape of the paper's full-node scenario (Fig. 2b — one ligand per
//! task, parallelism across inputs), organized as four cooperating
//! pieces:
//!
//! * **job queue** ([`queue`]) — bounded submission of [`JobSpec`]s with
//!   priorities, cancellation, and backpressure: when the queue is full,
//!   `try_submit` refuses and `submit` blocks, so a burst of requests
//!   degrades to queuing delay instead of memory growth;
//! * **shard router** ([`shard`]) — dequeues arbitrate executor slots
//!   across per-receptor shard groups (keyed by grid content
//!   fingerprint), so a burst of jobs against one hot target cannot
//!   monopolize the node; campaigns choose their stance through
//!   [`ShardPolicy`](mudock_core::ShardPolicy) (fair-share, weighted,
//!   or single-queue passthrough);
//! * **grid cache** ([`cache`]) — built [`GridSet`](mudock_grids::GridSet)s
//!   are LRU-cached by receptor/geometry content fingerprints
//!   ([`mudock_grids::hash`]), so repeat jobs against a hot target skip
//!   the dominant fixed cost; hit/miss counters and build timings are
//!   surfaced through [`mudock_perf::PerfMonitor`]; with a
//!   [`SpillConfig`], evicted grid sets spill to a bounded on-disk tier
//!   and reload bit-identically instead of rebuilding;
//! * **streaming ingest** ([`ingest`]) — ligands are pulled lazily in
//!   chunks (from synthetic generators or multi-model PDBQT via
//!   [`mudock_molio::stream`]) and fanned out over `mudock-pool`'s
//!   work-stealing workers, with the thread share divided across
//!   concurrently running jobs;
//! * **result sink** ([`sink`]) — per-ligand results stream to JSONL as
//!   each chunk completes, the global ranking folds incrementally into a
//!   bounded [`TopK`](mudock_core::TopK) (no collect-then-sort), and a
//!   checkpoint file records completed chunks so a killed job resumes
//!   where it stopped with an identical final ranking.
//!
//! A node becomes remotely reachable through the [`net`] frontend: a
//! dependency-free readiness-driven HTTP/1.1 server (`POST /jobs`,
//! `GET /jobs/{id}`, `GET /jobs/{id}/results`, `DELETE /jobs/{id}`,
//! `GET /healthz`, `GET /stats`) speaking the hand-rolled JSON
//! [`wire`] codec. A pool of event-loop threads
//! ([`NetConfig::event_loops`]) multiplexes the connections, each loop
//! owning its own [`reactor`] ([`reactor::Reactor`] — epoll on Linux,
//! kqueue on mac/BSD, `poll(2)` elsewhere) and connection table, with
//! connections pinned to one loop for life (per-loop `SO_REUSEPORT`
//! listeners on Linux, an accept-thread round-robin handoff elsewhere),
//! keep-alive and pipelining, per-state plus per-request deadlines that
//! evict slow, idle, and wedged peers, incremental body parsing through
//! the resumable [`wire::PushParser`], and the same
//! bounded-backpressure discipline at the socket edge (a capped
//! connection count that sheds overload with `503` instead of unbounded
//! buffering). The HTTP machinery is route-agnostic
//! ([`net::HttpRoutes`] mounted on a [`net::HttpFrontend`]) — the
//! cluster coordinator reuses it wholesale. A matching keep-alive
//! client lives in [`net::client`].
//!
//! Jobs are described by the campaign API: a
//! [`CampaignSpec`](mudock_core::CampaignSpec) built through
//! [`Campaign::builder`](mudock_core::Campaign) carries the GA shape and
//! the backend/stop/chunk policies — including per-job SIMD pinning
//! (grids are cached per `(content, dims, level)`, so heterogeneous
//! clients share a node without poisoning each other's grids), ranking-
//! stability early termination, and adaptive chunk sizing. A [`JobSpec`]
//! is the thin adapter binding that campaign to a receptor, a ligand
//! stream, and the sinks.
//!
//! [`ScreenService`] wires them together. The 30-second version:
//!
//! ```
//! use mudock_serve::{JobSpec, LigandSource, ScreenService, ServeConfig};
//! use mudock_core::Campaign;
//! use std::sync::Arc;
//!
//! let service = ScreenService::start(ServeConfig {
//!     total_threads: 2,
//!     ..ServeConfig::default()
//! });
//! let campaign = Campaign::builder()
//!     .name("demo")
//!     .population(8)
//!     .generations(4)
//!     .search_radius(3.0)
//!     .top_k(3)
//!     .build()
//!     .expect("a valid campaign");
//! let handle = service
//!     .submit(JobSpec {
//!         receptor: Arc::new(mudock_molio::synthetic_receptor(7, 80, 8.0)),
//!         ligands: LigandSource::synth(42, 6),
//!         ..JobSpec::from(campaign)
//!     })
//!     .unwrap();
//! let outcome = handle.wait();
//! assert_eq!(outcome.ligands_done, 6);
//! assert_eq!(outcome.top.len(), 3);
//! service.shutdown();
//! ```

pub mod cache;
pub mod ingest;
pub mod job;
pub mod net;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod shard;
pub mod sink;
pub mod telemetry;
pub mod wire;

pub use cache::policy::{CacheModel, CachePolicy, ModelConfig, ModelStats};
pub use cache::trace::{read_trace, Trace, TraceEvent, TraceEventKind, TraceHeader};
pub use cache::{CacheStats, GridCache, GridCacheBuilder, SpillConfig};
pub use ingest::LigandSource;
pub use job::{
    ChunkProgress, JobHandle, JobId, JobOutcome, JobSpec, JobState, LigandSlice, Priority,
    ProgressFn, RankedLigand,
};
pub use mudock_obs::{GridSource, Registry, StageTimings};
pub use net::{
    default_event_loops, Body, FrontendBuilder, HttpFrontend, HttpRoutes, NetConfig, NetServer,
    Response,
};
pub use queue::SubmitError;
pub use server::{default_dims, ScreenService, ServeConfig, ServiceStats};
pub use shard::ShardStat;
pub use sink::{Checkpoint, JsonlSink};
pub use telemetry::{ServeObs, TraceConfig};
pub use wire::{JobStatus, ReceptorSource, WireError};
