//! The service itself: executor threads pulling jobs off the queue.
//!
//! [`ScreenService::start`] spawns `job_slots` executor threads. Each
//! pops the best queued job and drives it chunk by chunk: grids from the
//! [`GridCache`], chunks fanned out over `mudock-pool` workers, results
//! into the incremental top-k plus the JSONL/checkpoint sinks. The
//! node's `total_threads` are divided evenly among the jobs running at
//! that moment (re-evaluated at every chunk boundary), so a long
//! campaign cannot starve a short one, and a finishing job's share flows
//! back to the survivors.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mudock_core::{dock_ligand, DockingEngine, ScreenResult, StopCheck, StopPolicy, TopK};
use mudock_grids::{grid_cache_key, Fnv64, GridDims};
use mudock_mol::Molecule;
use mudock_obs::{now_ns, Counter, GridSource, Registry};
use mudock_perf::PerfMonitor;

use crate::cache::policy::CachePolicy;
use crate::cache::{CacheStats, GridCache, SpillConfig};
use crate::job::{
    ChunkProgress, JobHandle, JobOutcome, JobShared, JobSpec, JobState, RankedLigand,
};
use crate::queue::{JobQueue, SubmitError};
use crate::shard::{ShardRouter, ShardStat};
use crate::sink::{Checkpoint, JsonlSink};
use crate::telemetry::{ServeObs, TraceConfig};

/// Service sizing. `Default` fits a CI host; production tunes all of it.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Docking worker threads shared by all concurrently running jobs.
    pub total_threads: usize,
    /// Jobs executed concurrently (each gets `total_threads / active`).
    pub job_slots: usize,
    /// Bounded queue depth; beyond it, `submit` blocks and `try_submit`
    /// refuses.
    pub queue_capacity: usize,
    /// Grid sets kept resident (LRU beyond this).
    pub cache_capacity: usize,
    /// Receptor shard groups the executor slots are partitioned into:
    /// each shard is soft-capped at `job_slots / shards` concurrent
    /// executors while other shards have work queued. 0 (the default)
    /// derives the cap from the number of receptors live at each
    /// dequeue instead of pinning it.
    pub shards: usize,
    /// Spill evicted grid sets to this bounded on-disk tier and reload
    /// them on the next miss instead of rebuilding. `None` (the
    /// default) rebuilds after eviction, as before. The directory is
    /// rescanned at start, so a restarted node comes up warm.
    pub spill: Option<SpillConfig>,
    /// Replacement policy for the resident grid cache. The default
    /// (segmented LRU) matches plain LRU on sequential workloads and
    /// resists one-shot receptor scans flushing a hot target.
    pub cache_policy: CachePolicy,
    /// Reload the next queued job's spilled grids on a background
    /// thread while the current job docks (router-hint prefetch).
    /// Off by default; inert without a spill tier.
    pub cache_prefetch: bool,
    /// Record every grid-cache event (accesses, evictions, spills,
    /// hints) to this JSONL `*.trace` file for offline policy replay
    /// with `cache_replay`. `None` (the default) records nothing.
    pub cache_trace: Option<std::path::PathBuf>,
    /// Write one JSONL line per closed job stage to this bounded trace
    /// file. `None` (the default) disables tracing; metrics still work.
    pub trace: Option<TraceConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            total_threads: mudock_pool::default_threads(),
            job_slots: 2,
            queue_capacity: 64,
            cache_capacity: 4,
            shards: 0,
            spill: None,
            cache_policy: CachePolicy::default(),
            cache_prefetch: false,
            cache_trace: None,
            trace: None,
        }
    }
}

/// Point-in-time service counters.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    pub jobs_submitted: u64,
    pub jobs_completed: u64,
    pub jobs_cancelled: u64,
    pub jobs_failed: u64,
    /// Ligands docked live (checkpoint replays excluded).
    pub ligands_docked: u64,
    /// Jobs waiting in the queue right now.
    pub queued: usize,
    /// Jobs executing right now.
    pub active: usize,
    pub cache: CacheStats,
    /// Per-receptor shard groups (depth, occupancy, weight) — every
    /// shard this service has seen, sorted by fingerprint.
    pub shards: Vec<ShardStat>,
}

/// Job lifecycle counters, registered so `/stats` and `/metrics` read
/// the same atomics (`mudock_jobs_total{event=...}` et al.).
struct Counters {
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    cancelled: Arc<Counter>,
    failed: Arc<Counter>,
    ligands: Arc<Counter>,
}

impl Counters {
    fn register(registry: &Registry) -> Counters {
        let jobs = |event: &str| {
            registry.counter(
                "mudock_jobs_total",
                &[("event", event)],
                "Job lifecycle events (submitted, completed, cancelled, failed)",
            )
        };
        Counters {
            submitted: jobs("submitted"),
            completed: jobs("completed"),
            cancelled: jobs("cancelled"),
            failed: jobs("failed"),
            ligands: registry.counter(
                "mudock_ligands_docked_total",
                &[],
                "Ligands docked live (checkpoint replays excluded)",
            ),
        }
    }
}

/// Shared executor context.
struct ExecCtx {
    cache: Arc<GridCache>,
    monitor: Arc<PerfMonitor>,
    counters: Arc<Counters>,
    active: Arc<AtomicUsize>,
    router: Arc<ShardRouter>,
    obs: Arc<ServeObs>,
    total_threads: usize,
}

/// Default lattice when a [`JobSpec`] does not pin one: centered on the
/// receptor, covering its span with margin, at screening resolution.
pub fn default_dims(receptor: &Molecule) -> GridDims {
    let extent = (receptor.radius() + 3.0).clamp(8.0, 14.0);
    GridDims::centered(receptor.centroid(), extent, 0.55)
}

/// A long-running virtual-screening service.
pub struct ScreenService {
    queue: Arc<JobQueue>,
    cache: Arc<GridCache>,
    monitor: Arc<PerfMonitor>,
    counters: Arc<Counters>,
    active: Arc<AtomicUsize>,
    router: Arc<ShardRouter>,
    obs: Arc<ServeObs>,
    next_id: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ScreenService {
    /// Spawn the executors and return the running service. Panics when
    /// a configured spill directory cannot be created; use
    /// [`ScreenService::try_start`] to handle that as an error.
    pub fn start(cfg: ServeConfig) -> ScreenService {
        Self::try_start(cfg).expect("spill directory must be creatable")
    }

    /// Fallible [`ScreenService::start`]: the only runtime failures are
    /// preparing the spill directory (creating it, rescanning it for
    /// warm-restart files) and creating the configured trace files.
    pub fn try_start(cfg: ServeConfig) -> std::io::Result<ScreenService> {
        let job_slots = cfg.job_slots.max(1);
        let router = Arc::new(ShardRouter::new(job_slots, cfg.shards));
        let queue = Arc::new(JobQueue::with_router(
            cfg.queue_capacity,
            Arc::clone(&router),
        ));
        let monitor = Arc::new(PerfMonitor::new());
        let registry = Registry::new();
        let counters = Arc::new(Counters::register(&registry));
        let obs = Arc::new(ServeObs::new(registry, cfg.trace.as_ref())?);
        let mut builder = GridCache::builder(cfg.cache_capacity)
            .policy(cfg.cache_policy)
            .prefetch(cfg.cache_prefetch)
            .prefetch_counter(obs.grid_prefetch_counter());
        if let Some(spill) = cfg.spill {
            builder = builder.spill(spill);
        }
        if let Some(path) = cfg.cache_trace {
            builder = builder.trace(path);
        }
        let cache = Arc::new(builder.build()?);
        let active = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::new();
        for _ in 0..job_slots {
            let queue = Arc::clone(&queue);
            let ctx = ExecCtx {
                cache: Arc::clone(&cache),
                monitor: Arc::clone(&monitor),
                counters: Arc::clone(&counters),
                active: Arc::clone(&active),
                router: Arc::clone(&router),
                obs: Arc::clone(&obs),
                total_threads: cfg.total_threads.max(1),
            };
            workers.push(std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    ctx.active.fetch_add(1, Ordering::SeqCst);
                    ctx.obs.job_dequeued(job.shared.id, &job.shared.trace);
                    let shared = Arc::clone(&job.shared);
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        run_job(job.spec, &job.shared, job.hint, &ctx)
                    }));
                    if outcome.is_err() {
                        // A panicking job must not wedge its waiters or
                        // kill the executor slot.
                        ctx.counters.failed.inc();
                        ctx.obs.job_finished(shared.id, &shared.trace, "failed");
                        shared.finish(JobOutcome {
                            id: shared.id,
                            name: String::new(),
                            state: JobState::Failed,
                            ligands_done: 0,
                            chunks_done: 0,
                            replayed_chunks: 0,
                            grid_cache_hit: false,
                            stopped_early: false,
                            top: Vec::new(),
                            elapsed: Default::default(),
                            error: Some("executor panicked while running the job".into()),
                        });
                    }
                    ctx.active.fetch_sub(1, Ordering::SeqCst);
                    // Hand the shard slot back *after* the job fully
                    // settles, so occupancy never undercounts a job
                    // whose outcome is still being published.
                    ctx.router.finished(job.shard);
                }
            }));
        }
        Ok(ScreenService {
            queue,
            cache,
            monitor,
            counters,
            active,
            router,
            obs,
            next_id: AtomicU64::new(1),
            workers: Mutex::new(workers),
        })
    }

    fn register(&self, spec: &JobSpec) -> Arc<JobShared> {
        let _ = spec;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        JobShared::new(id)
    }

    /// Submit a job, blocking while the queue is full (backpressure).
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let shared = self.register(&spec);
        self.queue.submit(spec, Arc::clone(&shared))?;
        self.counters.submitted.inc();
        Ok(JobHandle { shared })
    }

    /// Submit without blocking; `Err(Full)` when the queue is at
    /// capacity.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let shared = self.register(&spec);
        self.queue.try_submit(spec, Arc::clone(&shared))?;
        self.counters.submitted.inc();
        Ok(JobHandle { shared })
    }

    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            jobs_submitted: self.counters.submitted.get(),
            jobs_completed: self.counters.completed.get(),
            jobs_cancelled: self.counters.cancelled.get(),
            jobs_failed: self.counters.failed.get(),
            ligands_docked: self.counters.ligands.get(),
            queued: self.queue.len(),
            active: self.active.load(Ordering::SeqCst),
            cache: self.cache.stats(),
            shards: self.router.snapshot(),
        }
    }

    /// Perf regions (grid build timings, …) accumulated by the service.
    pub fn monitor(&self) -> &PerfMonitor {
        &self.monitor
    }

    /// The service's observability state: stage histograms, job/grid
    /// counters, optional trace. Shared with the network frontend.
    pub fn obs(&self) -> Arc<ServeObs> {
        Arc::clone(&self.obs)
    }

    /// The metric registry behind [`ScreenService::obs`] — everything
    /// `/metrics` renders. The network frontend registers its
    /// connection/request families here twice over: once unlabelled
    /// (the totals every event loop writes) and once per loop as
    /// `{loop="i"}` series, relying on the registry's get-or-insert
    /// idempotency so both views share the same atomics where they
    /// name the same instrument.
    pub fn registry(&self) -> Registry {
        self.obs.registry().clone()
    }

    /// Maximum number of jobs the queue admits before backpressure.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Stop accepting work, drain the queue, and join the executors.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        self.queue.close();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for ScreenService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Fingerprint of everything a checkpoint must agree on to be replayable:
/// grid content, base seed, ranking size, and the resolved backend (two
/// SIMD levels score within fast-math tolerance, not bit-identically, so
/// their checkpoints must not mix). Chunking is deliberately absent —
/// chunk boundaries live in the checkpoint records themselves and
/// per-ligand seeds are keyed on the global index, so a job may resume
/// under a *different* [`ChunkPolicy`](mudock_core::ChunkPolicy) and
/// still finish with a bit-identical ranking.
fn job_fingerprint(spec: &JobSpec, dims: GridDims) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(grid_cache_key(&spec.receptor, &dims))
        .write_u64(spec.campaign.seed)
        .write_u64(spec.campaign.top_k as u64)
        .write(spec.campaign.backend.resolve().name().as_bytes());
    // A sliced sub-job checkpoints a different window of the stream than
    // the whole job (or a differently-sliced one) — never mix them.
    if let Some(s) = spec.slice {
        h.write_u64(s.skip as u64).write_u64(s.take as u64);
    }
    h.finish()
}

fn run_job(
    spec: JobSpec,
    shared: &JobShared,
    hint: Option<(u64, mudock_grids::SimdLevel)>,
    ctx: &ExecCtx,
) {
    let t0 = Instant::now();
    let finish = |state: JobState,
                  error: Option<String>,
                  top: Vec<RankedLigand>,
                  done: (usize, usize, usize),
                  cache_hit: bool,
                  stopped_early: bool| {
        match state {
            JobState::Completed => ctx.counters.completed.inc(),
            JobState::Cancelled => ctx.counters.cancelled.inc(),
            _ => ctx.counters.failed.inc(),
        };
        let state_name = match state {
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            _ => "failed",
        };
        ctx.obs.job_finished(shared.id, &shared.trace, state_name);
        shared.finish(JobOutcome {
            id: shared.id,
            name: spec.campaign.name.clone(),
            state,
            ligands_done: done.0,
            chunks_done: done.1,
            replayed_chunks: done.2,
            grid_cache_hit: cache_hit,
            stopped_early,
            top,
            elapsed: t0.elapsed(),
            error,
        });
    };

    if shared.cancel.load(Ordering::SeqCst) {
        finish(
            JobState::Cancelled,
            None,
            Vec::new(),
            (0, 0, 0),
            false,
            false,
        );
        return;
    }
    shared.set_running();

    // The campaign's backend policy decides the level grids are built at
    // — and thereby the `(content, dims, level)` cache entry this job
    // reads, so jobs pinned to different levels never share grids.
    let dims = spec.campaign.dims_for(&spec.receptor);
    let params = spec.campaign.dock_params();
    let grid_t0 = now_ns();
    let (grids, grid_source) = ctx.cache.get_or_build(
        &spec.receptor,
        dims,
        spec.campaign.grid_level(),
        Some(&ctx.monitor),
    );
    ctx.obs.job_grid(
        shared.id,
        &shared.trace,
        now_ns().saturating_sub(grid_t0),
        grid_source,
    );
    // This job's grids are in hand: now (and only now) tell the cache
    // what the router expects to run next. Hinting any earlier could
    // prefetch a key this very lookup was about to evict or reload.
    if let Some((key, level)) = hint {
        ctx.cache.hint(key, level);
    }
    let cache_hit = grid_source == GridSource::Hit;
    let engine = match DockingEngine::new(&grids) {
        Ok(e) => e,
        Err(e) => {
            finish(
                JobState::Failed,
                Some(e.to_string()),
                Vec::new(),
                (0, 0, 0),
                cache_hit,
                false,
            );
            return;
        }
    };

    let mut ckpt = match &spec.checkpoint {
        Some(path) => match Checkpoint::open(path, job_fingerprint(&spec, dims)) {
            Ok(c) => Some(c),
            Err(e) => {
                let msg = format!("checkpoint {}: {e}", path.display());
                finish(
                    JobState::Failed,
                    Some(msg),
                    Vec::new(),
                    (0, 0, 0),
                    cache_hit,
                    false,
                );
                return;
            }
        },
        None => None,
    };
    let resuming = ckpt.as_ref().is_some_and(|c| !c.completed().is_empty());

    let mut sink = match &spec.jsonl {
        // A resumed job appends: replayed chunks' lines are already
        // there. Lines from a chunk whose checkpoint block was torn by
        // a crash are pruned first — that chunk re-docks and rewrites
        // them.
        Some(path) => match (|| {
            if resuming {
                let ck = ckpt.as_ref().expect("resuming implies a checkpoint");
                crate::sink::prune_jsonl(path, |c| ck.completed().contains_key(&c))?;
            }
            JsonlSink::open(path, resuming)
        })() {
            Ok(s) => Some(s),
            Err(e) => {
                let msg = format!("jsonl {}: {e}", path.display());
                finish(
                    JobState::Failed,
                    Some(msg),
                    Vec::new(),
                    (0, 0, 0),
                    cache_hit,
                    false,
                );
                return;
            }
        },
        None => None,
    };

    let stream = match spec.ligands.stream() {
        Ok(s) => s,
        Err(e) => {
            finish(
                JobState::Failed,
                Some(e),
                Vec::new(),
                (0, 0, 0),
                cache_hit,
                false,
            );
            return;
        }
    };
    // A cluster sub-job docks one window of the stream but keeps global
    // ligand indices: seeds and ranked indices are offset by the skip,
    // so the window scores bit-identically to the same ligands in an
    // unsliced run.
    let mut stream: Box<dyn Iterator<Item = Molecule> + Send> = match spec.slice {
        Some(s) => Box::new(stream.skip(s.skip).take(s.take)),
        None => stream,
    };

    let mut sizer = spec.campaign.chunk_sizer();
    let mut stop_check = StopCheck::new();
    let mut top: TopK<(usize, String)> = TopK::new(spec.campaign.top_k);
    let (mut ligands_done, mut chunks_done, mut replayed_chunks) = (0usize, 0usize, 0usize);
    // Global index of the next ligand — *cumulative*, never derived from
    // the chunk index: chunk sizes may vary (adaptive policy, or a
    // resume under a different policy than the checkpoint was written
    // with), but per-ligand seeds must not. A sliced sub-job starts at
    // its window's global position.
    let mut offset = spec.slice.map_or(0usize, |s| s.skip);
    let mut evaluations = 0u64;
    let mut state = JobState::Completed;
    let mut stopped_early = false;
    let mut error = None;

    for ci in 0usize.. {
        if shared.cancel.load(Ordering::SeqCst) {
            if shared.policy_stop.load(Ordering::SeqCst) {
                // A policy firing exactly as the input ran out is a
                // plain completion: "early" means ligands were skipped.
                stopped_early = stream.next().is_some();
            } else {
                state = JobState::Cancelled;
            }
            break;
        }
        let replay = ckpt.as_ref().and_then(|c| c.completed().get(&ci).cloned());
        let replayed = replay.is_some();
        if let Some(rec) = replay {
            // The record knows its own size: skip those ligands in the
            // stream (they were docked in a previous run) and replay the
            // chunk's top-k contribution. Entries are stored in
            // global-index order, so replay reproduces the live path's
            // insertion order exactly.
            let skipped = stream.by_ref().take(rec.ligands).count();
            if skipped == 0 {
                break;
            }
            for e in &rec.top {
                top.push(e.score, (e.index, e.name.clone()));
            }
            ligands_done += skipped;
            offset += skipped;
            replayed_chunks += 1;
        } else {
            let chunk: Vec<Molecule> = stream.by_ref().take(sizer.next_size()).collect();
            if chunk.is_empty() {
                break;
            }
            // This job's fair share of the node, right now.
            let threads = (ctx.total_threads / ctx.active.load(Ordering::SeqCst).max(1)).max(1);
            let (results, pool_stats): (Vec<ScreenResult>, _) =
                mudock_pool::parallel_map_stats(&chunk, threads, |i, lig| {
                    dock_ligand(&engine, lig, &params, offset + i)
                });
            ctx.obs
                .job_dock_chunk(shared.id, &shared.trace, &pool_stats);
            sizer.observe(chunk.len(), pool_stats.elapsed);

            let mut chunk_top: TopK<(usize, String)> = TopK::new(spec.campaign.top_k);
            for (i, r) in results.iter().enumerate() {
                evaluations += r.evaluations;
                if let Some(score) = r.best_score {
                    top.push(score, (offset + i, r.name.clone()));
                    chunk_top.push(score, (offset + i, r.name.clone()));
                }
            }

            let has_sink = sink.is_some() || ckpt.is_some();
            let io = || -> std::io::Result<()> {
                if let Some(sink) = &mut sink {
                    for (i, r) in results.iter().enumerate() {
                        sink.write_result(&spec.campaign.name, ci, offset + i, r)?;
                    }
                    sink.flush()?;
                }
                if let Some(ck) = &mut ckpt {
                    let mut entries: Vec<RankedLigand> = chunk_top
                        .into_sorted()
                        .into_iter()
                        .map(|(score, (index, name))| RankedLigand { index, name, score })
                        .collect();
                    entries.sort_unstable_by_key(|e| e.index);
                    ck.record(ci, chunk.len(), &entries)?;
                }
                Ok(())
            };
            let sink_t0 = now_ns();
            let flushed = io();
            if has_sink {
                // Only record a sink span when there was a sink to
                // flush — sinkless jobs would pollute the stage
                // histogram with zeros.
                ctx.obs
                    .job_sink_flush(shared.id, &shared.trace, now_ns().saturating_sub(sink_t0));
            }
            if let Err(e) = flushed {
                state = JobState::Failed;
                error = Some(format!("result sink: {e}"));
                break;
            }
            ctx.counters.ligands.add(chunk.len() as u64);
            ligands_done += chunk.len();
            offset += chunk.len();
        }
        chunks_done += 1;
        shared.ligands_done.store(ligands_done, Ordering::SeqCst);
        shared.chunks_done.store(chunks_done, Ordering::SeqCst);
        let progress = ChunkProgress {
            job: shared.id,
            chunk: ci,
            chunks_done,
            ligands_done,
            replayed,
            shared,
        };
        if let Some(cb) = &spec.progress {
            cb(&progress);
        }
        // The stop policy rides the same per-chunk cancellation hook the
        // progress callback gets: when the policy says stop, the job
        // cancels itself — and the outcome reports Completed +
        // stopped_early instead of Cancelled. Snapshotting the ranking
        // costs a top-k clone + sort, so only RankingStable pays it.
        let ranking: Vec<(f32, usize)> =
            if matches!(spec.campaign.stop, StopPolicy::RankingStable { .. }) {
                top.clone()
                    .into_sorted()
                    .into_iter()
                    .map(|(score, (index, _))| (score, index))
                    .collect()
            } else {
                Vec::new()
            };
        if stop_check.should_stop(&spec.campaign.stop, evaluations, &ranking) {
            shared.policy_stop.store(true, Ordering::SeqCst);
            progress.cancel();
        }
    }

    let ranking: Vec<RankedLigand> = top
        .into_sorted()
        .into_iter()
        .map(|(score, (index, name))| RankedLigand { index, name, score })
        .collect();
    finish(
        state,
        error,
        ranking,
        (ligands_done, chunks_done, replayed_chunks),
        cache_hit,
        stopped_early,
    );
}
