//! Job descriptions, handles, and outcomes — the service's unit of work.
//!
//! A [`JobSpec`] is a thin adapter binding a typed
//! [`CampaignSpec`] — the *what* and *how* of
//! the run: GA shape, backend/stop/chunk policies, top-k, lattice — to
//! the service-side *where*: the receptor, a lazy ligand stream, a
//! priority, and the sinks (JSONL path, checkpoint path, progress
//! callback). `JobSpec::from(campaign)` builds one with empty bindings.
//! Submission returns a [`JobHandle`], the client's side of the job:
//! poll progress, cancel, or block in [`JobHandle::wait`] for the final
//! [`JobOutcome`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mudock_core::CampaignSpec;
use mudock_mol::Molecule;
use mudock_obs::{JobTrace, StageTimings};

use crate::ingest::LigandSource;

/// Service-assigned job identifier (monotonic per service).
pub type JobId = u64;

/// Scheduling priority. Higher priorities always dequeue first; within a
/// priority, jobs run in submission order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    Low,
    #[default]
    Normal,
    High,
}

/// Lifecycle of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// An executor is docking its chunks.
    Running,
    /// All chunks finished.
    Completed,
    /// Cancelled before or during execution; partial progress is in the
    /// outcome (and in the checkpoint, if one was configured).
    Cancelled,
    /// Setup failed (grid too large, unreadable input, …); see
    /// [`JobOutcome::error`].
    Failed,
}

/// A contiguous window of the ligand stream, identified by its position
/// in the *full* input. A coordinator fanning one campaign out across
/// nodes ships the whole [`LigandSource`] plus one slice per sub-job:
/// the executor skips `skip` ligands, docks `take`, and — crucially —
/// seeds every ligand by its **global** index, so a sliced run scores
/// bit-identically to the same window of an unsliced run and partial
/// rankings merge back losslessly (see `core::topk`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LigandSlice {
    /// Ligands to skip before the first docked one.
    pub skip: usize,
    /// Number of ligands to dock from there.
    pub take: usize,
}

impl LigandSlice {
    pub fn new(skip: usize, take: usize) -> LigandSlice {
        LigandSlice { skip, take }
    }
}

/// One entry of a job's final ranking.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedLigand {
    /// Global index of the ligand in the job's input stream.
    pub index: usize,
    /// Ligand name from the input molecule.
    pub name: String,
    /// Best docking score (kcal/mol).
    pub score: f32,
}

/// Final report of one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    pub id: JobId,
    pub name: String,
    pub state: JobState,
    /// Ligands accounted for: docked live plus replayed from checkpoint.
    pub ligands_done: usize,
    /// Chunks completed (live + replayed).
    pub chunks_done: usize,
    /// Of those, chunks restored from the checkpoint instead of docked.
    pub replayed_chunks: usize,
    /// Whether the receptor grid came out of the cache (shared builds in
    /// progress count as hits — the build ran once either way).
    pub grid_cache_hit: bool,
    /// The job's [`StopPolicy`](mudock_core::StopPolicy) ended it before
    /// the input was exhausted (state is still [`JobState::Completed`]:
    /// stopping early is the policy *succeeding*, not a cancellation).
    pub stopped_early: bool,
    /// The `top_k` best ligands, best first.
    pub top: Vec<RankedLigand>,
    /// Wall-clock time from execution start (queueing excluded).
    pub elapsed: Duration,
    /// Failure description when `state` is [`JobState::Failed`].
    pub error: Option<String>,
}

/// Snapshot handed to a [`JobSpec::progress`] callback after each chunk
/// completes (flushed to sinks, recorded in the checkpoint). `cancel()`
/// lets the callback stop the job — e.g. an early-termination rule once
/// the ranking stabilizes.
pub struct ChunkProgress<'a> {
    pub job: JobId,
    /// Index of the chunk that just finished.
    pub chunk: usize,
    /// Chunks completed so far (live + replayed).
    pub chunks_done: usize,
    /// Ligands completed so far (live + replayed).
    pub ligands_done: usize,
    /// Whether this chunk was replayed from the checkpoint.
    pub replayed: bool,
    pub(crate) shared: &'a JobShared,
}

impl ChunkProgress<'_> {
    /// Request cancellation; the executor stops before the next chunk.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::SeqCst);
    }
}

/// Per-chunk progress callback. Runs on the executor thread — keep it
/// short, it is on the job's critical path.
pub type ProgressFn = dyn Fn(&ChunkProgress<'_>) + Send + Sync;

/// One screening job: a typed campaign plus its service-side bindings.
#[derive(Clone)]
pub struct JobSpec {
    /// The run description every entry point shares: GA shape, seed,
    /// backend/stop/chunk policies, top-k, lattice, name. Built through
    /// [`mudock_core::Campaign::builder`], which validates it.
    pub campaign: CampaignSpec,
    /// The target. `Arc` so concurrent jobs share one allocation.
    pub receptor: Arc<Molecule>,
    /// Lazy ligand stream; never materialized whole.
    pub ligands: LigandSource,
    /// Dock only this window of the stream (cluster sub-jobs). `None`
    /// means the whole stream. Seeds and ranked indices stay global —
    /// relative to the unsliced stream — either way.
    pub slice: Option<LigandSlice>,
    pub priority: Priority,
    /// Stream per-ligand results to this JSONL file as chunks complete.
    pub jsonl: Option<PathBuf>,
    /// Record completed chunks here; a resubmitted job with the same
    /// inputs resumes from the last completed chunk.
    pub checkpoint: Option<PathBuf>,
    /// Called after every completed chunk.
    pub progress: Option<Arc<ProgressFn>>,
}

impl JobSpec {
    /// The campaign's human-readable name (reports, JSONL lines).
    pub fn name(&self) -> &str {
        &self.campaign.name
    }
}

/// A campaign with no bindings yet: attach `receptor`, `ligands`, and
/// sinks before submitting.
impl From<CampaignSpec> for JobSpec {
    fn from(campaign: CampaignSpec) -> JobSpec {
        JobSpec {
            campaign,
            receptor: Arc::new(Molecule::new("")),
            ligands: LigandSource::synth(0, 0),
            slice: None,
            priority: Priority::Normal,
            jsonl: None,
            checkpoint: None,
            progress: None,
        }
    }
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec::from(CampaignSpec::default())
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.campaign.name)
            .field("receptor_atoms", &self.receptor.atoms.len())
            .field("top_k", &self.campaign.top_k)
            .field("backend", &self.campaign.backend)
            .field("stop", &self.campaign.stop)
            .field("chunk", &self.campaign.chunk)
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

/// State shared between a [`JobHandle`] and the executor.
pub(crate) struct JobShared {
    pub id: JobId,
    pub cancel: AtomicBool,
    /// Set when the cancellation originated from the job's own
    /// [`StopPolicy`](mudock_core::StopPolicy) rather than a client:
    /// the executor then reports `Completed` + `stopped_early` instead
    /// of `Cancelled`.
    pub policy_stop: AtomicBool,
    pub ligands_done: AtomicUsize,
    pub chunks_done: AtomicUsize,
    /// Per-stage wall-clock stamps (enqueue → dequeue → grid → dock →
    /// sink → terminal), readable at any time through
    /// [`JobHandle::stage_timings`].
    pub trace: JobTrace,
    state: Mutex<(JobState, Option<JobOutcome>)>,
    done: Condvar,
}

impl JobShared {
    pub fn new(id: JobId) -> Arc<JobShared> {
        Arc::new(JobShared {
            id,
            cancel: AtomicBool::new(false),
            policy_stop: AtomicBool::new(false),
            ligands_done: AtomicUsize::new(0),
            chunks_done: AtomicUsize::new(0),
            trace: JobTrace::new(),
            state: Mutex::new((JobState::Queued, None)),
            done: Condvar::new(),
        })
    }

    pub fn set_running(&self) {
        let mut s = self.state.lock().unwrap();
        s.0 = JobState::Running;
    }

    pub fn state(&self) -> JobState {
        self.state.lock().unwrap().0
    }

    /// Publish the final outcome and wake every waiter.
    pub fn finish(&self, outcome: JobOutcome) {
        let mut s = self.state.lock().unwrap();
        s.0 = outcome.state;
        s.1 = Some(outcome);
        self.done.notify_all();
    }

    pub fn wait(&self) -> JobOutcome {
        let mut s = self.state.lock().unwrap();
        while s.1.is_none() {
            s = self.done.wait(s).unwrap();
        }
        s.1.clone().expect("guarded by the wait loop")
    }

    pub fn try_outcome(&self) -> Option<JobOutcome> {
        self.state.lock().unwrap().1.clone()
    }
}

/// Client-side handle to a submitted job.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) shared: Arc<JobShared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id())
            .field("state", &self.state())
            .finish()
    }
}

impl JobHandle {
    pub fn id(&self) -> JobId {
        self.shared.id
    }

    pub fn state(&self) -> JobState {
        self.shared.state()
    }

    /// Ligands completed so far (live + replayed).
    pub fn ligands_done(&self) -> usize {
        self.shared.ligands_done.load(Ordering::SeqCst)
    }

    /// Chunks completed so far (live + replayed).
    pub fn chunks_done(&self) -> usize {
        self.shared.chunks_done.load(Ordering::SeqCst)
    }

    /// Point-in-time per-stage wall-clock breakdown. Stages that have
    /// not happened yet read as `None`; safe to poll while running.
    pub fn stage_timings(&self) -> StageTimings {
        self.shared.trace.snapshot()
    }

    /// Request cancellation. Queued jobs never start; running jobs stop
    /// before their next chunk (the current chunk finishes and is
    /// checkpointed, so no completed work is lost).
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::SeqCst);
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(&self) -> JobOutcome {
        self.shared.wait()
    }

    /// The outcome, if the job already reached a terminal state.
    pub fn try_outcome(&self) -> Option<JobOutcome> {
        self.shared.try_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn handle_wait_sees_published_outcome() {
        let shared = JobShared::new(7);
        let handle = JobHandle {
            shared: Arc::clone(&shared),
        };
        assert_eq!(handle.state(), JobState::Queued);
        assert!(handle.try_outcome().is_none());

        let publisher = std::thread::spawn(move || {
            shared.set_running();
            shared.finish(JobOutcome {
                id: 7,
                name: "t".into(),
                state: JobState::Completed,
                ligands_done: 3,
                chunks_done: 1,
                replayed_chunks: 0,
                grid_cache_hit: false,
                stopped_early: false,
                top: Vec::new(),
                elapsed: Duration::from_millis(1),
                error: None,
            });
        });
        let outcome = handle.wait();
        publisher.join().unwrap();
        assert_eq!(outcome.state, JobState::Completed);
        assert_eq!(outcome.ligands_done, 3);
        assert_eq!(handle.state(), JobState::Completed);
        assert!(handle.try_outcome().is_some());
    }

    #[test]
    fn cancel_sets_the_shared_flag() {
        let shared = JobShared::new(1);
        let handle = JobHandle {
            shared: Arc::clone(&shared),
        };
        assert!(!shared.cancel.load(Ordering::SeqCst));
        handle.cancel();
        assert!(shared.cancel.load(Ordering::SeqCst));
    }
}
