//! Property test pinning the cache lab's core contract: replaying a
//! trace recorded by a *live* `GridCache` through the offline policy
//! model of the same policy reproduces the live counters exactly —
//! hits, misses, reloads, spills, evictions, bit for bit.
//!
//! This is what makes `cache_replay`'s comparisons trustworthy: the
//! models are not approximations of the live cache, they are the same
//! bookkeeping (same victim selection, same spill-once-per-key rule,
//! same file-table touch order) driven from the recorded event stream.
//! Any divergence — in either direction — is a bug worth failing loud.

use std::sync::atomic::{AtomicU64, Ordering};

use mudock_grids::{GridDims, SimdLevel};
use mudock_mol::Vec3;
use mudock_molio::synthetic_receptor;
use mudock_serve::cache::policy::{self, CachePolicy, ModelConfig};
use mudock_serve::{read_trace, GridCache, SpillConfig};
use proptest::prelude::*;

/// Unique scratch paths per case (cases run within one process).
fn case_paths() -> (std::path::PathBuf, std::path::PathBuf) {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let base =
        std::env::temp_dir().join(format!("mudock-cache-lab-prop-{}-{n}", std::process::id()));
    (base.join("spill"), base.with_extension("trace"))
}

proptest! {
    // Every case builds real grid sets; keep the count tame.
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn model_replay_reproduces_live_counters_exactly(
        // Access pattern over a small receptor population: long enough
        // to evict, spill, reload, and revisit.
        accesses in prop::collection::vec(0usize..5, 4..24),
        capacity in 1usize..4,
        spill_cap in 1usize..4,
        policy_is_slru in prop::sample::select(vec![false, true]),
    ) {
        let (spill_dir, trace_path) = case_paths();
        std::fs::remove_dir_all(&spill_dir).ok();
        let policy = if policy_is_slru { CachePolicy::Slru } else { CachePolicy::Lru };
        let cache = GridCache::builder(capacity)
            .policy(policy)
            .spill(SpillConfig { dir: spill_dir.clone(), capacity: spill_cap })
            .trace(&trace_path)
            .build()
            .expect("spill dir and trace file are creatable");

        let receptors: Vec<_> = (0..5)
            .map(|seed| synthetic_receptor(seed as u64 + 1, 12, 4.0))
            .collect();
        let dims = GridDims::centered(Vec3::ZERO, 3.0, 1.0);
        let level = SimdLevel::detect();
        for &i in &accesses {
            cache.get_or_build(&receptors[i], dims, level, None);
        }
        let live = cache.stats();

        let trace = read_trace(&trace_path).expect("trace parses");
        let header = trace.header.as_ref().expect("header line present");
        prop_assert_eq!(header.policy.as_str(), policy.name());
        prop_assert_eq!(header.capacity, capacity);
        prop_assert_eq!(header.spill_capacity, spill_cap);

        let cfg = ModelConfig::for_policy(policy.name(), capacity, spill_cap)
            .expect("live policies are model policies");
        let model = policy::replay(&trace.events, cfg);

        prop_assert_eq!(model.accesses, live.hits + live.misses, "access count");
        prop_assert_eq!(model.hits, live.hits, "hits");
        prop_assert_eq!(model.misses, live.misses, "misses");
        prop_assert_eq!(model.reloads, live.reloads, "reloads");
        prop_assert_eq!(model.builds, live.misses - live.reloads, "builds");
        prop_assert_eq!(model.spills, live.spills, "spills");
        prop_assert_eq!(model.evictions, live.evictions, "evictions");
        prop_assert_eq!(model.spills - model.spill_drops, live.spilled as u64,
            "files on disk");

        std::fs::remove_dir_all(&spill_dir).ok();
        std::fs::remove_file(&trace_path).ok();
    }
}
