//! Property tests on the grid spill tier: for any receptor pair and
//! lattice the builder accepts, a cache-evicted `GridSet` must survive
//! `grids::io::save` → `load` with every f32 bit intact — both through
//! the raw io API and through the `GridCache` spill/reload path the
//! service actually exercises.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mudock_grids::{save_grids, GridDims, GridSet, SimdLevel};
use mudock_mol::Vec3;
use mudock_molio::synthetic_receptor;
use mudock_serve::{GridCache, SpillConfig};
use proptest::prelude::*;

/// Unique spill directory per case (cases run within one process).
fn case_dir() -> std::path::PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mudock-grid-spill-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn assert_bits_equal(a: &GridSet, b: &GridSet) {
    assert_eq!(a.dims, b.dims);
    assert_eq!(a.built, b.built);
    assert_eq!(a.data.len(), b.data.len());
    for (x, y) in a.data.iter().zip(&b.data) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    // Each case builds several grid sets; keep the count tame.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn evicted_grid_sets_round_trip_bit_identically(
        seed_a in 1u64..1000,
        seed_delta in 1u64..1000,
        atoms in 5usize..40,
        extent in 3.0f32..6.0,
        spacing in 0.8f32..1.2,
    ) {
        let dir = case_dir();
        std::fs::remove_dir_all(&dir).ok();
        let cache = GridCache::with_spill(1, SpillConfig::new(&dir))
            .expect("spill dir is creatable");
        let dims = GridDims::centered(Vec3::ZERO, extent, spacing);
        let rec_a = synthetic_receptor(seed_a, atoms, extent);
        let rec_b = synthetic_receptor(seed_a + seed_delta, atoms, extent);
        let level = SimdLevel::detect();

        // Build A, then B: the capacity-1 cache evicts A and spills it.
        let (built_a, _) = cache.get_or_build(&rec_a, dims, level, None);
        cache.get_or_build(&rec_b, dims, level, None);
        prop_assert_eq!(cache.stats().spills, 1);

        // The spilled file itself round-trips through the raw io API…
        let spilled = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .expect("one spill file")
            .unwrap()
            .path();
        let loaded = mudock_grids::load_grids(&spilled)
            .map_err(|e| TestCaseError::fail(format!("load {}: {e}", spilled.display())))?;
        assert_bits_equal(&built_a, &loaded);

        // …and a second save of the loaded set is byte-for-byte stable
        // (no drift through repeated spill cycles).
        let resaved = dir.join("resaved.grid");
        save_grids(&loaded, &resaved)
            .map_err(|e| TestCaseError::fail(format!("re-save: {e}")))?;
        prop_assert_eq!(
            std::fs::read(&spilled).unwrap(),
            std::fs::read(&resaved).unwrap()
        );
        std::fs::remove_file(&resaved).ok();

        // The cache's own miss path reloads those exact bits.
        let (reloaded, src) = cache.get_or_build(&rec_a, dims, level, None);
        prop_assert_eq!(src, mudock_obs::GridSource::Reloaded);
        prop_assert_eq!(cache.stats().reloads, 1);
        prop_assert!(!Arc::ptr_eq(&built_a, &reloaded), "must come from disk");
        assert_bits_equal(&built_a, &reloaded);

        std::fs::remove_dir_all(&dir).ok();
    }
}
